#include "common/table_printer.h"

#include <cstdio>
#include <sstream>

#include "common/macros.h"

namespace aims {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow() { rows_.emplace_back(); }

void TablePrinter::Cell(const std::string& value) {
  AIMS_CHECK(!rows_.empty());
  AIMS_CHECK(rows_.back().size() < headers_.size());
  rows_.back().push_back(value);
}

void TablePrinter::Cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  Cell(std::string(buf));
}

void TablePrinter::Cell(int64_t value) {
  Cell(std::to_string(value));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  out << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out << ',';
      std::string cell = c < cells.size() ? cells[c] : "";
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        std::string quoted = "\"";
        for (char ch : cell) {
          if (ch == '"') quoted += '"';
          quoted += ch;
        }
        quoted += '"';
        cell = quoted;
      }
      out << cell;
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TablePrinter::Print(const std::string& title) const {
  if (!title.empty()) std::printf("\n== %s ==\n", title.c_str());
  std::printf("%s", ToString().c_str());
  std::fflush(stdout);
}

}  // namespace aims
