#pragma once

#include <cstdio>
#include <cstdlib>

/// \file macros.h
/// \brief Error-propagation and invariant-checking macros used throughout
/// the AIMS codebase.

/// Propagates a non-OK Status to the caller.
#define AIMS_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::aims::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define AIMS_CONCAT_IMPL(x, y) x##y
#define AIMS_CONCAT(x, y) AIMS_CONCAT_IMPL(x, y)

/// Evaluates an expression returning Result<T>; on success binds the value
/// to `lhs`, on failure returns the error status.
#define AIMS_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  AIMS_ASSIGN_OR_RETURN_IMPL(AIMS_CONCAT(_aims_result_, __LINE__), lhs, rexpr)

#define AIMS_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                               \
  if (!result_name.ok()) return result_name.status();       \
  lhs = result_name.MoveValueUnsafe()

/// Hard invariant: aborts the process with a message when violated.
/// Use for programmer errors, not for recoverable conditions.
#define AIMS_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "AIMS_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define AIMS_DCHECK(cond) AIMS_CHECK(cond)
