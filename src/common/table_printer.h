#pragma once

#include <string>
#include <vector>

/// \file table_printer.h
/// \brief Fixed-width ASCII table output used by the benchmark harness to
/// print paper-style result tables.

namespace aims {

/// \brief Accumulates rows of strings/numbers and prints an aligned table.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Starts a new row. Cells are appended with Cell() until the next
  /// AddRow()/Print().
  void AddRow();

  /// Appends a string cell to the current row.
  void Cell(const std::string& value);
  /// Appends a numeric cell formatted with \p precision decimals.
  void Cell(double value, int precision = 3);
  /// Appends an integer cell.
  void Cell(int64_t value);
  void Cell(size_t value) { Cell(static_cast<int64_t>(value)); }
  void Cell(int value) { Cell(static_cast<int64_t>(value)); }

  /// Renders the table to a string.
  std::string ToString() const;

  /// Renders as CSV (header row + data rows; cells containing commas or
  /// quotes are quoted) for downstream plotting.
  std::string ToCsv() const;

  /// Prints the table to stdout with an optional title line.
  void Print(const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aims
