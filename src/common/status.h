#pragma once

#include <string>
#include <utility>
#include <variant>

/// \file status.h
/// \brief Arrow/RocksDB-style error propagation: aims::Status and
/// aims::Result<T>. Library code returns these instead of throwing across
/// module boundaries.

namespace aims {

/// \brief Machine-readable error category carried by a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kNotImplemented = 7,
  kIoError = 8,
  kInternal = 9,
  kCancelled = 10,
};

/// \brief Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a message.
///
/// An OK status carries no allocation. Statuses are cheap to move and copy
/// (non-OK copies share nothing but a short string).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with \p code and diagnostic \p message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or a non-OK Status.
///
/// Mirrors arrow::Result. Access the value only after checking ok();
/// ValueOrDie() aborts on error (used in tests and examples where failure
/// is a bug).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The error status; OK if this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    AbortIfError();
    return std::move(std::get<T>(repr_));
  }

  /// \brief Alias for ValueOrDie, matching arrow::Result spelling.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief Moves the value out, leaving the Result unspecified.
  T MoveValueUnsafe() { return std::move(std::get<T>(repr_)); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> repr_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResult(std::get<Status>(repr_));
}

}  // namespace aims
