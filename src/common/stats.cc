#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace aims {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  size_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double mean = mean_ + delta * static_cast<double>(other.count_) /
                            static_cast<double>(n);
  m2_ = m2_ + other.m2_ +
        delta * delta * static_cast<double>(count_) *
            static_cast<double>(other.count_) / static_cast<double>(n);
  mean_ = mean;
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double MeanSquaredError(const std::vector<double>& a,
                        const std::vector<double>& b) {
  AIMS_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

double NormalizedMse(const std::vector<double>& reference,
                     const std::vector<double>& approx) {
  RunningStats stats;
  for (double x : reference) stats.Add(x);
  double var = stats.variance();
  double mse = MeanSquaredError(reference, approx);
  if (var <= 1e-20) {
    // Constant reference: call the match perfect when the error is at
    // floating-point noise level relative to the signal magnitude.
    double scale = stats.mean() * stats.mean() + 1.0;
    return mse <= 1e-20 * scale ? 0.0 : 1.0;
  }
  return mse / var;
}

double RelativeError(double exact, double approx, double eps) {
  double denom = std::max(std::fabs(exact), eps);
  return std::fabs(approx - exact) / denom;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  AIMS_CHECK(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  RunningStats sa, sb;
  for (double x : a) sa.Add(x);
  for (double x : b) sb.Add(x);
  double cov = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  }
  cov /= static_cast<double>(a.size());
  double denom = sa.stddev() * sb.stddev();
  if (denom <= 0.0) return 0.0;
  return cov / denom;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace aims
