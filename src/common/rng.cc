#include "common/rng.h"

#include "common/macros.h"

namespace aims {

size_t Rng::Categorical(const std::vector<double>& weights) {
  AIMS_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  AIMS_CHECK(total > 0.0);
  double r = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace aims
