#pragma once

#include <cstdint>
#include <random>
#include <vector>

/// \file rng.h
/// \brief Deterministic random number generation. Every stochastic component
/// in AIMS (simulators, samplers, benchmarks) draws from an explicitly
/// seeded Rng so runs are reproducible.

namespace aims {

/// \brief Seeded pseudo-random generator with the distributions the
/// simulators and benchmarks need.
class Rng {
 public:
  /// Constructs a generator with the given \p seed.
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with success probability \p p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed value with the given rate.
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Fisher-Yates shuffle of \p items.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Draws an index in [0, weights.size()) proportionally to weights.
  size_t Categorical(const std::vector<double>& weights);

  /// Derives an independent child generator (for per-component streams).
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace aims
