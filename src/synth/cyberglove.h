#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "streams/sample.h"

/// \file cyberglove.h
/// \brief Synthetic CyberGlove + Polhemus tracker (the paper's ASL capture
/// rig, Sec. 2.2 and Table 1). 22 joint-angle sensors model the hand shape;
/// 6 tracker channels (x, y, z position and three plane rotations) model the
/// hand motion trajectory; together the 28 channels "capture the entirety
/// of a hand motion". Samples are produced at the paper's 100 Hz clock.
///
/// The simulator is the substitution for the physical glove: it synthesizes
/// band-limited joint trajectories with per-subject pose offsets, speed
/// variation, and additive sensor noise, so the downstream recognition
/// pipeline faces the same statistical problem (high-dimensional, variable
/// length, noisy) the paper describes.

namespace aims::synth {

/// Number of joint-angle sensors on the glove (paper Table 1).
inline constexpr size_t kGloveSensors = 22;
/// Polhemus tracker channels: x, y, z, and rotations of the palm plane to
/// the X-Y, Y-Z and Z-X planes.
inline constexpr size_t kTrackerChannels = 6;
/// Total immersidata channels per frame.
inline constexpr size_t kHandChannels = kGloveSensors + kTrackerChannels;
/// The paper's sensor clock: "about 0.01 second".
inline constexpr double kGloveSampleRateHz = 100.0;

/// \brief Description of one glove sensor (paper Table 1).
const char* GloveSensorDescription(size_t sensor_index);

/// \brief How the tracker moves during a sign.
enum class MotionKind {
  kStatic,      ///< Alphabet letters: hand shape only, no movement.
  kWristTwist,  ///< Color signs such as GREEN/YELLOW: the wrist twists twice.
  kShake,       ///< Small repeated translation (e.g. YES-like signs).
  kCircle,      ///< Circular hand trajectory.
  kSwipe,       ///< Straight-line translation.
};

/// \brief A vocabulary entry: hand pose plus motion profile.
struct SignSpec {
  std::string name;
  /// Target joint angles in degrees for the 22 glove sensors.
  std::vector<double> pose;
  MotionKind motion = MotionKind::kStatic;
  /// Nominal duration in seconds (subjects vary around it).
  double nominal_duration_s = 0.8;
};

/// \brief The built-in ASL-like vocabulary: 12 static letters plus 6 motion
/// signs (colors and words), 18 signs total.
std::vector<SignSpec> DefaultAslVocabulary();

/// \brief The extended vocabulary: DefaultAslVocabulary() (same entries at
/// the same indices) followed by 10 more static letters and 4 more motion
/// signs — 32 signs, for the harder large-vocabulary experiments.
std::vector<SignSpec> ExtendedAslVocabulary();

/// \brief Per-subject articulation parameters (sampled once per subject).
struct SubjectProfile {
  /// Additive per-joint pose offset in degrees.
  std::vector<double> pose_offset;
  /// Multiplies every sign duration (different people sign at different
  /// speeds — the paper's variable-length challenge).
  double speed_factor = 1.0;
  /// Amplitude of involuntary tremor, degrees.
  double tremor = 0.5;
  /// Scales the motion amplitudes (some people gesture bigger).
  double amplitude_factor = 1.0;
  /// Strength of the nonlinear time warp applied per rendition: renditions
  /// speed up and slow down *within* a sign, not just overall — the
  /// misalignment that defeats frame-by-frame (Euclidean) comparison.
  double warp = 0.15;
};

/// \brief One labelled segment of a generated stream.
struct SignSegment {
  size_t sign_index = 0;       ///< Index into the vocabulary.
  size_t start_frame = 0;      ///< Inclusive.
  size_t end_frame = 0;        ///< Exclusive.
};

/// \brief Generates synthetic CyberGlove immersidata.
class CyberGloveSimulator {
 public:
  /// \param vocabulary sign inventory; \p noise_stddev additive Gaussian
  /// sensor noise in degrees (glove) / centimeters (tracker).
  CyberGloveSimulator(std::vector<SignSpec> vocabulary, uint64_t seed,
                      double noise_stddev = 0.75);

  const std::vector<SignSpec>& vocabulary() const { return vocabulary_; }

  /// Draws a random subject.
  SubjectProfile MakeSubject();

  /// \brief Synthesizes one isolated sign performed by \p subject.
  /// The recording has kHandChannels channels at 100 Hz.
  Result<streams::Recording> GenerateSign(size_t sign_index,
                                          const SubjectProfile& subject);

  /// \brief Synthesizes a continuous stream: the given signs in order,
  /// separated by rest (neutral pose) gaps, with ground-truth segment
  /// boundaries for the isolation experiments.
  Result<streams::Recording> GenerateSequence(
      const std::vector<size_t>& sign_indices, const SubjectProfile& subject,
      double rest_gap_s, std::vector<SignSegment>* segments);

 private:
  void AppendSignFrames(size_t sign_index, const SubjectProfile& subject,
                        std::vector<double>* current_pose,
                        streams::Recording* recording);
  void AppendRestFrames(const SubjectProfile& subject, double duration_s,
                        std::vector<double>* current_pose,
                        streams::Recording* recording);
  streams::Frame MakeFrame(const std::vector<double>& pose,
                           const std::vector<double>& tracker,
                           const SubjectProfile& subject, double timestamp);

  std::vector<SignSpec> vocabulary_;
  Rng rng_;
  double noise_stddev_;
  std::vector<double> neutral_pose_;
};

}  // namespace aims::synth
