#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "streams/sample.h"

/// \file virtual_classroom.h
/// \brief Synthetic Virtual Classroom (the paper's ADHD testbed, Sec. 2.1).
///
/// A subject wears trackers on the head, both hands, and a leg; each tracker
/// streams 6 dimensions (X, Y, Z position; H, P, R rotation), making the
/// 8-dimensional immersidata schema (6 values + timestamp + sensor-id).
/// During the AX attention task, letters appear on the blackboard and the
/// subject must click when an X follows an A, while scripted distractions
/// (noise, paper airplane, people walking in, activity outside the window)
/// occur. The paper reports distinguishing ADHD from control subjects with
/// ~86% accuracy using an SVM over tracker motion speed.
///
/// The generative model encodes exactly the separation that claim relies
/// on: ADHD subjects have higher fidget rates/amplitudes, orient towards
/// distractions more often and for longer, and respond to stimuli less
/// reliably.

namespace aims::synth {

/// Tracker placements, each streaming 6 channels.
enum class TrackerSite : uint32_t {
  kHead = 0,
  kLeftHand = 1,
  kRightHand = 2,
  kLeg = 3,
};
inline constexpr size_t kNumTrackers = 4;
inline constexpr size_t kTrackerDims = 6;  ///< X, Y, Z, H, P, R.
inline constexpr double kClassroomSampleRateHz = 50.0;

const char* TrackerSiteName(TrackerSite site);

/// \brief A scripted classroom distraction.
struct DistractionEvent {
  double time_s = 0.0;
  double duration_s = 0.0;
  std::string kind;  ///< "noise", "airplane", "door", "window".
};

/// \brief One letter shown on the blackboard during the AX task.
struct Stimulus {
  double time_s = 0.0;
  char letter = ' ';
  bool is_target = false;  ///< True when this X completes an A-X pattern.
};

/// \brief The subject's response to one target (or a false alarm).
struct Response {
  double time_s = 0.0;
  bool hit = false;          ///< Pressed within the window after a target.
  double reaction_time_s = 0.0;  ///< Valid when hit.
};

/// \brief Subject group label.
enum class SubjectGroup { kControl = 0, kAdhd = 1 };

/// \brief Everything recorded during one session.
struct ClassroomSession {
  SubjectGroup group = SubjectGroup::kControl;
  /// One 24-channel recording: tracker t occupies channels
  /// [t*kTrackerDims, (t+1)*kTrackerDims).
  streams::Recording recording;
  std::vector<Stimulus> stimuli;
  std::vector<Response> responses;
  std::vector<DistractionEvent> distractions;
};

/// \brief Tunable cohort parameters (defaults reproduce the paper-scale
/// group separation).
struct ClassroomConfig {
  double session_duration_s = 120.0;
  double stimulus_interval_s = 2.0;
  double target_probability = 0.2;     ///< P(letter completes A-X).
  double distraction_rate_hz = 0.05;   ///< Poisson rate of distractions.

  // Control-group motion model.
  double control_fidget_rate_hz = 0.13;
  double control_fidget_amplitude = 1.5;
  double control_orient_probability = 0.35;
  double control_hit_rate = 0.90;

  // ADHD-group motion model.
  double adhd_fidget_rate_hz = 0.30;
  double adhd_fidget_amplitude = 2.2;
  double adhd_orient_probability = 0.60;
  double adhd_hit_rate = 0.74;

  /// Log-normal sigma of the per-subject random effect multiplying the
  /// fidget rate and amplitude: real cohorts overlap — some control
  /// children are restless and some ADHD children are calm — which is what
  /// keeps the classifier's accuracy in the paper's ~86% regime instead of
  /// a trivially separable 100%.
  double subject_variability = 0.65;
};

/// \brief Generates labelled classroom sessions.
class VirtualClassroomSimulator {
 public:
  VirtualClassroomSimulator(ClassroomConfig config, uint64_t seed);

  /// Synthesizes one full session for a subject of the given group.
  ClassroomSession GenerateSession(SubjectGroup group);

  /// Convenience: a balanced cohort of `per_group` sessions per group.
  std::vector<ClassroomSession> GenerateCohort(size_t per_group);

  const ClassroomConfig& config() const { return config_; }

 private:
  ClassroomConfig config_;
  Rng rng_;
};

/// \brief Flattens a session into the paper's 8-dimensional tuple stream
/// (sensor-id, x, y, z, h, p, r, timestamp) — the storage/OLAP input format.
std::vector<streams::Sample> SessionToSamples(const ClassroomSession& session);

}  // namespace aims::synth
