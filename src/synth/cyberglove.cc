#include "synth/cyberglove.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace aims::synth {

namespace {

constexpr double kPi = 3.14159265358979323846;

const char* kSensorDescriptions[kGloveSensors] = {
    "thumb roll sensor",      "thumb inner joint",     "thumb outer joint",
    "thumb-index abduction",  "index inner joint",     "index middle joint",
    "index outer joint",      "middle inner joint",    "middle middle joint",
    "middle outer joint",     "index-middle abduction", "ring inner joint",
    "ring middle joint",      "ring outer joint",      "ring-middle abduction",
    "pinky inner joint",      "pinky middle joint",    "pinky outer joint",
    "pinky-ring abduction",   "palm arch",             "wrist flexion",
    "wrist abduction"};

// Per-finger pose builder. Angles in degrees: 0 = extended, 90 = fully
// curled. The glove layout indices follow Table 1 (0-based):
//   thumb: 0 roll, 1 inner, 2 outer, 3 thumb-index abduction
//   index: 4 inner, 5 middle, 6 outer
//   middle: 7 inner, 8 middle, 9 outer, 10 index-middle abduction
//   ring: 11 inner, 12 middle, 13 outer, 14 ring-middle abduction
//   pinky: 15 inner, 16 middle, 17 outer, 18 pinky-ring abduction
//   palm/wrist: 19 palm arch, 20 wrist flexion, 21 wrist abduction
struct PoseBuilder {
  std::vector<double> pose = std::vector<double>(kGloveSensors, 0.0);

  PoseBuilder& Thumb(double roll, double curl) {
    pose[0] = roll;
    pose[1] = curl;
    pose[2] = curl * 0.8;
    return *this;
  }
  PoseBuilder& ThumbAbduction(double a) {
    pose[3] = a;
    return *this;
  }
  PoseBuilder& Index(double curl) {
    pose[4] = curl;
    pose[5] = curl * 1.1;
    pose[6] = curl * 0.9;
    return *this;
  }
  PoseBuilder& Middle(double curl) {
    pose[7] = curl;
    pose[8] = curl * 1.1;
    pose[9] = curl * 0.9;
    return *this;
  }
  PoseBuilder& Ring(double curl) {
    pose[11] = curl;
    pose[12] = curl * 1.1;
    pose[13] = curl * 0.9;
    return *this;
  }
  PoseBuilder& Pinky(double curl) {
    pose[15] = curl;
    pose[16] = curl * 1.1;
    pose[17] = curl * 0.9;
    return *this;
  }
  PoseBuilder& Spread(double a) {
    pose[10] = a;
    pose[14] = a;
    pose[18] = a;
    return *this;
  }
  PoseBuilder& Palm(double arch, double flex, double abd) {
    pose[19] = arch;
    pose[20] = flex;
    pose[21] = abd;
    return *this;
  }
};

}  // namespace

const char* GloveSensorDescription(size_t sensor_index) {
  AIMS_CHECK(sensor_index < kGloveSensors);
  return kSensorDescriptions[sensor_index];
}

std::vector<SignSpec> DefaultAslVocabulary() {
  std::vector<SignSpec> vocab;
  auto add = [&](const std::string& name, PoseBuilder b, MotionKind motion,
                 double duration) {
    vocab.push_back(SignSpec{name, std::move(b.pose), motion, duration});
  };

  // Static alphabet letters: fist-family, point-family, open-family shapes.
  add("A", PoseBuilder().Thumb(10, 5).Index(85).Middle(85).Ring(85).Pinky(85),
      MotionKind::kStatic, 0.7);
  add("B",
      PoseBuilder().Thumb(60, 45).Index(2).Middle(2).Ring(2).Pinky(2).Spread(2),
      MotionKind::kStatic, 0.7);
  add("C",
      PoseBuilder().Thumb(25, 30).Index(40).Middle(40).Ring(40).Pinky(40).Palm(
          20, 0, 0),
      MotionKind::kStatic, 0.7);
  add("D",
      PoseBuilder().Thumb(35, 40).Index(3).Middle(75).Ring(75).Pinky(75),
      MotionKind::kStatic, 0.7);
  add("F",
      PoseBuilder().Thumb(40, 35).Index(55).Middle(5).Ring(5).Pinky(5).Spread(
          8),
      MotionKind::kStatic, 0.7);
  add("G",
      PoseBuilder().Thumb(15, 15).Index(5).Middle(85).Ring(85).Pinky(85).Palm(
          0, 0, 15),
      MotionKind::kStatic, 0.7);
  add("I", PoseBuilder().Thumb(20, 50).Index(85).Middle(85).Ring(85).Pinky(3),
      MotionKind::kStatic, 0.7);
  add("L",
      PoseBuilder().Thumb(70, 5).Index(3).Middle(85).Ring(85).Pinky(85),
      MotionKind::kStatic, 0.7);
  add("O",
      PoseBuilder().Thumb(30, 35).Index(50).Middle(50).Ring(50).Pinky(50).Palm(
          25, 0, 0),
      MotionKind::kStatic, 0.7);
  add("V",
      PoseBuilder().Thumb(20, 55).Index(3).Middle(3).Ring(85).Pinky(85).Spread(
          14),
      MotionKind::kStatic, 0.7);
  add("W",
      PoseBuilder().Thumb(25, 60).Index(3).Middle(3).Ring(3).Pinky(85).Spread(
          10),
      MotionKind::kStatic, 0.7);
  add("Y",
      PoseBuilder().Thumb(75, 3).Index(85).Middle(85).Ring(85).Pinky(3),
      MotionKind::kStatic, 0.7);

  // Motion signs. Colors: hand shape of a letter with the wrist twisting
  // twice (paper: GREEN = G + twist, YELLOW = Y + twist).
  add("GREEN",
      PoseBuilder().Thumb(15, 15).Index(5).Middle(85).Ring(85).Pinky(85).Palm(
          0, 0, 15),
      MotionKind::kWristTwist, 1.0);
  add("YELLOW",
      PoseBuilder().Thumb(75, 3).Index(85).Middle(85).Ring(85).Pinky(3),
      MotionKind::kWristTwist, 1.0);
  add("BLUE",
      PoseBuilder().Thumb(60, 45).Index(2).Middle(2).Ring(2).Pinky(2).Spread(2),
      MotionKind::kWristTwist, 1.0);
  add("YES", PoseBuilder().Thumb(10, 5).Index(85).Middle(85).Ring(85).Pinky(85),
      MotionKind::kShake, 1.1);
  add("WHERE",
      PoseBuilder().Thumb(35, 40).Index(3).Middle(75).Ring(75).Pinky(75),
      MotionKind::kShake, 1.0);
  add("PLEASE",
      PoseBuilder().Thumb(60, 45).Index(2).Middle(2).Ring(2).Pinky(2).Spread(2),
      MotionKind::kCircle, 1.2);

  return vocab;
}

std::vector<SignSpec> ExtendedAslVocabulary() {
  std::vector<SignSpec> vocab = DefaultAslVocabulary();
  auto add = [&](const std::string& name, PoseBuilder b, MotionKind motion,
                 double duration) {
    vocab.push_back(SignSpec{name, std::move(b.pose), motion, duration});
  };
  // Additional static letters, each with a distinct joint configuration.
  add("E",
      PoseBuilder().Thumb(20, 60).Index(65).Middle(65).Ring(65).Pinky(65).Palm(
          10, 0, 0),
      MotionKind::kStatic, 0.7);
  add("H",
      PoseBuilder().Thumb(30, 55).Index(3).Middle(3).Ring(85).Pinky(85).Palm(
          0, 0, 20),
      MotionKind::kStatic, 0.7);
  add("K",
      PoseBuilder().Thumb(55, 20).Index(3).Middle(35).Ring(85).Pinky(85).Spread(
          12),
      MotionKind::kStatic, 0.7);
  add("M",
      PoseBuilder().Thumb(15, 70).Index(70).Middle(70).Ring(70).Pinky(85),
      MotionKind::kStatic, 0.7);
  add("N", PoseBuilder().Thumb(18, 65).Index(70).Middle(70).Ring(85).Pinky(85),
      MotionKind::kStatic, 0.7);
  add("P",
      PoseBuilder().Thumb(50, 25).Index(10).Middle(40).Ring(85).Pinky(85).Palm(
          0, 45, 0),
      MotionKind::kStatic, 0.7);
  add("R",
      PoseBuilder().Thumb(25, 55).Index(5).Middle(8).Ring(85).Pinky(85).Spread(
          -6),
      MotionKind::kStatic, 0.7);
  add("S", PoseBuilder().Thumb(5, 45).Index(88).Middle(88).Ring(88).Pinky(88),
      MotionKind::kStatic, 0.7);
  add("T",
      PoseBuilder().Thumb(28, 30).Index(75).Middle(85).Ring(85).Pinky(85),
      MotionKind::kStatic, 0.7);
  add("U",
      PoseBuilder().Thumb(28, 55).Index(3).Middle(3).Ring(85).Pinky(85).Spread(
          2),
      MotionKind::kStatic, 0.7);
  // Additional motion signs.
  add("RED",
      PoseBuilder().Thumb(35, 40).Index(3).Middle(75).Ring(75).Pinky(75),
      MotionKind::kSwipe, 0.9);
  add("NO",
      PoseBuilder().Thumb(55, 20).Index(3).Middle(35).Ring(85).Pinky(85),
      MotionKind::kShake, 0.9);
  add("THANKYOU",
      PoseBuilder().Thumb(60, 45).Index(2).Middle(2).Ring(2).Pinky(2).Spread(2),
      MotionKind::kSwipe, 1.1);
  add("HELLO",
      PoseBuilder().Thumb(60, 45).Index(2).Middle(2).Ring(2).Pinky(2).Spread(4),
      MotionKind::kCircle, 1.0);
  return vocab;
}

CyberGloveSimulator::CyberGloveSimulator(std::vector<SignSpec> vocabulary,
                                         uint64_t seed, double noise_stddev)
    : vocabulary_(std::move(vocabulary)),
      rng_(seed),
      noise_stddev_(noise_stddev) {
  for (const SignSpec& sign : vocabulary_) {
    AIMS_CHECK(sign.pose.size() == kGloveSensors);
  }
  // Neutral: relaxed half-open hand.
  neutral_pose_ =
      PoseBuilder().Thumb(20, 20).Index(25).Middle(25).Ring(25).Pinky(25).pose;
}

SubjectProfile CyberGloveSimulator::MakeSubject() {
  SubjectProfile subject;
  subject.pose_offset.resize(kGloveSensors);
  for (double& o : subject.pose_offset) o = rng_.Gaussian(0.0, 4.0);
  subject.speed_factor = std::clamp(rng_.Gaussian(1.0, 0.25), 0.5, 1.8);
  subject.tremor = std::clamp(rng_.Gaussian(0.5, 0.2), 0.1, 1.5);
  subject.amplitude_factor = std::clamp(rng_.Gaussian(1.0, 0.15), 0.6, 1.5);
  subject.warp = std::clamp(rng_.Gaussian(0.15, 0.07), 0.0, 0.3);
  return subject;
}

streams::Frame CyberGloveSimulator::MakeFrame(
    const std::vector<double>& pose, const std::vector<double>& tracker,
    const SubjectProfile& subject, double timestamp) {
  streams::Frame frame;
  frame.timestamp = timestamp;
  frame.values.resize(kHandChannels);
  for (size_t i = 0; i < kGloveSensors; ++i) {
    frame.values[i] = pose[i] + subject.pose_offset[i] +
                      rng_.Gaussian(0.0, noise_stddev_) +
                      rng_.Gaussian(0.0, subject.tremor);
  }
  AIMS_CHECK(tracker.size() == kTrackerChannels);
  for (size_t i = 0; i < kTrackerChannels; ++i) {
    frame.values[kGloveSensors + i] =
        tracker[i] + rng_.Gaussian(0.0, noise_stddev_ * 0.2);
  }
  return frame;
}

namespace {
/// Smoothstep ramp in [0,1].
double Smoothstep(double t) {
  t = std::clamp(t, 0.0, 1.0);
  return t * t * (3.0 - 2.0 * t);
}

/// Tracker trajectory for a motion kind at warped phase u in [0,1], with a
/// per-rendition oscillation phase and amplitude scale.
std::vector<double> TrackerAt(MotionKind kind, double u, double phase,
                              double amplitude) {
  std::vector<double> tracker(kTrackerChannels, 0.0);
  switch (kind) {
    case MotionKind::kStatic:
      break;
    case MotionKind::kWristTwist:
      // Two full twists over the sign: rotation of the palm plane.
      tracker[5] = amplitude * 35.0 * std::sin(2.0 * kPi * 2.0 * u + phase);
      tracker[3] =
          amplitude * 10.0 * std::sin(2.0 * kPi * 2.0 * u + phase + 0.5);
      break;
    case MotionKind::kShake:
      tracker[1] = amplitude * 4.0 * std::sin(2.0 * kPi * 3.0 * u + phase);
      tracker[4] = amplitude * 15.0 * std::sin(2.0 * kPi * 3.0 * u + phase);
      break;
    case MotionKind::kCircle:
      tracker[0] = amplitude * 6.0 * std::cos(2.0 * kPi * u + phase);
      tracker[1] = amplitude * 6.0 * std::sin(2.0 * kPi * u + phase);
      break;
    case MotionKind::kSwipe:
      tracker[0] = amplitude * 14.0 * Smoothstep(u);
      break;
  }
  return tracker;
}

/// Monotone nonlinear time warp: v(0)=0, v(1)=1, with the interior sped up
/// or slowed down by `strength` (|strength| < 1/pi keeps it monotone).
double WarpPhase(double u, double strength) {
  return u + strength * std::sin(kPi * u) / kPi;
}
}  // namespace

void CyberGloveSimulator::AppendSignFrames(size_t sign_index,
                                           const SubjectProfile& subject,
                                           std::vector<double>* current_pose,
                                           streams::Recording* recording) {
  const SignSpec& sign = vocabulary_[sign_index];
  double duration = sign.nominal_duration_s * subject.speed_factor *
                    std::clamp(rng_.Gaussian(1.0, 0.12), 0.7, 1.4);
  size_t frames = std::max<size_t>(
      8, static_cast<size_t>(duration * kGloveSampleRateHz));
  // Per-rendition articulation variation: an oscillation phase, a small
  // amplitude scale, and a nonlinear time warp — no two renditions of a
  // sign align frame by frame.
  double phase = rng_.Uniform(0.0, 2.0 * kPi);
  double amplitude =
      subject.amplitude_factor * std::clamp(rng_.Gaussian(1.0, 0.1), 0.7, 1.4);
  double warp = subject.warp * (rng_.Bernoulli(0.5) ? 1.0 : -1.0) *
                rng_.Uniform(0.5, 1.0) * kPi;
  // First 30% of the sign: articulate from the current pose to the target.
  size_t ramp = std::max<size_t>(2, frames * 3 / 10);
  std::vector<double> start_pose = *current_pose;
  double dt = 1.0 / kGloveSampleRateHz;
  for (size_t f = 0; f < frames; ++f) {
    double u = static_cast<double>(f) / static_cast<double>(frames);
    double v = WarpPhase(u, warp / kPi);
    double blend = Smoothstep(v * static_cast<double>(frames) /
                              static_cast<double>(ramp));
    std::vector<double> pose(kGloveSensors);
    for (size_t i = 0; i < kGloveSensors; ++i) {
      pose[i] = start_pose[i] * (1.0 - blend) + sign.pose[i] * blend;
    }
    std::vector<double> tracker = TrackerAt(sign.motion, v, phase, amplitude);
    double t = recording->frames.empty()
                   ? 0.0
                   : recording->frames.back().timestamp + dt;
    recording->Append(MakeFrame(pose, tracker, subject, t));
    *current_pose = pose;
  }
}

void CyberGloveSimulator::AppendRestFrames(const SubjectProfile& subject,
                                           double duration_s,
                                           std::vector<double>* current_pose,
                                           streams::Recording* recording) {
  size_t frames = static_cast<size_t>(duration_s * kGloveSampleRateHz);
  std::vector<double> start_pose = *current_pose;
  size_t ramp = std::max<size_t>(2, frames / 2);
  double dt = 1.0 / kGloveSampleRateHz;
  std::vector<double> tracker(kTrackerChannels, 0.0);
  for (size_t f = 0; f < frames; ++f) {
    double blend =
        Smoothstep(static_cast<double>(f) / static_cast<double>(ramp));
    std::vector<double> pose(kGloveSensors);
    for (size_t i = 0; i < kGloveSensors; ++i) {
      pose[i] = start_pose[i] * (1.0 - blend) + neutral_pose_[i] * blend;
    }
    double t = recording->frames.empty()
                   ? 0.0
                   : recording->frames.back().timestamp + dt;
    recording->Append(MakeFrame(pose, tracker, subject, t));
    *current_pose = pose;
  }
}

Result<streams::Recording> CyberGloveSimulator::GenerateSign(
    size_t sign_index, const SubjectProfile& subject) {
  if (sign_index >= vocabulary_.size()) {
    return Status::OutOfRange("GenerateSign: sign index out of range");
  }
  if (subject.pose_offset.size() != kGloveSensors) {
    return Status::InvalidArgument("GenerateSign: malformed subject profile");
  }
  streams::Recording recording;
  recording.sample_rate_hz = kGloveSampleRateHz;
  std::vector<double> pose = neutral_pose_;
  AppendSignFrames(sign_index, subject, &pose, &recording);
  return recording;
}

Result<streams::Recording> CyberGloveSimulator::GenerateSequence(
    const std::vector<size_t>& sign_indices, const SubjectProfile& subject,
    double rest_gap_s, std::vector<SignSegment>* segments) {
  if (subject.pose_offset.size() != kGloveSensors) {
    return Status::InvalidArgument(
        "GenerateSequence: malformed subject profile");
  }
  streams::Recording recording;
  recording.sample_rate_hz = kGloveSampleRateHz;
  std::vector<double> pose = neutral_pose_;
  // Lead-in rest so the first sign has a visible onset.
  AppendRestFrames(subject, rest_gap_s, &pose, &recording);
  for (size_t sign_index : sign_indices) {
    if (sign_index >= vocabulary_.size()) {
      return Status::OutOfRange("GenerateSequence: sign index out of range");
    }
    SignSegment segment;
    segment.sign_index = sign_index;
    segment.start_frame = recording.num_frames();
    AppendSignFrames(sign_index, subject, &pose, &recording);
    segment.end_frame = recording.num_frames();
    if (segments != nullptr) segments->push_back(segment);
    AppendRestFrames(subject, rest_gap_s, &pose, &recording);
  }
  return recording;
}

}  // namespace aims::synth
