#pragma once

#include <string>
#include <vector>

#include "common/rng.h"

/// \file olap_data.h
/// \brief Multidimensional dataset zoo for the ProPolyne experiments.
///
/// The paper's key ProPolyne claim (Sec. 3.3) is that *query* approximation
/// delivers consistent accuracy regardless of the data, while *data*
/// approximation "varies wildly with the dataset". Exercising that claim
/// requires datasets across the compressibility spectrum: a smooth
/// atmospheric-style field (very compressible — the NASA/JPL stand-in),
/// piecewise-constant data (compressible), and white noise (incompressible).

namespace aims::synth {

/// \brief A dense multidimensional array with named dimensions.
struct GridDataset {
  std::string name;
  std::vector<size_t> shape;   ///< Power-of-two extents, row-major storage.
  std::vector<double> values;  ///< Non-negative cell values (frequencies).

  size_t total_size() const;
  size_t FlatIndex(const std::vector<size_t>& idx) const;
};

/// \brief Smooth field: a sum of random Gaussian bumps (stand-in for the
/// NASA/JPL atmospheric measurements the AIMS prototype served).
GridDataset MakeSmoothField(const std::vector<size_t>& shape, size_t num_bumps,
                            Rng* rng);

/// \brief Piecewise-constant field: random axis-aligned plateaus.
GridDataset MakePiecewiseField(const std::vector<size_t>& shape,
                               size_t num_plateaus, Rng* rng);

/// \brief Incompressible field: i.i.d. uniform noise.
GridDataset MakeNoiseField(const std::vector<size_t>& shape, Rng* rng);

/// \brief Sparse skewed field: Zipf-distributed mass on random cells —
/// the shape of typical OLAP fact tables.
GridDataset MakeZipfField(const std::vector<size_t>& shape,
                          size_t num_records, double zipf_exponent, Rng* rng);

/// \brief The full zoo, one of each, sharing a shape.
std::vector<GridDataset> MakeDatasetZoo(const std::vector<size_t>& shape,
                                        Rng* rng);

}  // namespace aims::synth
