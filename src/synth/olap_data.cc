#include "synth/olap_data.h"

#include <cmath>

#include "common/macros.h"

namespace aims::synth {

size_t GridDataset::total_size() const {
  size_t n = 1;
  for (size_t e : shape) n *= e;
  return n;
}

size_t GridDataset::FlatIndex(const std::vector<size_t>& idx) const {
  AIMS_CHECK(idx.size() == shape.size());
  size_t flat = 0;
  for (size_t d = 0; d < shape.size(); ++d) {
    AIMS_CHECK(idx[d] < shape[d]);
    flat = flat * shape[d] + idx[d];
  }
  return flat;
}

namespace {
/// Iterates all multi-indices of `shape`, invoking fn(idx, flat).
template <typename Fn>
void ForEachCell(const std::vector<size_t>& shape, Fn&& fn) {
  std::vector<size_t> idx(shape.size(), 0);
  size_t total = 1;
  for (size_t e : shape) total *= e;
  for (size_t flat = 0; flat < total; ++flat) {
    fn(idx, flat);
    for (size_t d = shape.size(); d-- > 0;) {
      if (++idx[d] < shape[d]) break;
      idx[d] = 0;
    }
  }
}
}  // namespace

GridDataset MakeSmoothField(const std::vector<size_t>& shape, size_t num_bumps,
                            Rng* rng) {
  GridDataset out;
  out.name = "smooth";
  out.shape = shape;
  out.values.assign(out.total_size(), 0.0);
  const size_t dims = shape.size();
  struct Bump {
    std::vector<double> center;
    std::vector<double> width;
    double height;
  };
  std::vector<Bump> bumps(num_bumps);
  for (Bump& b : bumps) {
    b.center.resize(dims);
    b.width.resize(dims);
    for (size_t d = 0; d < dims; ++d) {
      b.center[d] = rng->Uniform(0.0, static_cast<double>(shape[d]));
      b.width[d] = rng->Uniform(0.15, 0.45) * static_cast<double>(shape[d]);
    }
    b.height = rng->Uniform(10.0, 100.0);
  }
  ForEachCell(shape, [&](const std::vector<size_t>& idx, size_t flat) {
    double v = 0.0;
    for (const Bump& b : bumps) {
      double exponent = 0.0;
      for (size_t d = 0; d < dims; ++d) {
        double z = (static_cast<double>(idx[d]) - b.center[d]) / b.width[d];
        exponent += z * z;
      }
      v += b.height * std::exp(-exponent);
    }
    out.values[flat] = v;
  });
  return out;
}

GridDataset MakePiecewiseField(const std::vector<size_t>& shape,
                               size_t num_plateaus, Rng* rng) {
  GridDataset out;
  out.name = "piecewise";
  out.shape = shape;
  out.values.assign(out.total_size(), 1.0);
  const size_t dims = shape.size();
  for (size_t p = 0; p < num_plateaus; ++p) {
    std::vector<size_t> lo(dims), hi(dims);
    for (size_t d = 0; d < dims; ++d) {
      size_t a = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(shape[d]) - 1));
      size_t b = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(shape[d]) - 1));
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    double level = rng->Uniform(5.0, 80.0);
    ForEachCell(shape, [&](const std::vector<size_t>& idx, size_t flat) {
      for (size_t d = 0; d < dims; ++d) {
        if (idx[d] < lo[d] || idx[d] > hi[d]) return;
      }
      out.values[flat] += level;
    });
  }
  return out;
}

GridDataset MakeNoiseField(const std::vector<size_t>& shape, Rng* rng) {
  GridDataset out;
  out.name = "noise";
  out.shape = shape;
  out.values.resize(out.total_size());
  for (double& v : out.values) v = rng->Uniform(0.0, 100.0);
  return out;
}

GridDataset MakeZipfField(const std::vector<size_t>& shape,
                          size_t num_records, double zipf_exponent, Rng* rng) {
  GridDataset out;
  out.name = "zipf";
  out.shape = shape;
  out.values.assign(out.total_size(), 0.0);
  const size_t n = out.total_size();
  // Zipf over a random permutation of cells: rank r gets mass ~ r^-s.
  std::vector<double> rank_weight(std::min<size_t>(n, 4096));
  for (size_t r = 0; r < rank_weight.size(); ++r) {
    rank_weight[r] = std::pow(static_cast<double>(r + 1), -zipf_exponent);
  }
  std::vector<size_t> cells(rank_weight.size());
  for (size_t& c : cells) {
    c = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
  }
  for (size_t rec = 0; rec < num_records; ++rec) {
    size_t rank = rng->Categorical(rank_weight);
    out.values[cells[rank]] += 1.0;
  }
  return out;
}

std::vector<GridDataset> MakeDatasetZoo(const std::vector<size_t>& shape,
                                        Rng* rng) {
  std::vector<GridDataset> zoo;
  zoo.push_back(MakeSmoothField(shape, 6, rng));
  zoo.push_back(MakePiecewiseField(shape, 10, rng));
  zoo.push_back(MakeZipfField(shape, 50000, 1.1, rng));
  zoo.push_back(MakeNoiseField(shape, rng));
  return zoo;
}

}  // namespace aims::synth
