#include "synth/virtual_classroom.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace aims::synth {

namespace {
constexpr double kPi = 3.14159265358979323846;

/// A transient motion burst on one tracker: raised-cosine envelope times an
/// oscillation, the building block for fidgets and orienting responses.
struct MotionBurst {
  size_t tracker = 0;
  size_t channel = 0;  ///< Channel within the tracker (0..5).
  double start_s = 0.0;
  double duration_s = 0.0;
  double amplitude = 0.0;
  double frequency_hz = 0.0;

  double ValueAt(double t) const {
    if (t < start_s || t > start_s + duration_s) return 0.0;
    double u = (t - start_s) / duration_s;
    double envelope = 0.5 * (1.0 - std::cos(2.0 * kPi * u));
    return amplitude * envelope * std::sin(2.0 * kPi * frequency_hz * (t - start_s));
  }
};
}  // namespace

const char* TrackerSiteName(TrackerSite site) {
  switch (site) {
    case TrackerSite::kHead:
      return "head";
    case TrackerSite::kLeftHand:
      return "left-hand";
    case TrackerSite::kRightHand:
      return "right-hand";
    case TrackerSite::kLeg:
      return "leg";
  }
  return "unknown";
}

VirtualClassroomSimulator::VirtualClassroomSimulator(ClassroomConfig config,
                                                     uint64_t seed)
    : config_(config), rng_(seed) {}

ClassroomSession VirtualClassroomSimulator::GenerateSession(
    SubjectGroup group) {
  ClassroomSession session;
  session.group = group;
  const bool adhd = group == SubjectGroup::kAdhd;
  const double duration = config_.session_duration_s;

  // --- Schedule stimuli (the AX task). ---
  char previous_letter = ' ';
  static const char kLetters[] = "ABCDEFGHKX";
  for (double t = 1.0; t < duration; t += config_.stimulus_interval_s) {
    Stimulus s;
    s.time_s = t + rng_.Gaussian(0.0, 0.05);
    if (previous_letter == 'A' && rng_.Bernoulli(config_.target_probability /
                                                 0.25)) {
      s.letter = 'X';
      s.is_target = true;
    } else if (rng_.Bernoulli(0.25)) {
      s.letter = 'A';
    } else {
      s.letter = kLetters[rng_.UniformInt(0, 9)];
      if (s.letter == 'A' || s.letter == 'X') s.letter = 'B';
    }
    previous_letter = s.letter;
    session.stimuli.push_back(s);
  }

  // --- Schedule distractions (Poisson). ---
  static const char* kKinds[] = {"noise", "airplane", "door", "window"};
  double t = rng_.Exponential(config_.distraction_rate_hz);
  while (t < duration) {
    DistractionEvent d;
    d.time_s = t;
    d.duration_s = rng_.Uniform(1.5, 5.0);
    d.kind = kKinds[rng_.UniformInt(0, 3)];
    session.distractions.push_back(d);
    t += rng_.Exponential(config_.distraction_rate_hz);
  }

  // --- Build the motion model as a set of bursts. ---
  std::vector<MotionBurst> bursts;
  // Per-subject random effects: the group means differ, but individual
  // children are spread around them (log-normal), so the groups overlap.
  const double rate_effect =
      std::exp(rng_.Gaussian(0.0, config_.subject_variability));
  const double amp_effect =
      std::exp(rng_.Gaussian(0.0, config_.subject_variability * 0.7));
  const double fidget_rate =
      rate_effect * (adhd ? config_.adhd_fidget_rate_hz
                          : config_.control_fidget_rate_hz);
  const double fidget_amp =
      amp_effect * (adhd ? config_.adhd_fidget_amplitude
                         : config_.control_fidget_amplitude);
  // Fidgets: independent Poisson process per tracker, favoring hands/leg.
  for (size_t tracker = 0; tracker < kNumTrackers; ++tracker) {
    double site_scale = tracker == 0 ? 0.6 : 1.0;  // heads move less
    double tb = rng_.Exponential(fidget_rate * site_scale);
    while (tb < duration) {
      MotionBurst b;
      b.tracker = tracker;
      b.channel = static_cast<size_t>(rng_.UniformInt(0, 5));
      b.start_s = tb;
      b.duration_s = rng_.Uniform(0.4, adhd ? 2.5 : 1.2);
      b.amplitude = fidget_amp * rng_.Uniform(0.5, 1.5);
      b.frequency_hz = rng_.Uniform(0.8, 3.0);
      bursts.push_back(b);
      tb += rng_.Exponential(fidget_rate * site_scale);
    }
  }
  // Orienting responses to distractions: the head (and sometimes torso,
  // approximated by the leg tracker shifting) turns toward the event.
  const double orient_p = adhd ? config_.adhd_orient_probability
                               : config_.control_orient_probability;
  for (const DistractionEvent& d : session.distractions) {
    if (!rng_.Bernoulli(orient_p)) continue;
    MotionBurst head;
    head.tracker = static_cast<size_t>(TrackerSite::kHead);
    head.channel = 3;  // H rotation: looking toward the distraction
    head.start_s = d.time_s + rng_.Uniform(0.1, 0.5);
    head.duration_s = d.duration_s * (adhd ? rng_.Uniform(0.8, 1.3)
                                           : rng_.Uniform(0.3, 0.7));
    head.amplitude = rng_.Uniform(20.0, 45.0);
    head.frequency_hz = 0.5 / std::max(head.duration_s, 0.5);
    bursts.push_back(head);
  }

  // --- Responses to targets (button presses move the right hand). ---
  const double hit_rate = adhd ? config_.adhd_hit_rate : config_.control_hit_rate;
  for (const Stimulus& s : session.stimuli) {
    if (!s.is_target) continue;
    Response r;
    r.hit = rng_.Bernoulli(hit_rate);
    if (r.hit) {
      r.reaction_time_s = std::max(
          0.15, rng_.Gaussian(adhd ? 0.55 : 0.42, adhd ? 0.18 : 0.08));
      r.time_s = s.time_s + r.reaction_time_s;
      MotionBurst press;
      press.tracker = static_cast<size_t>(TrackerSite::kRightHand);
      press.channel = 2;  // Z: pressing down
      press.start_s = r.time_s - 0.1;
      press.duration_s = 0.3;
      press.amplitude = 2.0;
      press.frequency_hz = 1.5;
      bursts.push_back(press);
    } else {
      r.time_s = s.time_s;
    }
    session.responses.push_back(r);
  }

  // --- Render the 24-channel recording. ---
  const double dt = 1.0 / kClassroomSampleRateHz;
  const size_t num_frames = static_cast<size_t>(duration / dt);
  const size_t channels = kNumTrackers * kTrackerDims;
  // Resting posture per channel (seated child).
  std::vector<double> baseline(channels, 0.0);
  baseline[0 * kTrackerDims + 1] = 110.0;  // head height (cm)
  baseline[1 * kTrackerDims + 1] = 70.0;   // left hand height
  baseline[2 * kTrackerDims + 1] = 70.0;   // right hand height
  baseline[3 * kTrackerDims + 1] = 20.0;   // leg height
  // Postural sway: slow low-amplitude oscillation per channel.
  std::vector<double> sway_phase(channels), sway_freq(channels);
  for (size_t c = 0; c < channels; ++c) {
    sway_phase[c] = rng_.Uniform(0.0, 2.0 * kPi);
    sway_freq[c] = rng_.Uniform(0.05, 0.25);
  }

  session.recording.sample_rate_hz = kClassroomSampleRateHz;
  for (size_t f = 0; f < num_frames; ++f) {
    double time = static_cast<double>(f) * dt;
    streams::Frame frame;
    frame.timestamp = time;
    frame.values.assign(channels, 0.0);
    for (size_t c = 0; c < channels; ++c) {
      frame.values[c] = baseline[c] +
                        0.4 * std::sin(2.0 * kPi * sway_freq[c] * time +
                                       sway_phase[c]) +
                        rng_.Gaussian(0.0, 0.08);
    }
    for (const MotionBurst& b : bursts) {
      frame.values[b.tracker * kTrackerDims + b.channel] += b.ValueAt(time);
    }
    session.recording.Append(std::move(frame));
  }
  return session;
}

std::vector<ClassroomSession> VirtualClassroomSimulator::GenerateCohort(
    size_t per_group) {
  std::vector<ClassroomSession> cohort;
  cohort.reserve(2 * per_group);
  for (size_t i = 0; i < per_group; ++i) {
    cohort.push_back(GenerateSession(SubjectGroup::kControl));
    cohort.push_back(GenerateSession(SubjectGroup::kAdhd));
  }
  return cohort;
}

std::vector<streams::Sample> SessionToSamples(
    const ClassroomSession& session) {
  std::vector<streams::Sample> samples;
  const size_t channels = kNumTrackers * kTrackerDims;
  samples.reserve(session.recording.num_frames() * channels);
  for (const streams::Frame& frame : session.recording.frames) {
    AIMS_CHECK(frame.values.size() == channels);
    for (size_t c = 0; c < channels; ++c) {
      streams::Sample s;
      s.sensor_id = static_cast<streams::SensorId>(c);
      s.timestamp = frame.timestamp;
      s.value = frame.values[c];
      samples.push_back(s);
    }
  }
  return samples;
}

}  // namespace aims::synth
