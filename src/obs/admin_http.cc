#include "obs/admin_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace aims::obs {

namespace {

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 414:
      return "URI Too Long";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "OK";
  }
}

// Canned overload answer, written straight from the accept thread when the
// pending queue is full: constant cost, no allocation, no handler.
constexpr char kOverloadResponse[] =
    "HTTP/1.1 503 Service Unavailable\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: 36\r\n"
    "Connection: close\r\n"
    "\r\n"
    "{\"error\":\"admin plane at capacity\"}\n";

void SetSocketTimeouts(int fd, double timeout_ms) {
  if (timeout_ms <= 0.0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
  tv.tv_usec =
      static_cast<suseconds_t>(static_cast<long>(timeout_ms * 1000.0) %
                               1000000L);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

AdminHttpServer::AdminHttpServer(AdminHttpConfig config)
    : config_(config) {
  if (config_.handler_threads < 1) config_.handler_threads = 1;
  if (config_.max_pending < 1) config_.max_pending = 1;
  if (config_.max_request_bytes < 256) config_.max_request_bytes = 256;
}

AdminHttpServer::~AdminHttpServer() { Stop(); }

void AdminHttpServer::Route(std::string path, Handler handler) {
  exact_routes_[std::move(path)] = std::move(handler);
}

void AdminHttpServer::RoutePrefix(std::string prefix, Handler handler) {
  prefix_routes_.emplace_back(std::move(prefix), std::move(handler));
}

Status AdminHttpServer::Start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (running_) {
    return Status::FailedPrecondition("admin http: already started");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("admin http: socket: ") +
                           std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    return Status::IoError("admin http: bind 127.0.0.1:" +
                           std::to_string(config_.port) + ": " +
                           std::strerror(saved));
  }
  if (::listen(fd, 64) != 0) {
    const int saved = errno;
    ::close(fd);
    return Status::IoError(std::string("admin http: listen: ") +
                           std::strerror(saved));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    const int saved = errno;
    ::close(fd);
    return Status::IoError(std::string("admin http: getsockname: ") +
                           std::strerror(saved));
  }
  listen_fd_ = fd;
  port_.store(static_cast<int>(ntohs(addr.sin_port)),
              std::memory_order_release);

  {
    std::lock_guard<std::mutex> queue_lock(queue_mutex_);
    stop_requested_ = false;
  }
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  handlers_.reserve(static_cast<size_t>(config_.handler_threads));
  for (int i = 0; i < config_.handler_threads; ++i) {
    handlers_.emplace_back([this] { HandlerLoop(); });
  }
  return Status::OK();
}

void AdminHttpServer::Stop() {
  std::thread accept_to_join;
  std::vector<std::thread> handlers_to_join;
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!running_) return;
    running_ = false;
    {
      std::lock_guard<std::mutex> queue_lock(queue_mutex_);
      stop_requested_ = true;
    }
    queue_cv_.notify_all();
    accept_to_join = std::move(accept_thread_);
    handlers_to_join = std::move(handlers_);
    handlers_.clear();
  }
  if (accept_to_join.joinable()) accept_to_join.join();
  for (std::thread& t : handlers_to_join) {
    if (t.joinable()) t.join();
  }
  // Connections still queued never reached a handler: close them (the
  // client sees a reset, same contract as the canned 503 path but later).
  {
    std::lock_guard<std::mutex> queue_lock(queue_mutex_);
    for (int fd : pending_) ::close(fd);
    pending_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_.store(-1, std::memory_order_release);
}

bool AdminHttpServer::running() const {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  return running_;
}

void AdminHttpServer::AcceptLoop() {
  // poll() with a short timeout instead of relying on close() waking a
  // blocked accept(): the close-to-wake pattern races on some platforms
  // (the fd can be recycled between the close and the wakeup).
  struct pollfd pfd;
  pfd.fd = listen_fd_;
  pfd.events = POLLIN;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (stop_requested_) return;
    }
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    SetSocketTimeouts(fd, config_.io_timeout_ms);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (!stop_requested_ && pending_.size() < config_.max_pending) {
        pending_.push_back(fd);
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
    } else {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      WriteAll(fd, kOverloadResponse, sizeof(kOverloadResponse) - 1);
      ::close(fd);
    }
  }
}

void AdminHttpServer::HandlerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [&] { return stop_requested_ || !pending_.empty(); });
      if (stop_requested_) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

bool AdminHttpServer::ReadRequestHead(int fd, std::string* head) {
  char buffer[1024];
  const auto start = std::chrono::steady_clock::now();
  while (head->find("\r\n\r\n") == std::string::npos) {
    if (head->size() >= config_.max_request_bytes) {
      slow_clients_.fetch_add(1, std::memory_order_relaxed);
      AdminResponse too_large;
      too_large.status = 431;
      too_large.body = "{\"error\":\"request head too large\"}\n";
      WriteResponse(fd, too_large);
      return false;
    }
    // Request-line cap, checked before the full head cap: a target that
    // has not even finished its first line by this many bytes is hostile.
    if (head->find("\r\n") == std::string::npos &&
        head->size() >= config_.max_request_line_bytes) {
      slow_clients_.fetch_add(1, std::memory_order_relaxed);
      AdminResponse too_long;
      too_long.status = 414;
      too_long.body = "{\"error\":\"request line too long\"}\n";
      WriteResponse(fd, too_long);
      return false;
    }
    // Total-deadline enforcement: the per-recv SO_RCVTIMEO bounds one
    // stall, but a trickling client resets it with every byte. Poll with
    // the REMAINING budget so the whole head read is wall-clock bounded;
    // on expiry close without a response (the 408 a slowloris client is
    // waiting for would itself be a write to a hostile peer).
    if (config_.read_deadline_ms > 0.0) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      const double remaining_ms = config_.read_deadline_ms - elapsed_ms;
      if (remaining_ms <= 0.0) {
        slow_clients_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int wait_ms = static_cast<int>(remaining_ms) + 1;
      const int ready = ::poll(&pfd, 1, wait_ms);
      if (ready <= 0) {
        slow_clients_.fetch_add(1, std::memory_order_relaxed);
        return false;  // deadline expired with no readable data
      }
    }
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) return false;  // timeout, reset, or premature close
    head->append(buffer, static_cast<size_t>(n));
  }
  return true;
}

const AdminHttpServer::Handler* AdminHttpServer::Resolve(
    const std::string& path) const {
  auto it = exact_routes_.find(path);
  if (it != exact_routes_.end()) return &it->second;
  const Handler* best = nullptr;
  size_t best_len = 0;
  for (const auto& [prefix, handler] : prefix_routes_) {
    if (path.size() >= prefix.size() &&
        path.compare(0, prefix.size(), prefix) == 0 &&
        prefix.size() >= best_len) {
      best = &handler;
      best_len = prefix.size();
    }
  }
  return best;
}

void AdminHttpServer::ServeConnection(int fd) {
  std::string head;
  if (!ReadRequestHead(fd, &head)) return;

  // Request line: METHOD SP PATH[?QUERY] SP VERSION CRLF
  const size_t line_end = head.find("\r\n");
  const std::string line = head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    AdminResponse bad;
    bad.status = 400;
    bad.body = "{\"error\":\"malformed request line\"}\n";
    WriteResponse(fd, bad);
    return;
  }
  AdminRequest request;
  request.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    request.query = target.substr(qmark + 1);
    target.resize(qmark);
  }
  request.path = std::move(target);

  if (request.method != "GET") {
    AdminResponse not_allowed;
    not_allowed.status = 405;
    not_allowed.body = "{\"error\":\"admin plane is read-only; use GET\"}\n";
    WriteResponse(fd, not_allowed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const Handler* handler = Resolve(request.path);
  AdminResponse response;
  if (handler == nullptr) {
    response.status = 404;
    response.body = "{\"error\":\"no such endpoint\"}\n";
  } else {
    response = (*handler)(request);
  }
  WriteResponse(fd, response);
  requests_.fetch_add(1, std::memory_order_relaxed);
}

void AdminHttpServer::WriteAll(int fd, const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n =
        ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // timeout or reset: give up, caller closes
    off += static_cast<size_t>(n);
  }
}

void AdminHttpServer::WriteResponse(int fd, const AdminResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  WriteAll(fd, out.data(), out.size());
}

std::string UrlDecode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < text.size()) {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      const int hi = hex(text[i + 1]);
      const int lo = hex(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
      } else {
        out += c;  // malformed escape passes through literally
      }
    } else {
      out += c;
    }
  }
  return out;
}

std::map<std::string, std::string> ParseQueryParams(const std::string& query) {
  std::map<std::string, std::string> params;
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        params[UrlDecode(pair)] = "";
      } else {
        params[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
      }
    }
    pos = amp + 1;
  }
  return params;
}

}  // namespace aims::obs
