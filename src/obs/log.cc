#include "obs/log.h"

#include <utility>

#include "common/macros.h"

namespace aims::obs {

namespace {

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

AsyncLogger::AsyncLogger(std::ostream* sink, AsyncLogConfig config)
    : sink_(sink),
      config_(config),
      epoch_(std::chrono::steady_clock::now()) {
  AIMS_CHECK(sink_ != nullptr);
  if (config_.ring_capacity < 2) config_.ring_capacity = 2;
  const size_t capacity = RoundUpPowerOfTwo(config_.ring_capacity);
  mask_ = capacity - 1;
  cells_ = std::make_unique<Cell[]>(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    cells_[i].sequence.store(i, std::memory_order_relaxed);
  }
  if (config_.drain_interval_ms <= 0.0) config_.drain_interval_ms = 20.0;
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    running_ = true;
    thread_ = std::thread([this] { DrainLoop(); });
  }
}

AsyncLogger::~AsyncLogger() { Stop(); }

bool AsyncLogger::RateAdmit() {
  if (config_.max_records_per_sec == 0) return true;
  const int64_t now_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  int64_t window = rate_window_start_ms_.load(std::memory_order_relaxed);
  if (now_ms - window >= 1000) {
    // One producer wins the window roll; losers just count against the
    // fresh window. The limit is approximate at window edges by design —
    // exactness is not worth a lock on the log path.
    if (rate_window_start_ms_.compare_exchange_strong(
            window, now_ms, std::memory_order_relaxed)) {
      rate_window_count_.store(0, std::memory_order_relaxed);
    }
  }
  return rate_window_count_.fetch_add(1, std::memory_order_relaxed) <
         config_.max_records_per_sec;
}

bool AsyncLogger::TryPush(std::string* line) {
  uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const uint64_t seq = cell.sequence.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.line = std::move(*line);
        cell.sequence.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS failure reloaded pos; retry with the new claim point.
    } else if (dif < 0) {
      return false;  // Ring full: the consumer has not freed this cell yet.
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

bool AsyncLogger::TryPop(std::string* line) {
  uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const uint64_t seq = cell.sequence.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
    if (dif == 0) {
      if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        *line = std::move(cell.line);
        cell.line.clear();
        cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false;  // Ring empty (or the producer has not published yet).
    } else {
      pos = dequeue_pos_.load(std::memory_order_relaxed);
    }
  }
}

bool AsyncLogger::Log(std::string line) {
  if (!RateAdmit()) {
    dropped_rate_limited_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!TryPush(&line)) {
    dropped_full_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void AsyncLogger::Flush() {
  // Snapshot the claim cursor first: every record whose CAS on
  // enqueue_pos_ won before this line is part of the flush contract, even
  // if its producer has not yet stored the cell's sequence (the publish
  // store). A drain that only takes what is poppable right now would
  // silently lose such a record at shutdown — the producer was told
  // "accepted" (Log() returned true), no drop counter moved, and the line
  // never reaches the sink. So: drain until the dequeue cursor catches the
  // snapshot, yielding past momentarily-unpublished cells.
  const uint64_t target = enqueue_pos_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(drain_mutex_);
  std::string line;
  bool wrote = false;
  while (dequeue_pos_.load(std::memory_order_relaxed) < target) {
    if (TryPop(&line)) {
      *sink_ << line << '\n';
      published_.fetch_add(1, std::memory_order_relaxed);
      wrote = true;
    } else {
      // Claimed but not yet published: the producer is mid-store between
      // its CAS and its sequence release. It finishes in a bounded number
      // of its instructions; yield until it does.
      std::this_thread::yield();
    }
  }
  if (wrote) sink_->flush();
}

void AsyncLogger::DrainLoop() {
  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(config_.drain_interval_ms));
  std::unique_lock<std::mutex> lock(thread_mutex_);
  for (;;) {
    wake_cv_.wait_for(lock, interval, [&] { return stop_requested_; });
    const bool stopping = stop_requested_;
    lock.unlock();
    Flush();
    if (stopping) return;
    lock.lock();
  }
}

void AsyncLogger::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!running_) return;
    stop_requested_ = true;
    to_join = std::move(thread_);
    running_ = false;
  }
  wake_cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  // The drain thread's final Flush ran before it exited; one more pass
  // catches records published while it was shutting down.
  Flush();
}

bool AsyncLogger::running() const {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  return running_;
}

}  // namespace aims::obs
