#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#if defined(__linux__)
#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#endif

#include "common/macros.h"

namespace aims::obs {

MetricsTimeSeries::MetricsTimeSeries(MetricsTimeSeriesConfig config)
    : config_(config),
      stripes_(config_.stripes < 1 ? 1 : config_.stripes) {
  if (config_.chunk_max_samples < 2) config_.chunk_max_samples = 2;
}

MetricsTimeSeries::Stripe& MetricsTimeSeries::StripeFor(
    const std::string& series) const {
  return stripes_[std::hash<std::string>{}(series) % stripes_.size()];
}

void MetricsTimeSeries::Append(const std::string& series, int64_t t_ms,
                               double value) {
  Stripe& stripe = StripeFor(series);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  Series& s = stripe.series[series];
  const size_t active_count = s.active.count();
  if ((active_count > 0 || !s.sealed.empty()) && t_ms <= s.last_ms) {
    // Appends are time-ordered per series; a non-advancing timestamp (the
    // wall clock stepped) is dropped rather than corrupting the deltas.
    ++stripe.out_of_order_dropped;
    return;
  }
  if (active_count == 0) s.active_start_ms = t_ms;
  s.active.Append(t_ms, value);
  s.last_ms = t_ms;
  ++stripe.samples_appended;
  if (s.active.count() >= config_.chunk_max_samples) {
    SealAndRetainLocked(stripe, s, t_ms);
  } else if (++stripe.appends_since_retention >= kRetentionAppendPeriod) {
    // Seals are the main retention trigger, but a stripe whose hot series
    // never seal (small active chunks, quiet neighbours) must still expire
    // its neighbours' old sealed chunks.
    ApplyAgeRetentionLocked(stripe, t_ms);
  }
}

void MetricsTimeSeries::SealAndRetainLocked(Stripe& stripe, Series& s,
                                            int64_t now_ms) {
  SealedChunk chunk;
  chunk.count = s.active.count();
  chunk.start_ms = s.active_start_ms;
  chunk.end_ms = s.last_ms;
  chunk.bytes = s.active.TakeBytes();
  stripe.sealed_bytes += chunk.bytes.size();
  s.sealed.push_back(std::move(chunk));
  s.active = gorilla::GorillaEncoder();

  ApplyAgeRetentionLocked(stripe, now_ms);
  // Size retention: while over budget, drop the stripe's globally oldest
  // sealed chunk. O(series) per drop — sealing is rare (once per
  // chunk_max_samples appends).
  if (config_.max_bytes_per_stripe > 0) {
    while (stripe.sealed_bytes > config_.max_bytes_per_stripe) {
      Series* oldest = nullptr;
      for (auto& [name, other] : stripe.series) {
        if (other.sealed.empty()) continue;
        if (oldest == nullptr ||
            other.sealed.front().start_ms <
                oldest->sealed.front().start_ms) {
          oldest = &other;
        }
      }
      if (oldest == nullptr) break;  // budget smaller than active chunks
      stripe.sealed_bytes -= oldest->sealed.front().bytes.size();
      oldest->sealed.pop_front();
      ++stripe.chunks_dropped_size;
    }
  }
}

void MetricsTimeSeries::ApplyAgeRetentionLocked(Stripe& stripe,
                                                int64_t now_ms) {
  stripe.appends_since_retention = 0;
  if (config_.retention_ms <= 0.0) return;
  // Drop sealed chunks (any series in this stripe) whose newest sample
  // fell out of the window.
  const int64_t cutoff = now_ms - static_cast<int64_t>(config_.retention_ms);
  for (auto& [name, other] : stripe.series) {
    while (!other.sealed.empty() && other.sealed.front().end_ms < cutoff) {
      stripe.sealed_bytes -= other.sealed.front().bytes.size();
      other.sealed.pop_front();
      ++stripe.chunks_dropped_age;
    }
  }
}

std::vector<gorilla::Sample> MetricsTimeSeries::Query(
    const std::string& series, int64_t start_ms, int64_t end_ms) const {
  std::vector<gorilla::Sample> out;
  Stripe& stripe = StripeFor(series);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.series.find(series);
  if (it == stripe.series.end()) return out;
  const Series& s = it->second;
  auto take = [&](const std::vector<uint8_t>& bytes, size_t count) {
    // Decoding our own sealed bytes cannot fail; a failure here means the
    // store corrupted its own chunk.
    Result<std::vector<gorilla::Sample>> decoded =
        gorilla::GorillaDecode(bytes, count);
    AIMS_CHECK(decoded.ok());
    for (const gorilla::Sample& sample : *decoded) {
      if (sample.t_ms >= start_ms && sample.t_ms <= end_ms) {
        out.push_back(sample);
      }
    }
  };
  for (const SealedChunk& chunk : s.sealed) {
    if (chunk.end_ms < start_ms || chunk.start_ms > end_ms) continue;
    take(chunk.bytes, chunk.count);
  }
  if (s.active.count() > 0 && s.last_ms >= start_ms &&
      s.active_start_ms <= end_ms) {
    take(s.active.bytes(), s.active.count());
  }
  return out;
}

std::vector<std::string> MetricsTimeSeries::SeriesNames() const {
  std::vector<std::string> out;
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    for (const auto& [name, s] : stripe.series) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TimeSeriesStats MetricsTimeSeries::Stats() const {
  TimeSeriesStats stats;
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stats.series += stripe.series.size();
    stats.samples_appended += stripe.samples_appended;
    stats.chunks_dropped_age += stripe.chunks_dropped_age;
    stats.chunks_dropped_size += stripe.chunks_dropped_size;
    stats.out_of_order_dropped += stripe.out_of_order_dropped;
    for (const auto& [name, s] : stripe.series) {
      stats.samples_retained += s.active.count();
      stats.compressed_bytes += s.active.size_bytes();
      stats.sealed_chunks += s.sealed.size();
      for (const SealedChunk& chunk : s.sealed) {
        stats.samples_retained += chunk.count;
      }
    }
    stats.compressed_bytes += stripe.sealed_bytes;
  }
  if (stats.compressed_bytes > 0) {
    stats.compression_ratio =
        static_cast<double>(stats.samples_retained) * 16.0 /
        static_cast<double>(stats.compressed_bytes);
  }
  return stats;
}

bool ParseRangeFunc(const std::string& name, RangeFunc* out) {
  if (name == "avg_over_time" || name == "avg") *out = RangeFunc::kAvg;
  else if (name == "min_over_time" || name == "min") *out = RangeFunc::kMin;
  else if (name == "max_over_time" || name == "max") *out = RangeFunc::kMax;
  else if (name == "last_over_time" || name == "last") *out = RangeFunc::kLast;
  else if (name == "rate") *out = RangeFunc::kRate;
  else if (name == "delta") *out = RangeFunc::kDelta;
  else if (name == "quantile_over_time" || name == "quantile")
    *out = RangeFunc::kQuantile;
  else return false;
  return true;
}

const char* RangeFuncName(RangeFunc func) {
  switch (func) {
    case RangeFunc::kAvg: return "avg_over_time";
    case RangeFunc::kMin: return "min_over_time";
    case RangeFunc::kMax: return "max_over_time";
    case RangeFunc::kLast: return "last_over_time";
    case RangeFunc::kRate: return "rate";
    case RangeFunc::kDelta: return "delta";
    case RangeFunc::kQuantile: return "quantile_over_time";
  }
  return "avg_over_time";
}

namespace {

/// Reset-safe increase over an ordered run of counter samples: a drop
/// below the predecessor is a restart from zero (a 2^64 wrap shows up the
/// same way once the value lands back near zero), so the sum of positive
/// segments is the true increase and never negative.
double IncreaseOverSamples(const std::vector<gorilla::Sample>& samples) {
  double increase = 0.0;
  for (size_t i = 1; i < samples.size(); ++i) {
    const double prev = samples[i - 1].value;
    const double cur = samples[i].value;
    increase += cur >= prev ? cur - prev : cur;
  }
  return increase;
}

double QuantileOfSamples(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace

Result<std::vector<RangePoint>> EvaluateRangeQuery(
    const MetricsTimeSeries& store, const RangeQuery& query) {
  if (query.step_ms <= 0) {
    return Status::InvalidArgument("range query: step must be positive");
  }
  if (query.end_ms < query.start_ms) {
    return Status::InvalidArgument("range query: end before start");
  }
  // start/end/step come straight off an HTTP query string: bound the
  // magnitudes (so the window arithmetic below cannot overflow int64) and
  // the window count (so a degenerate range like end=9e15&step=0.001
  // cannot pin a handler thread evaluating ~1e19 windows).
  if (query.start_ms < -kMaxRangeQueryTimestampMs ||
      query.start_ms > kMaxRangeQueryTimestampMs ||
      query.end_ms > kMaxRangeQueryTimestampMs ||
      query.step_ms > kMaxRangeQueryTimestampMs) {
    return Status::InvalidArgument(
        "range query: timestamp or step out of range");
  }
  if ((query.end_ms - query.start_ms) / query.step_ms >=
      kMaxRangeQueryPoints) {
    return Status::InvalidArgument(
        "range query: range/step spans more than " +
        std::to_string(kMaxRangeQueryPoints) + " points");
  }
  // One store read covers every window: the first window reaches one step
  // before the range start.
  const std::vector<gorilla::Sample> samples =
      store.Query(query.series, query.start_ms - query.step_ms, query.end_ms);
  std::vector<RangePoint> out;
  size_t lo = 0;
  for (int64_t t = query.start_ms; t <= query.end_ms; t += query.step_ms) {
    const int64_t window_start = t - query.step_ms;  // window (start, t]
    while (lo < samples.size() && samples[lo].t_ms <= window_start) ++lo;
    size_t hi = lo;
    while (hi < samples.size() && samples[hi].t_ms <= t) ++hi;
    if (hi == lo) continue;  // empty window: no point, as in Prometheus
    RangePoint point;
    point.t_ms = t;
    switch (query.func) {
      case RangeFunc::kAvg: {
        double sum = 0.0;
        for (size_t i = lo; i < hi; ++i) sum += samples[i].value;
        point.value = sum / static_cast<double>(hi - lo);
        break;
      }
      case RangeFunc::kMin: {
        point.value = samples[lo].value;
        for (size_t i = lo + 1; i < hi; ++i) {
          point.value = std::min(point.value, samples[i].value);
        }
        break;
      }
      case RangeFunc::kMax: {
        point.value = samples[lo].value;
        for (size_t i = lo + 1; i < hi; ++i) {
          point.value = std::max(point.value, samples[i].value);
        }
        break;
      }
      case RangeFunc::kLast:
        point.value = samples[hi - 1].value;
        break;
      case RangeFunc::kRate: {
        if (hi - lo < 2) continue;  // a rate needs two samples
        const std::vector<gorilla::Sample> window(samples.begin() + lo,
                                                  samples.begin() + hi);
        const double span_s =
            static_cast<double>(window.back().t_ms - window.front().t_ms) /
            1000.0;
        if (span_s <= 0.0) continue;
        point.value = IncreaseOverSamples(window) / span_s;
        break;
      }
      case RangeFunc::kDelta:
        if (hi - lo < 2) continue;
        point.value = samples[hi - 1].value - samples[lo].value;
        break;
      case RangeFunc::kQuantile: {
        std::vector<double> values;
        values.reserve(hi - lo);
        for (size_t i = lo; i < hi; ++i) values.push_back(samples[i].value);
        point.value = QuantileOfSamples(std::move(values), query.quantile);
        break;
      }
    }
    out.push_back(point);
  }
  return out;
}

double IncreaseOver(const MetricsTimeSeries& store, const std::string& series,
                    int64_t start_ms, int64_t end_ms) {
  return IncreaseOverSamples(store.Query(series, start_ms, end_ms));
}

ProcessStats ReadProcessStats() {
  ProcessStats stats;
#if defined(__linux__)
  // RSS: /proc/self/statm field 2, in pages.
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long size = 0;
    long resident = 0;
    if (std::fscanf(f, "%ld %ld", &size, &resident) == 2) {
      stats.rss_bytes =
          static_cast<int64_t>(resident) * ::sysconf(_SC_PAGESIZE);
      stats.ok = true;
    }
    std::fclose(f);
  }
  // Open fds: directory entries under /proc/self/fd (minus . and ..).
  if (DIR* dir = ::opendir("/proc/self/fd")) {
    int64_t count = 0;
    while (struct dirent* entry = ::readdir(dir)) {
      if (entry->d_name[0] != '.') ++count;
    }
    ::closedir(dir);
    stats.open_fds = count > 0 ? count - 1 : 0;  // the opendir fd itself
    stats.ok = true;
  }
  // CPU: utime + stime from /proc/self/stat; the comm field may contain
  // spaces and parens, so parse from the last ')'.
  if (std::FILE* f = std::fopen("/proc/self/stat", "r")) {
    char buf[1024];
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    if (const char* close_paren = std::strrchr(buf, ')')) {
      unsigned long long utime = 0;
      unsigned long long stime = 0;
      // After ") " comes the state char, then 10 fields, then utime/stime.
      if (std::sscanf(close_paren + 1,
                      " %*c %*s %*s %*s %*s %*s %*s %*s %*s %*s %*s %llu %llu",
                      &utime, &stime) == 2) {
        const double ticks = static_cast<double>(::sysconf(_SC_CLK_TCK));
        if (ticks > 0) {
          stats.cpu_seconds =
              static_cast<double>(utime + stime) / ticks;
          stats.ok = true;
        }
      }
    }
  }
#endif
  return stats;
}

MetricsScraper::MetricsScraper(const MetricsRegistry* registry,
                               MetricsTimeSeries* store, Config config)
    : registry_(registry), store_(store), config_(config) {
  AIMS_CHECK(registry_ != nullptr);
  AIMS_CHECK(store_ != nullptr);
  if (config_.interval_ms <= 0.0) config_.interval_ms = 1000.0;
}

MetricsScraper::~MetricsScraper() { Stop(); }

void MetricsScraper::SetPostScrapeHook(
    std::function<void(int64_t now_ms)> hook) {
  post_scrape_hook_ = std::move(hook);
}

void MetricsScraper::SetWatchdogHandle(Watchdog::Handle* handle) {
  watchdog_ = handle;
}

int64_t MetricsScraper::ScrapeOnce(int64_t at_ms) {
  const int64_t now_ms =
      at_ms != 0
          ? at_ms
          : std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count();
  for (const auto& [name, counter] : registry_->Counters()) {
    store_->Append(name, now_ms, static_cast<double>(counter->value()));
  }
  for (const auto& [name, gauge] : registry_->Gauges()) {
    store_->Append(name, now_ms, static_cast<double>(gauge->value()));
  }
  for (const auto& [name, hist] : registry_->Histograms()) {
    store_->Append(name + ".p50", now_ms, hist->ApproxQuantile(0.5));
    store_->Append(name + ".p95", now_ms, hist->ApproxQuantile(0.95));
    store_->Append(name + ".p99", now_ms, hist->ApproxQuantile(0.99));
    store_->Append(name + ".count", now_ms,
                   static_cast<double>(hist->count()));
  }
  if (config_.include_process) {
    const ProcessStats process = ReadProcessStats();
    if (process.ok) {
      store_->Append("process.rss_bytes", now_ms,
                     static_cast<double>(process.rss_bytes));
      store_->Append("process.open_fds", now_ms,
                     static_cast<double>(process.open_fds));
      store_->Append("process.cpu_seconds_total", now_ms,
                     process.cpu_seconds);
    }
  }
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  if (post_scrape_hook_) post_scrape_hook_(now_ms);
  return now_ms;
}

void MetricsScraper::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (running_) return;
    stop_requested_ = false;
    running_ = true;
  }
  thread_ = std::thread([this] { Loop(); });
}

void MetricsScraper::Stop() {
  // The lifecycle mutex spans the join: a Start racing this Stop waits
  // until the old loop thread has observed the stop and exited, instead
  // of respawning while it still runs (which would leave this join
  // waiting on a thread that never sees its stop flag).
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(thread_mutex_);
  running_ = false;
}

bool MetricsScraper::running() const {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  return running_;
}

void MetricsScraper::Loop() {
  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(config_.interval_ms));
  // Armed only while the loop runs, same contract as the stats reporter.
  Watchdog::Scope heartbeat(watchdog_);
  std::unique_lock<std::mutex> lock(thread_mutex_);
  while (!stop_requested_) {
    if (wake_cv_.wait_for(lock, interval, [&] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    if (watchdog_ != nullptr) watchdog_->Beat();
    ScrapeOnce();
    lock.lock();
  }
}

}  // namespace aims::obs
