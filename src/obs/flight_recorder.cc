#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/macros.h"
#include "obs/json_util.h"

namespace aims::obs {

namespace {

// Fatal-signal plumbing. The handler may run on any thread at any point,
// so everything it touches is a process-global published with atomics: the
// pre-serialized bundle (pointer + size into one of the recorder's two
// stable buffers) and a fixed-size path. The handler performs only
// async-signal-safe calls (open/write/close), then re-raises.
std::atomic<const char*> g_signal_data{nullptr};
std::atomic<size_t> g_signal_size{0};
char g_signal_path[512] = {0};
std::atomic<bool> g_signal_installed{false};

void FatalSignalHandler(int signo) {
  const char* data = g_signal_data.load(std::memory_order_acquire);
  const size_t size = g_signal_size.load(std::memory_order_acquire);
  if (data != nullptr && size > 0 && g_signal_path[0] != '\0') {
    int fd = ::open(g_signal_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      size_t off = 0;
      while (off < size) {
        ssize_t n = ::write(fd, data + off, size - off);
        if (n <= 0) break;
        off += static_cast<size_t>(n);
      }
      ::close(fd);
    }
  }
  // SA_RESETHAND restored the default action; re-raise so the process
  // still dies with the original signal (exit code / core unchanged).
  ::raise(signo);
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void AppendWalJson(std::string* out, const WalStats& wal) {
  *out += "{\"records\":" + std::to_string(wal.records) +
          ",\"commits\":" + std::to_string(wal.commits) +
          ",\"syncs\":" + std::to_string(wal.syncs) +
          ",\"max_commits_per_sync\":" +
          std::to_string(wal.max_commits_per_sync) +
          ",\"bytes_appended\":" + std::to_string(wal.bytes_appended) +
          ",\"lag_bytes\":" + std::to_string(wal.lag_bytes) +
          ",\"checkpoints\":" + std::to_string(wal.checkpoints) +
          ",\"recovered_txns\":" + std::to_string(wal.recovered_txns) +
          ",\"recovered_records\":" + std::to_string(wal.recovered_records) +
          ",\"discarded_bytes\":" + std::to_string(wal.discarded_bytes) + "}";
}

void AppendCacheJson(std::string* out, const CacheStats& cache) {
  *out += "{\"hits\":" + std::to_string(cache.hits) +
          ",\"misses\":" + std::to_string(cache.misses) +
          ",\"evictions\":" + std::to_string(cache.evictions) +
          ",\"invalidations\":" + std::to_string(cache.invalidations) +
          ",\"insertions\":" + std::to_string(cache.insertions) +
          ",\"bytes_cached\":" + std::to_string(cache.bytes_cached) +
          ",\"blocks_cached\":" + std::to_string(cache.blocks_cached) +
          ",\"capacity_bytes\":" + std::to_string(cache.capacity_bytes) + "}";
}

void AppendShardJson(std::string* out, const ShardStatsEntry& shard) {
  *out += "{\"shard\":" + std::to_string(shard.shard) +
          ",\"sessions\":" + std::to_string(shard.sessions) +
          ",\"tenants\":" + std::to_string(shard.tenants) +
          ",\"ingests\":" + std::to_string(shard.ingests) +
          ",\"queries\":" + std::to_string(shard.queries) +
          ",\"wal_lag_bytes\":" + std::to_string(shard.wal_lag_bytes) +
          ",\"lock_wait_p50_ms\":";
  AppendJsonDouble(out, shard.lock_wait_p50_ms);
  *out += ",\"lock_wait_p99_ms\":";
  AppendJsonDouble(out, shard.lock_wait_p99_ms);
  *out += ",\"queue_depth\":" + std::to_string(shard.queue_depth) + "}";
}

void AppendSloJson(std::string* out, const SloStatus& slo) {
  *out += "{\"name\":\"" + JsonEscape(slo.name) + "\",\"kind\":\"" +
          SloKindName(slo.kind) + "\",\"objective\":";
  AppendJsonDouble(out, slo.objective);
  *out += ",\"series\":\"" + JsonEscape(slo.series) + "\",\"fast_burn\":";
  AppendJsonDouble(out, slo.fast_burn);
  *out += ",\"slow_burn\":";
  AppendJsonDouble(out, slo.slow_burn);
  *out += ",\"burning\":";
  *out += slo.burning ? "true" : "false";
  *out += ",\"reason\":\"" + JsonEscape(slo.reason) + "\"}";
}

void AppendSloHistoryJson(std::string* out, const SloHistoryEntry& entry) {
  *out += "{\"objective\":\"" + JsonEscape(entry.objective) +
          "\",\"series\":\"" + JsonEscape(entry.series) + "\",\"samples\":[";
  for (size_t i = 0; i < entry.samples.size(); ++i) {
    if (i > 0) *out += ',';
    *out += "[" + std::to_string(entry.samples[i].t_ms) + ",";
    AppendJsonDouble(out, entry.samples[i].value);
    *out += "]";
  }
  *out += "]}";
}

void AppendWatchdogJson(std::string* out,
                        const Watchdog::ThreadStatus& status) {
  *out += "{\"name\":\"" + JsonEscape(status.name) + "\",\"armed\":";
  *out += status.armed ? "true" : "false";
  *out += ",\"stalled\":";
  *out += status.stalled ? "true" : "false";
  *out += ",\"ms_since_beat\":";
  AppendJsonDouble(out, status.ms_since_beat);
  *out += ",\"deadline_ms\":";
  AppendJsonDouble(out, status.deadline_ms);
  *out += "}";
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config)), epoch_(std::chrono::steady_clock::now()) {
  if (config_.health_capacity < 1) config_.health_capacity = 1;
  if (config_.trace_capacity < 1) config_.trace_capacity = 1;
  if (config_.slow_query_capacity < 1) config_.slow_query_capacity = 1;
  if (config_.event_capacity < 1) config_.event_capacity = 1;
  if (!config_.bundle_path.empty() &&
      ::access(config_.bundle_path.c_str(), F_OK) == 0) {
    // A previous incarnation left a bundle — post-mortem evidence. Move it
    // aside so this incarnation's dumps/persists never clobber it.
    const std::string preserved = config_.bundle_path + ".prev";
    if (::rename(config_.bundle_path.c_str(), preserved.c_str()) == 0) {
      previous_bundle_path_ = preserved;
    } else {
      previous_bundle_path_ = config_.bundle_path;
    }
    RecordEvent("previous bundle preserved at " + previous_bundle_path_);
  }
}

FlightRecorder::~FlightRecorder() {
  Stop();
  if (signal_installed_) {
    // Leave the handler registered (it is process-global) but detach the
    // buffers so it can never read freed memory; a later recorder may
    // re-install and re-point them.
    g_signal_data.store(nullptr, std::memory_order_release);
    g_signal_size.store(0, std::memory_order_release);
    g_signal_installed.store(false, std::memory_order_release);
  }
}

void FlightRecorder::SetContextProvider(
    std::function<FlightContext()> provider) {
  context_provider_ = std::move(provider);
}

void FlightRecorder::RecordHealth(const HealthSnapshot& snapshot) {
  bool trigger = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    health_.push_back(snapshot);
    while (health_.size() > config_.health_capacity) health_.pop_front();
    trigger = snapshot.level == HealthLevel::kSaturated &&
              prev_level_ != HealthLevel::kSaturated;
    prev_level_ = snapshot.level;
  }
  // Dump outside the ring lock (it re-enters for the render).
  if (trigger) (void)Dump("health transition to Saturated");
}

void FlightRecorder::RecordEvictedTrace(const Trace& trace) {
  std::string json = trace.ToJson();
  std::lock_guard<std::mutex> lock(mutex_);
  ++evicted_trace_total_;
  evicted_traces_.push_back(std::move(json));
  while (evicted_traces_.size() > config_.trace_capacity) {
    evicted_traces_.pop_front();
  }
}

void FlightRecorder::RecordSlowQuery(const std::string& json_line) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++slow_query_total_;
  slow_queries_.push_back(json_line);
  while (slow_queries_.size() > config_.slow_query_capacity) {
    slow_queries_.pop_front();
  }
}

void FlightRecorder::RecordEvent(const std::string& what) {
  char stamp[48];
  std::snprintf(stamp, sizeof(stamp), "t=%.1fms ", MsSince(epoch_));
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(stamp + what);
  while (events_.size() > config_.event_capacity) events_.pop_front();
}

std::string FlightRecorder::Render(const std::string& reason) {
  FlightContext context;
  if (context_provider_) context = context_provider_();
  const double uptime_ms = MsSince(epoch_);
  std::lock_guard<std::mutex> lock(mutex_);
  return RenderLocked(reason, uptime_ms, context);
}

std::string FlightRecorder::RenderBundle(const std::string& reason) {
  return Render(reason);
}

std::string FlightRecorder::RenderLocked(const std::string& reason,
                                         double uptime_ms,
                                         const FlightContext& context) {
  std::string out = "{\"bundle\":\"aims_flightrecord\",\"schema_version\":1,";
  out += "\"reason\":\"" + JsonEscape(reason) + "\",\"uptime_ms\":";
  AppendJsonDouble(&out, uptime_ms);
  out += ",\"dumps\":" + std::to_string(dumps_.load(std::memory_order_relaxed));
  out += ",\"persists\":" +
         std::to_string(persists_.load(std::memory_order_relaxed));
  out += ",\"previous_bundle\":";
  out += previous_bundle_path_.empty()
             ? "null"
             : "\"" + JsonEscape(previous_bundle_path_) + "\"";
  out += ",\"health\":[";
  for (size_t i = 0; i < health_.size(); ++i) {
    if (i > 0) out += ',';
    out += HealthSnapshotJson(health_[i]);
  }
  out += "],\"evicted_traces_total\":" + std::to_string(evicted_trace_total_);
  out += ",\"evicted_traces\":[";
  for (size_t i = 0; i < evicted_traces_.size(); ++i) {
    if (i > 0) out += ',';
    out += evicted_traces_[i];
  }
  out += "],\"slow_queries_total\":" + std::to_string(slow_query_total_);
  out += ",\"slow_queries\":[";
  for (size_t i = 0; i < slow_queries_.size(); ++i) {
    if (i > 0) out += ',';
    out += slow_queries_[i];
  }
  out += "],\"events\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + JsonEscape(events_[i]) + '"';
  }
  out += "],\"wal\":";
  if (context.has_wal) {
    AppendWalJson(&out, context.wal);
  } else {
    out += "null";
  }
  out += ",\"cache\":";
  if (context.has_cache) {
    AppendCacheJson(&out, context.cache);
  } else {
    out += "null";
  }
  out += ",\"shards\":[";
  for (size_t i = 0; i < context.shards.size(); ++i) {
    if (i > 0) out += ',';
    AppendShardJson(&out, context.shards[i]);
  }
  out += "],\"watchdog\":[";
  for (size_t i = 0; i < context.watchdog.size(); ++i) {
    if (i > 0) out += ',';
    AppendWatchdogJson(&out, context.watchdog[i]);
  }
  out += "],\"slo\":[";
  for (size_t i = 0; i < context.slo.size(); ++i) {
    if (i > 0) out += ',';
    AppendSloJson(&out, context.slo[i]);
  }
  out += "],\"slo_history\":[";
  for (size_t i = 0; i < context.slo_history.size(); ++i) {
    if (i > 0) out += ',';
    AppendSloHistoryJson(&out, context.slo_history[i]);
  }
  out += "]}";

  if (signal_installed_) {
    // Refresh the pre-serialized fatal-signal copy: write the spare
    // buffer, then publish it. The previously published buffer stays
    // intact until the publish after next, so a handler racing one
    // refresh still reads a complete bundle.
    std::string& buffer = signal_buffers_[signal_next_];
    buffer = out;
    g_signal_data.store(buffer.data(), std::memory_order_release);
    g_signal_size.store(buffer.size(), std::memory_order_release);
    signal_next_ ^= 1;
  }
  return out;
}

Status FlightRecorder::WriteBundleFile(const std::string& json) {
  // tmp + fsync + rename: a reader (or a crash) never sees a torn bundle.
  std::lock_guard<std::mutex> lock(write_mutex_);
  const std::string tmp = config_.bundle_path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("flight recorder: open " + tmp + ": " +
                           std::strerror(errno));
  }
  size_t off = 0;
  while (off < json.size()) {
    ssize_t n = ::write(fd, json.data() + off, json.size() - off);
    if (n <= 0) {
      ::close(fd);
      return Status::IoError("flight recorder: write " + tmp + ": " +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IoError("flight recorder: fsync " + tmp + ": " +
                           std::strerror(errno));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), config_.bundle_path.c_str()) != 0) {
    return Status::IoError("flight recorder: rename to " +
                           config_.bundle_path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Result<std::string> FlightRecorder::Dump(const std::string& reason) {
  RecordEvent("dump: " + reason);
  const std::string json = Render(reason);
  dumps_.fetch_add(1, std::memory_order_relaxed);
  if (config_.bundle_path.empty()) return std::string();
  AIMS_RETURN_NOT_OK(WriteBundleFile(json));
  return config_.bundle_path;
}

void FlightRecorder::Start() {
  if (config_.persist_interval_ms <= 0.0 || config_.bundle_path.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { PersistLoop(); });
}

void FlightRecorder::Stop() {
  std::thread to_join;
  bool was_running = false;
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (running_) {
      stop_requested_ = true;
      to_join = std::move(thread_);
      running_ = false;
      was_running = true;
    }
  }
  wake_cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  if (was_running) {
    // One final persist: the black box's last written state covers the
    // shutdown itself.
    (void)WriteBundleFile(Render("shutdown"));
    persists_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool FlightRecorder::running() const {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  return running_;
}

void FlightRecorder::PersistLoop() {
  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              config_.persist_interval_ms));
  std::unique_lock<std::mutex> lock(thread_mutex_);
  while (!stop_requested_) {
    if (wake_cv_.wait_for(lock, interval, [&] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    (void)WriteBundleFile(Render("periodic persist"));
    persists_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
}

Status FlightRecorder::InstallFatalSignalHandler() {
  if (config_.bundle_path.empty()) {
    return Status::FailedPrecondition(
        "flight recorder: fatal-signal handler needs a bundle path");
  }
  bool expected = false;
  if (!g_signal_installed.compare_exchange_strong(expected, true)) {
    return Status::AlreadyExists(
        "flight recorder: a fatal-signal handler is already installed in "
        "this process");
  }
  std::snprintf(g_signal_path, sizeof(g_signal_path), "%s",
                config_.bundle_path.c_str());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    signal_installed_ = true;
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = FatalSignalHandler;
  sigemptyset(&action.sa_mask);
  // One shot: the handler runs once, the default action is already
  // restored when it re-raises.
  action.sa_flags = SA_RESETHAND;
  ::sigaction(SIGSEGV, &action, nullptr);
  ::sigaction(SIGABRT, &action, nullptr);
  // Seed the buffer: even a crash before the first health snapshot leaves
  // a (sparse) bundle behind.
  (void)Render("fatal-signal seed");
  return Status::OK();
}

size_t FlightRecorder::health_retained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return health_.size();
}

size_t FlightRecorder::traces_retained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_traces_.size();
}

size_t FlightRecorder::slow_queries_retained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slow_queries_.size();
}

}  // namespace aims::obs
