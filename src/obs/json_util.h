#pragma once

#include <cstdio>
#include <string>

/// \file json_util.h
/// \brief Tiny JSON emission helpers shared by the tracer and the
/// exporters. Not a JSON library — just string escaping and fixed-point
/// number formatting for the hand-rolled dumps.

namespace aims::obs {

/// JSON string escaping for span names/labels (control chars, quote,
/// backslash — the only things our labels can plausibly contain).
inline std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Appends \p v with three decimals (the tracer's millisecond precision).
inline void AppendJsonDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

}  // namespace aims::obs
