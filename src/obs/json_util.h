#pragma once

#include <cstdio>
#include <string>

/// \file json_util.h
/// \brief Tiny JSON emission helpers shared by the tracer and the
/// exporters. Not a JSON library — just string escaping and fixed-point
/// number formatting for the hand-rolled dumps.

namespace aims::obs {

/// JSON string escaping for span names/labels (control chars, quote,
/// backslash — the only things our labels can plausibly contain).
inline std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Appends \p v with three decimals (the tracer's millisecond precision).
inline void AppendJsonDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

/// Shortest round-ish representation: trailing-zero-free %.6f keeps golden
/// files readable and stable ("2.5", not "2.500000"). Shared by the
/// Prometheus exporter and the query-plan / slow-query JSON records.
inline std::string TrimmedDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  std::string s(buf);
  size_t dot = s.find('.');
  if (dot != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (last == dot) last -= 1;  // "2." -> "2"
    s.erase(last + 1);
  }
  return s;
}

}  // namespace aims::obs
