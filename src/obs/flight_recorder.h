#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/cache_stats.h"
#include "obs/shard_stats.h"
#include "obs/slo.h"
#include "obs/stats_reporter.h"
#include "obs/tracer.h"
#include "obs/wal_stats.h"
#include "obs/watchdog.h"

/// \file flight_recorder.h
/// \brief The server's black box: an always-on bounded recorder that
/// retains the last N health snapshots, the traces the tracer ring
/// evicted, the most recent slow-query records, and (via a context
/// provider) current WAL / cache / shard stats plus SLO judgements with
/// the burning series' history windows — and on trigger writes the
/// whole thing as ONE post-mortem bundle JSON next to the durable dir.
/// Triggers: the health level transitioning to Saturated, a watchdog
/// stall, an explicit HTTP / typed-API request, or (opt-in) a fatal
/// signal. For crashes nothing can catch — SIGKILL, power cut — the
/// recorder can also persist the bundle on a short cadence, so the file on
/// disk is at most one interval stale: the aircraft-flight-recorder model,
/// not the core-dump model.
///
/// Recording paths are cheap (one mutex, bounded deques of pre-serialized
/// strings) and never block on I/O: bundle writes happen on the trigger's
/// thread or the persist thread, never inside Record*.

namespace aims::obs {

/// \brief Ring capacities, bundle placement, persist cadence.
struct FlightRecorderConfig {
  /// Health snapshots retained (the bundle's recent-history window).
  size_t health_capacity = 32;
  /// Evicted traces retained (each stored as its ToJson string).
  size_t trace_capacity = 16;
  /// Slow-query records retained (JSON lines, newest last).
  size_t slow_query_capacity = 32;
  /// Trigger/notice events retained ("watchdog stall: wal_sync", ...).
  size_t event_capacity = 32;
  /// Bundle destination. Empty: in-memory only — RenderBundle/HTTP still
  /// serve the bundle, Dump returns it without a path. The server defaults
  /// this to "<durability.path>/flightrecord.json" on durable backends.
  std::string bundle_path;
  /// > 0: Start() spawns a thread persisting the bundle on this cadence
  /// (requires bundle_path). This is what makes a bundle survive SIGKILL.
  double persist_interval_ms = 0.0;
};

/// \brief Recent metrics-history window for one burning SLO's series,
/// embedded in the bundle so a post-mortem sees the trajectory that
/// tripped the objective, not just the final burn rate.
struct SloHistoryEntry {
  std::string objective;
  std::string series;
  std::vector<gorilla::Sample> samples;
};

/// \brief Point-in-time system context pulled into every rendered bundle.
/// The provider runs on the rendering thread; keep it lock-cheap.
struct FlightContext {
  bool has_wal = false;
  WalStats wal;
  bool has_cache = false;
  CacheStats cache;
  std::vector<ShardStatsEntry> shards;
  std::vector<Watchdog::ThreadStatus> watchdog;
  /// Latest SLO judgements (SloEngine::Latest()); empty = no objectives.
  std::vector<SloStatus> slo;
  /// History windows for the burning objectives only (bounded by the
  /// provider — the server caps samples per entry).
  std::vector<SloHistoryEntry> slo_history;
};

/// \brief Bounded black-box recorder + post-mortem bundle writer.
///
/// Thread-safe: Record* from any thread (including under the tracer's
/// mutex — the recorder never calls back into its feeds); Dump/Render from
/// control threads and triggers.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// \brief Context snapshot source (WAL/cache/shard/watchdog stats). Set
  /// before the recorder starts rendering (wiring time); may be empty.
  void SetContextProvider(std::function<FlightContext()> provider);

  // ---- Feeds ------------------------------------------------------------

  /// \brief Retains \p snapshot; a level transition into Saturated
  /// triggers a bundle dump (the operator's "it just fell over" marker).
  void RecordHealth(const HealthSnapshot& snapshot);
  /// \brief Retains a trace the tracer ring evicted. Called under the
  /// tracer's mutex — must not (and does not) call back into the tracer.
  void RecordEvictedTrace(const Trace& trace);
  /// \brief Retains one slow-query JSON record.
  void RecordSlowQuery(const std::string& json_line);
  /// \brief Retains one free-form event line (trigger history).
  void RecordEvent(const std::string& what);

  // ---- Bundle -----------------------------------------------------------

  /// \brief Renders the current bundle JSON (no file I/O).
  std::string RenderBundle(const std::string& reason);

  /// \brief Renders and — when a bundle path is configured — atomically
  /// writes the bundle (tmp + rename). Returns the path written, or "" on
  /// the in-memory configuration. Records the trigger in the event ring.
  Result<std::string> Dump(const std::string& reason);

  /// \brief Starts the periodic persist thread (no-op unless
  /// persist_interval_ms > 0 and bundle_path is set). Idempotent.
  void Start();
  /// \brief Stops the persist thread; with a bundle path configured,
  /// writes one final bundle so shutdown state is on disk. Idempotent.
  void Stop();
  bool running() const;

  /// \brief Installs SIGSEGV/SIGABRT handlers that write the most recent
  /// pre-serialized bundle with async-signal-safe calls only
  /// (open/write/close) and re-raise. One recorder per process may install
  /// (AlreadyExists otherwise); requires a bundle path. Opt-in: sanitizer
  /// builds want these signals for themselves.
  Status InstallFatalSignalHandler();

  // ---- Introspection ----------------------------------------------------

  /// Bundle file a previous incarnation left behind (detected at
  /// construction), or empty. Recovery-on-open surfaces this so the
  /// post-mortem evidence is pointed at, not silently overwritten.
  const std::string& previous_bundle_path() const {
    return previous_bundle_path_;
  }
  const std::string& bundle_path() const { return config_.bundle_path; }
  /// Explicit + triggered dumps written (not periodic persists).
  uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }
  /// Periodic persist passes completed.
  uint64_t persists() const {
    return persists_.load(std::memory_order_relaxed);
  }
  size_t health_retained() const;
  size_t traces_retained() const;
  size_t slow_queries_retained() const;

  const FlightRecorderConfig& config() const { return config_; }

 private:
  void PersistLoop();
  /// Renders under mutex_; refreshes the signal buffer when installed.
  std::string RenderLocked(const std::string& reason, double uptime_ms,
                           const FlightContext& context);
  std::string Render(const std::string& reason);
  Status WriteBundleFile(const std::string& json);

  FlightRecorderConfig config_;
  const std::chrono::steady_clock::time_point epoch_;
  std::string previous_bundle_path_;

  std::function<FlightContext()> context_provider_;

  mutable std::mutex mutex_;
  std::deque<HealthSnapshot> health_;
  std::deque<std::string> evicted_traces_;
  std::deque<std::string> slow_queries_;
  std::deque<std::string> events_;
  HealthLevel prev_level_ = HealthLevel::kOk;
  uint64_t evicted_trace_total_ = 0;
  uint64_t slow_query_total_ = 0;

  std::atomic<uint64_t> dumps_{0};
  std::atomic<uint64_t> persists_{0};

  /// Serializes bundle-file writes (dump vs. persist thread).
  std::mutex write_mutex_;

  // Fatal-signal support: double-buffered pre-serialized bundle; the
  // handler only reads the atomically published pointer/size and writes
  // them to sig_path_ with raw syscalls.
  bool signal_installed_ = false;
  std::string signal_buffers_[2];
  int signal_next_ = 0;

  mutable std::mutex thread_mutex_;
  std::condition_variable wake_cv_;
  std::thread thread_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace aims::obs
