#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"

/// \file slo.h
/// \brief Declarative service-level objectives evaluated as multi-window
/// burn rates over the metrics history store (the Google SRE workbook
/// pattern): an objective leaves an error budget (1 - objective), the
/// burn rate is how many budgets per unit time the service is currently
/// spending, and an alert fires only when BOTH a fast window (catches
/// sudden breakage) and a slow window (suppresses blips) burn past the
/// threshold. Because the windows read the history store, the judgement
/// is about trajectories, not the single most recent snapshot.
///
/// The engine publishes three surfaces: burning objectives raise the
/// StatsReporter's health to Degraded with an SLO reason (via the health
/// input the server wires), the aims_slo_* Prometheus family exposes the
/// burn rates, and breach transitions emit FlightRecorder events — with
/// the bundle embedding each burning series' recent history window.

namespace aims::obs {

/// \brief What an objective judges.
enum class SloKind {
  /// Fraction of scrape intervals where the latency quantile series
  /// (e.g. "scheduler.exec_ms.p99") stayed at or under latency_target_ms.
  kLatencyQuantile,
  /// 1 - increase(bad)/increase(total) over the window, from two counter
  /// series (errors vs. operations).
  kErrorRatio,
  /// Same math as kErrorRatio; named separately because the counters mean
  /// "unavailable responses" vs. "requests" (e.g. admission rejections).
  kAvailability,
};

const char* SloKindName(SloKind kind);

/// \brief One declarative objective.
struct SloObjective {
  /// Stable identifier — the {objective=...} label and the health reason.
  std::string name;
  SloKind kind = SloKind::kErrorRatio;
  /// Good-event fraction promised, e.g. 0.999. The error budget is
  /// 1 - objective.
  double objective = 0.999;
  /// kLatencyQuantile: the history series carrying the quantile, and the
  /// target it must stay under.
  std::string series;
  double latency_target_ms = 0.0;
  /// kErrorRatio / kAvailability: bad-event counter series (reuses
  /// `series`) and total-event counter series.
  std::string total_series;
  /// Multi-window burn: both must exceed burn_threshold to alert.
  /// Production-shaped defaults; tests shrink them to drive deterministic
  /// timelines.
  double fast_window_ms = 5 * 60 * 1000.0;
  double slow_window_ms = 60 * 60 * 1000.0;
  /// Budget-per-window multiple that counts as burning (14.4 is the
  /// classic "2% of a 30-day budget in one hour" page threshold).
  double burn_threshold = 14.4;
};

/// \brief One objective's latest judgement.
struct SloStatus {
  std::string name;
  SloKind kind = SloKind::kErrorRatio;
  double objective = 0.999;
  /// The series a post-mortem wants to see for this objective (the
  /// latency-quantile series, or the bad-event counter).
  std::string series;
  double fast_window_ms = 0.0;
  double slow_window_ms = 0.0;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  bool burning = false;
  /// Human-readable breach summary, empty while not burning.
  std::string reason;
};

/// \brief Evaluates objectives over the history store.
///
/// Thread-safe: Evaluate from the scrape cadence (or tests), Latest from
/// reporter/exporter/recorder threads. Publishes two registry metrics so
/// the burn state is visible without the aims_slo_* family: the
/// "slo.burning" gauge (count of burning objectives) and the
/// "slo.breach_transitions_total" counter (not-burning -> burning edges).
class SloEngine {
 public:
  /// \param registry may be null (no gauge/counter publication).
  SloEngine(const MetricsTimeSeries* store, MetricsRegistry* registry,
            std::vector<SloObjective> objectives);

  /// \brief Recomputes every objective's burn rates as of \p now_ms and
  /// returns the fresh statuses. Breach transitions invoke the breach
  /// hook (outside the engine lock).
  std::vector<SloStatus> Evaluate(int64_t now_ms);

  /// \brief Most recent statuses (empty before the first Evaluate).
  std::vector<SloStatus> Latest() const;

  /// \brief Observer of each objective's not-burning -> burning edge (the
  /// server wires it to the flight recorder). Set before evaluation
  /// starts; runs on the evaluating thread with no engine lock held.
  void SetBreachHook(std::function<void(const SloStatus&)> hook);

  const std::vector<SloObjective>& objectives() const { return objectives_; }

 private:
  const MetricsTimeSeries* store_;
  std::vector<SloObjective> objectives_;

  Gauge* burning_gauge_ = nullptr;
  Counter* breach_transitions_ = nullptr;

  std::function<void(const SloStatus&)> breach_hook_;

  mutable std::mutex mutex_;
  std::vector<SloStatus> latest_;
  std::vector<bool> was_burning_;
};

/// \brief The aims_slo_* Prometheus family for a set of statuses:
/// aims_slo_objective, aims_slo_burn_rate_fast/slow, aims_slo_burning —
/// one {objective="<name>"} labelled series each, family-major like the
/// tenant/shard families. Appended by the /metrics handler.
void AppendSloFamily(std::string* out, const std::vector<SloStatus>& slos);

}  // namespace aims::obs
