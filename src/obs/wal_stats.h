#pragma once

#include <cstdint>

/// \file wal_stats.h
/// \brief Point-in-time counters of one write-ahead log (or an aggregate
/// over several). Lives in obs — not storage — for the same reason
/// CacheStats does: the exporters emit the aims_wal_* Prometheus family
/// and GetHealth carries durability health without obs depending on the
/// storage layer (storage links obs, so the reverse edge would be a
/// cycle).

namespace aims::obs {

/// \brief Snapshot of a WAL's accounting counters. Produced by
/// storage::durable::WriteAheadLog::Stats() and summed across catalog
/// shards by server::ShardedCatalog::TotalWalStats().
struct WalStats {
  /// Records appended (begin/payload/catalog/commit all count).
  uint64_t records = 0;
  /// Commit records appended (== acknowledged atomic groups).
  uint64_t commits = 0;
  /// Physical sync operations performed (fsync/fdatasync). With group
  /// commit, commits / syncs is the mean batch size.
  uint64_t syncs = 0;
  /// Largest number of commits one sync made durable — the group-commit
  /// batch-size high-water mark.
  uint64_t max_commits_per_sync = 0;
  /// Bytes appended since the log was opened (monotonic).
  uint64_t bytes_appended = 0;
  /// Current log length past the header — the WAL lag: bytes of committed
  /// work the page file has not yet absorbed via checkpoint. Grows between
  /// checkpoints, drops to zero at each one.
  uint64_t lag_bytes = 0;
  /// Checkpoints taken (log truncations after the pages were made clean).
  uint64_t checkpoints = 0;
  /// Committed record groups replayed by the last recovery-on-open.
  uint64_t recovered_txns = 0;
  /// Records replayed by the last recovery-on-open.
  uint64_t recovered_records = 0;
  /// Bytes of uncommitted/torn tail discarded by the last recovery.
  uint64_t discarded_bytes = 0;

  /// Field-wise sum, for catalog-wide aggregates over per-shard logs.
  /// max_commits_per_sync aggregates as a max (it is a high-water mark).
  void Accumulate(const WalStats& other) {
    records += other.records;
    commits += other.commits;
    syncs += other.syncs;
    if (other.max_commits_per_sync > max_commits_per_sync) {
      max_commits_per_sync = other.max_commits_per_sync;
    }
    bytes_appended += other.bytes_appended;
    lag_bytes += other.lag_bytes;
    checkpoints += other.checkpoints;
    recovered_txns += other.recovered_txns;
    recovered_records += other.recovered_records;
    discarded_bytes += other.discarded_bytes;
  }
};

}  // namespace aims::obs
