#include "obs/watchdog.h"

#include <utility>

namespace aims::obs {

Watchdog::Watchdog(WatchdogConfig config, Counter* stall_counter)
    : config_(config), stall_counter_(stall_counter) {
  if (config_.check_interval_ms <= 0.0) config_.check_interval_ms = 250.0;
  if (config_.deadline_ms <= 0.0) config_.deadline_ms = 5000.0;
}

Watchdog::~Watchdog() { Stop(); }

Watchdog::Handle* Watchdog::Register(std::string name, double deadline_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  handles_.push_back(std::unique_ptr<Handle>(new Handle(
      std::move(name), deadline_ms > 0.0 ? deadline_ms : config_.deadline_ms)));
  return handles_.back().get();
}

void Watchdog::SetStallCallback(
    std::function<void(const ThreadStatus&)> callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  stall_callback_ = std::move(callback);
}

void Watchdog::Start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void Watchdog::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!running_) return;
    stop_requested_ = true;
    to_join = std::move(thread_);
    running_ = false;
  }
  wake_cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

bool Watchdog::running() const {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  return running_;
}

void Watchdog::Loop() {
  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(config_.check_interval_ms));
  std::unique_lock<std::mutex> lock(thread_mutex_);
  while (!stop_requested_) {
    if (wake_cv_.wait_for(lock, interval, [&] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    CheckNow();
    lock.lock();
  }
}

size_t Watchdog::CheckNow() {
  // Judge under the lock, fire callbacks outside it: a callback that dumps
  // a flight-record bundle (file I/O) must not hold up Register/Status.
  std::vector<ThreadStatus> fresh_stalls;
  std::function<void(const ThreadStatus&)> callback;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    callback = stall_callback_;
    for (const std::unique_ptr<Handle>& handle : handles_) {
      const bool armed = handle->armed();
      const double since = handle->MsSinceBeat();
      const bool over = armed && since > handle->deadline_ms();
      if (over && !handle->in_stall_) {
        handle->in_stall_ = true;
        stalls_.fetch_add(1, std::memory_order_relaxed);
        if (stall_counter_ != nullptr) stall_counter_->Increment();
        fresh_stalls.push_back(ThreadStatus{handle->name(), armed, true, since,
                                            handle->deadline_ms()});
      } else if (!over) {
        // Beat again (or disarmed): the episode is over; the next miss is
        // a new stall.
        handle->in_stall_ = false;
      }
    }
  }
  if (callback) {
    for (const ThreadStatus& status : fresh_stalls) callback(status);
  }
  return fresh_stalls.size();
}

std::vector<Watchdog::ThreadStatus> Watchdog::Status() const {
  std::vector<ThreadStatus> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(handles_.size());
  for (const std::unique_ptr<Handle>& handle : handles_) {
    ThreadStatus status;
    status.name = handle->name();
    status.armed = handle->armed();
    status.ms_since_beat = handle->MsSinceBeat();
    status.deadline_ms = handle->deadline_ms();
    status.stalled = handle->in_stall_;
    out.push_back(std::move(status));
  }
  return out;
}

}  // namespace aims::obs
