#include "obs/exporters.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/json_util.h"
#include "obs/timeseries.h"

// Configure-time identity; the build system defines both. Fallbacks keep
// ad-hoc compiles (and IDE indexers) working.
#ifndef AIMS_VERSION_STRING
#define AIMS_VERSION_STRING "unknown"
#endif
#ifndef AIMS_GIT_SHA_STRING
#define AIMS_GIT_SHA_STRING "unknown"
#endif

namespace aims::obs {

namespace {

// Static-initialized at obs load: process start for uptime purposes.
const std::chrono::steady_clock::time_point kProcessEpoch =
    std::chrono::steady_clock::now();

}  // namespace

const char* BuildVersion() { return AIMS_VERSION_STRING; }

const char* BuildGitSha() { return AIMS_GIT_SHA_STRING; }

double ProcessUptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       kProcessEpoch)
      .count();
}

namespace {

void AppendHistogram(std::string* out, const std::string& name,
                     const Histogram& h) {
  *out += "# TYPE " + name + " histogram\n";
  uint64_t cumulative = 0;
  const std::vector<double>& bounds = h.upper_bounds();
  for (size_t i = 0; i < h.num_buckets(); ++i) {
    cumulative += h.bucket_count(i);
    std::string le =
        i < bounds.size() ? TrimmedDouble(bounds[i]) : std::string("+Inf");
    *out += name + "_bucket{le=\"" + le + "\"} " + std::to_string(cumulative) +
            "\n";
  }
  *out += name + "_sum " + TrimmedDouble(h.sum()) + "\n";
  *out += name + "_count " + std::to_string(h.count()) + "\n";
  // Companion quantile gauges: Prometheus histograms carry no quantiles of
  // their own, and AIMS dashboards want p50/p95/p99 without a query layer.
  *out += "# TYPE " + name + "_quantile gauge\n";
  for (double q : {0.5, 0.95, 0.99}) {
    *out += name + "_quantile{quantile=\"" + TrimmedDouble(q) + "\"} " +
            TrimmedDouble(h.ApproxQuantile(q)) + "\n";
  }
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "aims_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string PrometheusExport(const MetricsRegistry& registry) {
  std::string out;
  // Identity first: every scrape says what binary produced it and for how
  // long it has been up, before any registry content.
  out += "# TYPE aims_build_info gauge\n";
  out += std::string("aims_build_info{version=\"") + BuildVersion() +
         "\",git_sha=\"" + BuildGitSha() + "\"} 1\n";
  out += "# TYPE aims_uptime_seconds gauge\n";
  out += "aims_uptime_seconds " + TrimmedDouble(ProcessUptimeSeconds()) + "\n";
  // Process resource prologue, self-sampled from /proc/self: absent (not
  // zero) on platforms without it, so a missing series means "can't know"
  // rather than "idle".
  const ProcessStats process = ReadProcessStats();
  if (process.ok) {
    out += "# TYPE aims_process_rss_bytes gauge\n";
    out += "aims_process_rss_bytes " + std::to_string(process.rss_bytes) +
           "\n";
    out += "# TYPE aims_process_open_fds gauge\n";
    out += "aims_process_open_fds " + std::to_string(process.open_fds) + "\n";
    out += "# TYPE aims_process_cpu_seconds_total counter\n";
    out += "aims_process_cpu_seconds_total " +
           TrimmedDouble(process.cpu_seconds) + "\n";
  }
  for (const auto& [name, c] : registry.Counters()) {
    std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : registry.Gauges()) {
    std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(g->value()) + "\n";
    out += "# TYPE " + prom + "_max gauge\n";
    out += prom + "_max " + std::to_string(g->max()) + "\n";
  }
  const auto histograms = registry.Histograms();
  for (const auto& [name, h] : histograms) {
    AppendHistogram(&out, PrometheusName(name), *h);
  }
  // Overflow accounting, family-major after all histograms: how many
  // observations landed past each histogram's last finite bound, where the
  // companion quantile gauges clamp instead of interpolating.
  if (!histograms.empty()) {
    out += "# TYPE aims_histogram_overflow_total counter\n";
    for (const auto& [name, h] : histograms) {
      out += "aims_histogram_overflow_total{histogram=\"" +
             PrometheusName(name) + "\"} " +
             std::to_string(h->overflow_count()) + "\n";
    }
  }
  return out;
}

namespace {

void AppendTracerFamily(std::string* out, const Tracer& tracer) {
  *out += "# TYPE aims_tracer_traces_recorded_total counter\n";
  *out += "aims_tracer_traces_recorded_total " +
          std::to_string(tracer.total_recorded()) + "\n";
  *out += "# TYPE aims_tracer_traces_dropped_total counter\n";
  *out += "aims_tracer_traces_dropped_total " +
          std::to_string(tracer.dropped()) + "\n";
  *out += "# TYPE aims_tracer_traces_retained gauge\n";
  *out += "aims_tracer_traces_retained " + std::to_string(tracer.retained()) +
          "\n";
  *out += "# TYPE aims_tracer_oldest_trace_age_ms gauge\n";
  *out += "aims_tracer_oldest_trace_age_ms " +
          TrimmedDouble(tracer.OldestRetainedAgeMs()) + "\n";
}

void AppendTenantFamily(std::string* out, const CostLedger& ledger) {
  const auto tenants = ledger.Snapshot();
  // One labelled series per tenant per dimension, family-major so each
  // family gets exactly one # TYPE header.
  struct UintDim {
    const char* name;
    uint64_t TenantUsage::* field;
  };
  static constexpr UintDim kUintDims[] = {
      {"aims_tenant_cpu_ns_total", &TenantUsage::cpu_ns},
      {"aims_tenant_blocks_read_total", &TenantUsage::blocks_read},
      {"aims_tenant_blocks_written_total", &TenantUsage::blocks_written},
      {"aims_tenant_bytes_read_total", &TenantUsage::bytes_read},
      {"aims_tenant_bytes_written_total", &TenantUsage::bytes_written},
      {"aims_tenant_queries_total", &TenantUsage::queries},
      {"aims_tenant_ingests_total", &TenantUsage::ingests},
      {"aims_tenant_stream_batches_total", &TenantUsage::stream_batches},
      {"aims_tenant_slow_queries_total", &TenantUsage::slow_queries},
      {"aims_tenant_rejected_total", &TenantUsage::rejected},
  };
  for (const UintDim& dim : kUintDims) {
    *out += std::string("# TYPE ") + dim.name + " counter\n";
    for (const auto& [tenant, usage] : tenants) {
      *out += std::string(dim.name) + "{tenant=\"" + std::to_string(tenant) +
              "\"} " + std::to_string(usage.*dim.field) + "\n";
    }
  }
  *out += "# TYPE aims_tenant_queue_ms_total counter\n";
  for (const auto& [tenant, usage] : tenants) {
    *out += "aims_tenant_queue_ms_total{tenant=\"" + std::to_string(tenant) +
            "\"} " + TrimmedDouble(usage.queue_ms) + "\n";
  }
}

void AppendCacheFamily(std::string* out, const CacheStats& cache) {
  struct Dim {
    const char* name;
    const char* type;
    uint64_t CacheStats::* field;
  };
  static constexpr Dim kDims[] = {
      {"aims_cache_hits_total", "counter", &CacheStats::hits},
      {"aims_cache_misses_total", "counter", &CacheStats::misses},
      {"aims_cache_evictions_total", "counter", &CacheStats::evictions},
      {"aims_cache_invalidations_total", "counter",
       &CacheStats::invalidations},
      {"aims_cache_insertions_total", "counter", &CacheStats::insertions},
      {"aims_cache_bytes", "gauge", &CacheStats::bytes_cached},
      {"aims_cache_blocks", "gauge", &CacheStats::blocks_cached},
      {"aims_cache_capacity_bytes", "gauge", &CacheStats::capacity_bytes},
  };
  for (const Dim& dim : kDims) {
    *out += std::string("# TYPE ") + dim.name + " " + dim.type + "\n";
    *out += std::string(dim.name) + " " + std::to_string(cache.*dim.field) +
            "\n";
  }
}

void AppendWalFamily(std::string* out, const WalStats& wal) {
  struct Dim {
    const char* name;
    const char* type;
    uint64_t WalStats::* field;
  };
  // The recovery trio are gauges, not counters: they describe the LAST
  // recovery-on-open, resetting at each open rather than accumulating.
  static constexpr Dim kDims[] = {
      {"aims_wal_records_total", "counter", &WalStats::records},
      {"aims_wal_commits_total", "counter", &WalStats::commits},
      {"aims_wal_syncs_total", "counter", &WalStats::syncs},
      {"aims_wal_max_commits_per_sync", "gauge",
       &WalStats::max_commits_per_sync},
      {"aims_wal_bytes_appended_total", "counter", &WalStats::bytes_appended},
      {"aims_wal_lag_bytes", "gauge", &WalStats::lag_bytes},
      {"aims_wal_checkpoints_total", "counter", &WalStats::checkpoints},
      {"aims_wal_recovered_txns", "gauge", &WalStats::recovered_txns},
      {"aims_wal_recovered_records", "gauge", &WalStats::recovered_records},
      {"aims_wal_discarded_bytes", "gauge", &WalStats::discarded_bytes},
  };
  for (const Dim& dim : kDims) {
    *out += std::string("# TYPE ") + dim.name + " " + dim.type + "\n";
    *out += std::string(dim.name) + " " + std::to_string(wal.*dim.field) +
            "\n";
  }
}

void AppendShardFamily(std::string* out,
                       const std::vector<ShardStatsEntry>& shards) {
  // One labelled series per shard per probe, family-major like the tenant
  // family so each family gets exactly one # TYPE header.
  struct UintDim {
    const char* name;
    const char* type;
    uint64_t ShardStatsEntry::* field;
  };
  static constexpr UintDim kUintDims[] = {
      {"aims_shard_sessions", "gauge", &ShardStatsEntry::sessions},
      {"aims_shard_tenants", "gauge", &ShardStatsEntry::tenants},
      {"aims_shard_ingests_total", "counter", &ShardStatsEntry::ingests},
      {"aims_shard_queries_total", "counter", &ShardStatsEntry::queries},
      {"aims_shard_wal_lag_bytes", "gauge", &ShardStatsEntry::wal_lag_bytes},
  };
  for (const UintDim& dim : kUintDims) {
    *out += std::string("# TYPE ") + dim.name + " " + dim.type + "\n";
    for (const ShardStatsEntry& s : shards) {
      *out += std::string(dim.name) + "{shard=\"" + std::to_string(s.shard) +
              "\"} " + std::to_string(s.*dim.field) + "\n";
    }
  }
  struct DoubleDim {
    const char* name;
    double ShardStatsEntry::* field;
  };
  static constexpr DoubleDim kDoubleDims[] = {
      {"aims_shard_lock_wait_p50_ms", &ShardStatsEntry::lock_wait_p50_ms},
      {"aims_shard_lock_wait_p99_ms", &ShardStatsEntry::lock_wait_p99_ms},
  };
  for (const DoubleDim& dim : kDoubleDims) {
    *out += std::string("# TYPE ") + dim.name + " gauge\n";
    for (const ShardStatsEntry& s : shards) {
      *out += std::string(dim.name) + "{shard=\"" + std::to_string(s.shard) +
              "\"} " + TrimmedDouble(s.*dim.field) + "\n";
    }
  }
  *out += "# TYPE aims_shard_queue_depth gauge\n";
  for (const ShardStatsEntry& s : shards) {
    *out += "aims_shard_queue_depth{shard=\"" + std::to_string(s.shard) +
            "\"} " + std::to_string(s.queue_depth) + "\n";
  }
}

}  // namespace

std::string PrometheusExport(const MetricsRegistry& registry,
                             const Tracer* tracer, const CostLedger* ledger,
                             const CacheStats* cache, const WalStats* wal,
                             const std::vector<ShardStatsEntry>* shards,
                             const std::vector<SloStatus>* slo) {
  std::string out = PrometheusExport(registry);
  if (tracer != nullptr) AppendTracerFamily(&out, *tracer);
  if (ledger != nullptr) AppendTenantFamily(&out, *ledger);
  if (cache != nullptr) AppendCacheFamily(&out, *cache);
  if (wal != nullptr) AppendWalFamily(&out, *wal);
  if (shards != nullptr) AppendShardFamily(&out, *shards);
  if (slo != nullptr) AppendSloFamily(&out, *slo);
  return out;
}

std::string ChromeTraceExport(const Tracer& tracer) {
  std::vector<Trace> traces = tracer.Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  if (traces.empty()) {
    out += "]}";
    return out;
  }
  // One absolute timeline: offsets are measured from the earliest retained
  // trace's epoch, so concurrent requests overlap the way they really did.
  auto base = traces.front().epoch();
  for (const Trace& trace : traces) base = std::min(base, trace.epoch());

  bool first = true;
  char buf[64];
  auto append_event = [&](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += event;
  };
  for (const Trace& trace : traces) {
    const double trace_offset_us =
        std::chrono::duration<double, std::micro>(trace.epoch() - base).count();
    std::string label = trace.label().empty()
                            ? "request " + std::to_string(trace.request_id())
                            : trace.label();
    append_event("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
                 std::to_string(trace.request_id()) +
                 ",\"args\":{\"name\":\"" + JsonEscape(label) + "\"}}");
    for (const TraceSpan& span : trace.spans()) {
      double ts_us = trace_offset_us + span.start_ms * 1000.0;
      double dur_us = std::max(span.end_ms - span.start_ms, 0.0) * 1000.0;
      std::string event = "{\"name\":\"" + JsonEscape(span.name) +
                          "\",\"cat\":\"aims\",\"ph\":\"X\",\"ts\":";
      std::snprintf(buf, sizeof(buf), "%.3f", ts_us);
      event += buf;
      event += ",\"dur\":";
      std::snprintf(buf, sizeof(buf), "%.3f", dur_us);
      event += buf;
      event += ",\"pid\":1,\"tid\":" + std::to_string(trace.request_id()) +
               ",\"args\":{\"span_id\":" + std::to_string(span.id) +
               ",\"parent_id\":" + std::to_string(span.parent_id) +
               ",\"request_id\":" + std::to_string(trace.request_id()) + "}}";
      append_event(event);
    }
  }
  out += "]}";
  return out;
}

}  // namespace aims::obs
