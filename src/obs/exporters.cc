#include "obs/exporters.h"

#include <algorithm>
#include <cstdio>

#include "obs/json_util.h"

namespace aims::obs {

namespace {

/// Shortest round-ish representation: trailing-zero-free %.6f keeps the
/// golden files readable and stable ("2.5", not "2.500000").
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  std::string s(buf);
  size_t dot = s.find('.');
  if (dot != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (last == dot) last -= 1;  // "2." -> "2"
    s.erase(last + 1);
  }
  return s;
}

void AppendHistogram(std::string* out, const std::string& name,
                     const Histogram& h) {
  *out += "# TYPE " + name + " histogram\n";
  uint64_t cumulative = 0;
  const std::vector<double>& bounds = h.upper_bounds();
  for (size_t i = 0; i < h.num_buckets(); ++i) {
    cumulative += h.bucket_count(i);
    std::string le =
        i < bounds.size() ? FormatDouble(bounds[i]) : std::string("+Inf");
    *out += name + "_bucket{le=\"" + le + "\"} " + std::to_string(cumulative) +
            "\n";
  }
  *out += name + "_sum " + FormatDouble(h.sum()) + "\n";
  *out += name + "_count " + std::to_string(h.count()) + "\n";
  // Companion quantile gauges: Prometheus histograms carry no quantiles of
  // their own, and AIMS dashboards want p50/p95/p99 without a query layer.
  *out += "# TYPE " + name + "_quantile gauge\n";
  for (double q : {0.5, 0.95, 0.99}) {
    *out += name + "_quantile{quantile=\"" + FormatDouble(q) + "\"} " +
            FormatDouble(h.ApproxQuantile(q)) + "\n";
  }
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "aims_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string PrometheusExport(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, c] : registry.Counters()) {
    std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : registry.Gauges()) {
    std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(g->value()) + "\n";
    out += "# TYPE " + prom + "_max gauge\n";
    out += prom + "_max " + std::to_string(g->max()) + "\n";
  }
  for (const auto& [name, h] : registry.Histograms()) {
    AppendHistogram(&out, PrometheusName(name), *h);
  }
  return out;
}

std::string ChromeTraceExport(const Tracer& tracer) {
  std::vector<Trace> traces = tracer.Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  if (traces.empty()) {
    out += "]}";
    return out;
  }
  // One absolute timeline: offsets are measured from the earliest retained
  // trace's epoch, so concurrent requests overlap the way they really did.
  auto base = traces.front().epoch();
  for (const Trace& trace : traces) base = std::min(base, trace.epoch());

  bool first = true;
  char buf[64];
  auto append_event = [&](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += event;
  };
  for (const Trace& trace : traces) {
    const double trace_offset_us =
        std::chrono::duration<double, std::micro>(trace.epoch() - base).count();
    std::string label = trace.label().empty()
                            ? "request " + std::to_string(trace.request_id())
                            : trace.label();
    append_event("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
                 std::to_string(trace.request_id()) +
                 ",\"args\":{\"name\":\"" + JsonEscape(label) + "\"}}");
    for (const TraceSpan& span : trace.spans()) {
      double ts_us = trace_offset_us + span.start_ms * 1000.0;
      double dur_us = std::max(span.end_ms - span.start_ms, 0.0) * 1000.0;
      std::string event = "{\"name\":\"" + JsonEscape(span.name) +
                          "\",\"cat\":\"aims\",\"ph\":\"X\",\"ts\":";
      std::snprintf(buf, sizeof(buf), "%.3f", ts_us);
      event += buf;
      event += ",\"dur\":";
      std::snprintf(buf, sizeof(buf), "%.3f", dur_us);
      event += buf;
      event += ",\"pid\":1,\"tid\":" + std::to_string(trace.request_id()) +
               ",\"args\":{\"span_id\":" + std::to_string(span.id) +
               ",\"parent_id\":" + std::to_string(span.parent_id) +
               ",\"request_id\":" + std::to_string(trace.request_id()) + "}}";
      append_event(event);
    }
  }
  out += "]}";
  return out;
}

}  // namespace aims::obs
