#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

/// \file watchdog.h
/// \brief Stall detection for the server's long-lived threads. Every
/// component that is supposed to make continuous progress — the thread
/// pool's workers, the StatsReporter loop, the WAL's group-commit sync
/// leader, the tenant migrator — registers a named Handle and heartbeats
/// it (Beat) from inside its loop. A background checker walks the handles
/// on a short cadence; an ARMED handle whose last beat is older than its
/// deadline is a stall: the `watchdog.stalls_total` counter ticks and the
/// stall callback fires (the server points it at the FlightRecorder, so a
/// wedged fsync or a deadlocked pool produces a post-mortem bundle while
/// the evidence is still in memory).
///
/// Arming is a count, not a flag, so episodic work composes: always-on
/// loops call Arm() once and then just Beat; episodic sections (one WAL
/// sync, one tenant migration) bracket themselves with BeginScope/EndScope
/// — overlapping scopes from different threads keep the handle armed until
/// the last one ends. A disarmed handle is never judged: idle is not a
/// stall.

namespace aims::obs {

/// \brief Checker cadence and the default per-handle deadline.
struct WatchdogConfig {
  /// How often the checker thread walks the handles.
  double check_interval_ms = 250.0;
  /// Deadline applied to handles registered without their own: an armed
  /// handle whose last beat is older than this has stalled.
  double deadline_ms = 5000.0;
};

/// \brief Heartbeat-deadline stall detector.
///
/// Thread-safe. Register handles any time (they live until the Watchdog
/// dies); Beat/BeginScope/EndScope are a few relaxed atomics — safe on hot
/// paths. Start() is optional: without it (or between checks) CheckNow()
/// evaluates on the caller's thread, which is what the tests use.
class Watchdog {
 public:
  /// \brief One registered component's heartbeat slot.
  class Handle {
   public:
    /// Stamps "I made progress just now".
    void Beat() {
      last_beat_ns_.store(NowNs(), std::memory_order_relaxed);
    }
    /// Permanently arms the handle (for always-on loops). Counts like an
    /// open scope that never ends; also beats.
    void Arm() { BeginScope(); }
    /// Undoes one Arm()/BeginScope() (for loops that exit cleanly, so a
    /// stopped component is idle, not stalled).
    void Disarm() { EndScope(); }
    /// Brackets one episodic section of supervised work; beats on entry.
    void BeginScope() {
      Beat();
      active_.fetch_add(1, std::memory_order_acq_rel);
    }
    void EndScope() {
      Beat();
      active_.fetch_sub(1, std::memory_order_acq_rel);
    }

    const std::string& name() const { return name_; }
    double deadline_ms() const { return deadline_ms_; }
    bool armed() const { return active_.load(std::memory_order_acquire) > 0; }
    double MsSinceBeat() const {
      return static_cast<double>(
                 NowNs() - last_beat_ns_.load(std::memory_order_relaxed)) /
             1e6;
    }

   private:
    friend class Watchdog;
    Handle(std::string name, double deadline_ms)
        : name_(std::move(name)), deadline_ms_(deadline_ms) {
      Beat();
    }
    static int64_t NowNs() {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    }

    const std::string name_;
    const double deadline_ms_;
    std::atomic<int64_t> last_beat_ns_{0};
    std::atomic<int32_t> active_{0};
    /// Per-episode latch: a stall is counted once until the handle beats
    /// back under its deadline. Touched only by the checker (under mutex_).
    bool in_stall_ = false;
  };

  /// RAII BeginScope/EndScope (null handle = no-op, so call sites stay
  /// unconditional).
  class Scope {
   public:
    explicit Scope(Handle* handle) : handle_(handle) {
      if (handle_ != nullptr) handle_->BeginScope();
    }
    ~Scope() {
      if (handle_ != nullptr) handle_->EndScope();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Handle* handle_;
  };

  /// \brief One handle's judgement at check time (also the /debug surface
  /// the flight recorder embeds in its bundle).
  struct ThreadStatus {
    std::string name;
    bool armed = false;
    bool stalled = false;
    double ms_since_beat = 0.0;
    double deadline_ms = 0.0;
  };

  /// \param stall_counter optional counter (e.g. the registry's
  /// "watchdog.stalls_total") ticked once per stall episode.
  explicit Watchdog(WatchdogConfig config = {},
                    Counter* stall_counter = nullptr);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// \brief Registers a component. The returned handle is owned by the
  /// Watchdog and stays valid for its lifetime. \p deadline_ms 0 takes the
  /// config default. Handles start DISARMED.
  Handle* Register(std::string name, double deadline_ms = 0.0);

  /// \brief What to do on a stall (fire the flight recorder). Runs on the
  /// checker thread with no Watchdog lock held; set before Start().
  void SetStallCallback(std::function<void(const ThreadStatus&)> callback);

  /// \brief Spawns the periodic checker (idempotent).
  void Start();
  /// \brief Stops and joins the checker (idempotent).
  void Stop();
  bool running() const;

  /// \brief Walks the handles once on the caller's thread; returns how
  /// many NEW stall episodes this pass found. Start() is not required.
  size_t CheckNow();

  /// \brief Current judgement of every handle, registration order.
  std::vector<ThreadStatus> Status() const;

  /// Stall episodes detected since construction.
  uint64_t stalls() const { return stalls_.load(std::memory_order_relaxed); }

  const WatchdogConfig& config() const { return config_; }

 private:
  void Loop();

  WatchdogConfig config_;
  Counter* stall_counter_;

  /// Guards handles_ (the deque — handle internals are atomic) and each
  /// handle's in_stall_ latch.
  mutable std::mutex mutex_;
  std::deque<std::unique_ptr<Handle>> handles_;
  std::function<void(const ThreadStatus&)> stall_callback_;

  std::atomic<uint64_t> stalls_{0};

  mutable std::mutex thread_mutex_;
  std::condition_variable wake_cv_;
  std::thread thread_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace aims::obs
