#pragma once

#include "common/gorilla.h"

/// \file gorilla.h
/// \brief Forwarding header. The Gorilla codec started life here (PR 9,
/// metrics history) and was promoted to common/gorilla.h when the raw
/// sample segments (storage/tslife.h) became its second user. Existing
/// `aims::obs::gorilla::X` spellings keep working through this alias;
/// new code should include common/gorilla.h and use `aims::gorilla`.

namespace aims::obs {
namespace gorilla = ::aims::gorilla;
}  // namespace aims::obs
