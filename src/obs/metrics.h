#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

/// \file metrics.h
/// \brief Observability primitives shared by every subsystem: named atomic
/// counters, gauges, and fixed-bucket latency histograms, collected in a
/// MetricsRegistry with a plain-text dump and structured accessors for the
/// exporters (see obs/exporters.h). Everything here is lock-free on the hot
/// path (registration takes a mutex once; updates are atomic), so metrics
/// can be recorded from every worker thread without perturbing the
/// concurrency being measured.

namespace aims::obs {

/// \brief Monotonic event count. Increment is relaxed-atomic; on overflow
/// the value wraps modulo 2^64 (standard unsigned behavior) — consumers
/// that compute rates as deltas stay correct across a wrap.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// Test/bench-only: zeroes the count between measurement phases.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous level (e.g. queue depth): can go up and down.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// Tracks the high-water mark alongside the level (monotonic).
  void AddTracked(int64_t delta) {
    int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (now > seen &&
           !max_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
  }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Test/bench-only: zeroes the level and its high-water mark.
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// \brief Fixed-bucket histogram for latency-like values.
///
/// Buckets are defined by ascending upper bounds; a final implicit
/// +infinity bucket catches everything above the last bound. Each Record
/// is two relaxed atomic adds plus one bucket increment — no locks.
class Histogram {
 public:
  /// \param upper_bounds ascending bucket upper bounds (inclusive);
  /// an empty list yields a single +inf bucket.
  explicit Histogram(std::vector<double> upper_bounds);

  void Record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Observations in bucket \p i (0 .. upper_bounds.size(), the last being
  /// the +inf bucket).
  uint64_t bucket_count(size_t i) const;
  const std::vector<double>& upper_bounds() const { return bounds_; }
  size_t num_buckets() const { return buckets_.size(); }

  /// \brief Observations that landed in the +inf overflow bucket — values
  /// past the last finite bound, where quantile interpolation has no upper
  /// edge to work with. Exported as aims_histogram_overflow_total so a
  /// clamped quantile (see ApproxQuantile) is visible as a clamp, not
  /// mistaken for a true reading.
  uint64_t overflow_count() const {
    return buckets_.empty() ? 0 : bucket_count(buckets_.size() - 1);
  }

  /// \brief Approximate p-quantile (p in [0,1]) interpolated from the fixed
  /// buckets assuming observations are uniform within a bucket. When the
  /// estimate lands in the +inf overflow bucket there is no upper edge to
  /// interpolate toward, so the result is CLAMPED to the last finite bound
  /// (never an unbounded or past-the-end extrapolation); overflow_count()
  /// says how often that clamp is in play. Good enough for "p99 ingest
  /// latency" style reporting.
  double ApproxQuantile(double p) const;

  /// Test/bench-only: zeroes every bucket plus the count and sum.
  void Reset();

 private:
  std::vector<double> bounds_;
  /// unique_ptr keeps atomics at stable addresses; vector<atomic> itself
  /// is fine post-construction but not movable.
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief Name -> metric directory shared by all services of one server.
///
/// Get* registers on first use and returns the same object thereafter;
/// returned pointers stay valid for the registry's lifetime, so services
/// resolve their metrics once at construction and update lock-free.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// \p upper_bounds applies on first registration; later callers get the
  /// existing histogram regardless of bounds.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds);

  /// \brief Exponential latency bounds in milliseconds:
  /// 0.25, 0.5, 1, 2, ... up to 2^12 ms (~4 s), 14 finite buckets.
  static std::vector<double> DefaultLatencyBoundsMs();

  /// \brief Sub-millisecond bounds for profiling-hook histograms:
  /// 1 us doubling up to ~4 s (23 finite buckets), so microsecond-scale
  /// kernel timings land in distinct buckets.
  static std::vector<double> DefaultProfileBoundsMs();

  /// \brief Name-sorted snapshots (registration order never leaks into the
  /// output). Returned pointers stay valid for the registry's lifetime.
  std::vector<std::pair<std::string, Counter*>> Counters() const;
  std::vector<std::pair<std::string, Gauge*>> Gauges() const;
  std::vector<std::pair<std::string, Histogram*>> Histograms() const;

  /// \brief Plain-text dump, one line per metric in a single globally
  /// name-sorted order (stable across runs) — the bench/test inspection
  /// format:
  ///   counter <name> <value>
  ///   gauge <name> <value> max <max>
  ///   histogram <name> count <n> mean <m> p50 <v> p99 <v>
  std::string DumpText() const;

  /// \brief Test/bench-only: zeroes every registered metric (the metric
  /// objects themselves stay registered and previously returned pointers
  /// stay valid). Used by benches to separate measurement phases.
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace aims::obs
