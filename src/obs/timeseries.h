#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/gorilla.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"

/// \file timeseries.h
/// \brief The self-hosted metrics history: a Gorilla-compressed in-memory
/// TSDB over the server's own telemetry, plus the scraper that feeds it
/// and the range-query engine that reads it. AIMS stores immersidata as
/// compressed append-only streams queried progressively; this applies the
/// same model to the server's counters and gauges, so "when did p99 start
/// climbing?" has an answer instead of a shrug.
///
///   MetricsTimeSeries — per-series sealed/active chunk rotation, age- and
///     size-bounded retention, lock-striped concurrent append/read.
///   EvaluateRangeQuery — step-aligned windows with rate()/delta() (wrap-
///     and reset-safe) and min/max/avg/quantile-over-time aggregations.
///   MetricsScraper — samples every registry counter, gauge, and histogram
///     quantile (plus process RSS/fds/CPU) into the store on a cadence,
///     with its own watchdog heartbeat.

namespace aims::obs {

/// \brief Store sizing and retention knobs.
struct MetricsTimeSeriesConfig {
  /// Samples per chunk before the active chunk seals. At the default
  /// 1 s scrape cadence one chunk covers four minutes.
  size_t chunk_max_samples = 240;
  /// Sealed chunks whose newest sample is older than this are dropped.
  /// 0 disables age-based retention.
  double retention_ms = 15 * 60 * 1000.0;
  /// Compressed-byte budget per stripe (the stripes are independent, so a
  /// global budget would need a cross-stripe scan on the append path).
  /// When a stripe exceeds it, its oldest sealed chunk is dropped.
  /// 0 disables size-based retention.
  size_t max_bytes_per_stripe = 1 << 20;
  /// Lock stripes; series hash to a stripe, appends and reads of series in
  /// different stripes never contend.
  size_t stripes = 8;
};

/// \brief Store-wide accounting (summed over stripes).
struct TimeSeriesStats {
  uint64_t series = 0;
  uint64_t samples_appended = 0;
  uint64_t samples_retained = 0;
  uint64_t compressed_bytes = 0;
  uint64_t sealed_chunks = 0;
  uint64_t chunks_dropped_age = 0;
  uint64_t chunks_dropped_size = 0;
  uint64_t out_of_order_dropped = 0;
  /// samples_retained * 16 (raw t+v bytes) / compressed_bytes; 0 when
  /// nothing is retained.
  double compression_ratio = 0.0;
};

/// \brief Lock-striped Gorilla-compressed store of named series.
///
/// Thread-safe: Append/Query/SeriesNames/Stats from any thread. Appends
/// must be time-ordered per series; a sample at or before the series'
/// newest timestamp is dropped and counted (the scraper's clock only
/// moves forward, so this only fires on wall-clock steps).
class MetricsTimeSeries {
 public:
  explicit MetricsTimeSeries(MetricsTimeSeriesConfig config = {});

  void Append(const std::string& series, int64_t t_ms, double value);

  /// All samples of \p series with start_ms <= t <= end_ms, time-ordered.
  /// Empty for an unknown series.
  std::vector<gorilla::Sample> Query(const std::string& series,
                                     int64_t start_ms, int64_t end_ms) const;

  /// Sorted names of every series the store retains.
  std::vector<std::string> SeriesNames() const;

  TimeSeriesStats Stats() const;

  const MetricsTimeSeriesConfig& config() const { return config_; }

 private:
  struct SealedChunk {
    std::vector<uint8_t> bytes;
    size_t count = 0;
    int64_t start_ms = 0;
    int64_t end_ms = 0;
  };
  struct Series {
    gorilla::GorillaEncoder active;
    int64_t active_start_ms = 0;
    int64_t last_ms = 0;
    std::deque<SealedChunk> sealed;
  };
  struct Stripe {
    mutable std::mutex mutex;
    std::map<std::string, Series> series;
    size_t sealed_bytes = 0;
    uint64_t samples_appended = 0;
    uint64_t chunks_dropped_age = 0;
    uint64_t chunks_dropped_size = 0;
    uint64_t out_of_order_dropped = 0;
    /// Appends since the last age-retention sweep; age retention also runs
    /// every kRetentionAppendPeriod appends, not only at seal time, so a
    /// quiet series' sealed chunks still expire while its stripe stays hot.
    uint32_t appends_since_retention = 0;
  };

  /// Non-seal appends between opportunistic age-retention sweeps. The
  /// sweep is O(series in stripe), so amortize it.
  static constexpr uint32_t kRetentionAppendPeriod = 64;

  Stripe& StripeFor(const std::string& series) const;
  /// Caller holds the stripe mutex. Seals s.active into s.sealed and
  /// applies both retention policies across the stripe.
  void SealAndRetainLocked(Stripe& stripe, Series& s, int64_t now_ms);
  /// Caller holds the stripe mutex. Drops every series' sealed chunks
  /// whose newest sample fell out of the age window ending at now_ms.
  void ApplyAgeRetentionLocked(Stripe& stripe, int64_t now_ms);

  MetricsTimeSeriesConfig config_;
  mutable std::vector<Stripe> stripes_;
};

/// \brief Aggregation applied per step window.
enum class RangeFunc {
  kAvg,       ///< Mean of the samples in the window.
  kMin,       ///< Minimum.
  kMax,       ///< Maximum.
  kLast,      ///< Newest sample in the window (gauge "instant" reads).
  kRate,      ///< Counter increase per second, reset/wrap-safe.
  kDelta,     ///< last - first (gauge difference; no reset handling).
  kQuantile,  ///< Interpolated quantile of the samples in the window.
};

/// \brief Parses "rate", "avg_over_time", ... (the query_range `func`
/// vocabulary). False on an unknown name.
bool ParseRangeFunc(const std::string& name, RangeFunc* out);
const char* RangeFuncName(RangeFunc func);

/// \brief One range query: series + [start,end] + step + aggregation.
struct RangeQuery {
  std::string series;
  int64_t start_ms = 0;
  int64_t end_ms = 0;
  /// Window stride; each point t_i = start + i*step aggregates the window
  /// (t_i - step, t_i].
  int64_t step_ms = 1000;
  RangeFunc func = RangeFunc::kAvg;
  /// Quantile for kQuantile, in [0,1].
  double quantile = 0.99;
};

/// \brief One evaluated point.
struct RangePoint {
  int64_t t_ms = 0;
  double value = 0.0;
};

/// \brief Most step windows one range query may evaluate (Prometheus's
/// own limit). Bounds the evaluation loop: start/end/step arrive straight
/// from an HTTP query string, and without a cap a degenerate range pins a
/// handler thread for ~forever.
inline constexpr int64_t kMaxRangeQueryPoints = 11000;
/// \brief Timestamp magnitude bound for range queries: |start|, |end|,
/// and step must not exceed this (epoch-ms ~ year 33000). Keeps the
/// window arithmetic (t += step, start - step) free of int64 overflow.
inline constexpr int64_t kMaxRangeQueryTimestampMs = 1'000'000'000'000'000;

/// \brief Evaluates \p query over \p store. Windows with no samples
/// produce no point (Prometheus omits them too). InvalidArgument on a
/// non-positive step, an inverted range, a timestamp or step beyond
/// kMaxRangeQueryTimestampMs, or a range spanning more than
/// kMaxRangeQueryPoints windows; an unknown series yields an empty
/// result, not an error — absence of history is an answer.
Result<std::vector<RangePoint>> EvaluateRangeQuery(
    const MetricsTimeSeries& store, const RangeQuery& query);

/// \brief Counter increase over [start_ms, end_ms], Prometheus-style
/// reset handling: a sample below its predecessor is treated as a restart
/// from zero (which also absorbs a 2^64 wrap surfacing as a huge negative
/// delta), so the increase is never negative. 0 with fewer than two
/// samples. The SLO engine's burn rates are built on this.
double IncreaseOver(const MetricsTimeSeries& store, const std::string& series,
                    int64_t start_ms, int64_t end_ms);

/// \brief Process resource usage self-sampled from /proc/self on Linux;
/// \c ok stays false (and the fields zero) elsewhere or on read failure.
struct ProcessStats {
  bool ok = false;
  int64_t rss_bytes = 0;
  int64_t open_fds = 0;
  double cpu_seconds = 0.0;
};
ProcessStats ReadProcessStats();

/// \brief Scrape cadence knobs.
struct MetricsScraperConfig {
  double interval_ms = 1000.0;
  bool include_process = true;
};

/// \brief Scrapes a MetricsRegistry into a MetricsTimeSeries on a cadence.
///
/// Every counter and gauge lands under its registry name; histograms land
/// as four derived series (<name>.p50/.p95/.p99 and <name>.count); process
/// stats land as process.rss_bytes / process.open_fds /
/// process.cpu_seconds_total. Start() spawns the scrape thread (with a
/// watchdog heartbeat when a handle is set); ScrapeOnce() works without
/// it, which is how tests drive deterministic timelines.
class MetricsScraper {
 public:
  using Config = MetricsScraperConfig;

  MetricsScraper(const MetricsRegistry* registry, MetricsTimeSeries* store,
                 Config config = {});
  ~MetricsScraper();

  MetricsScraper(const MetricsScraper&) = delete;
  MetricsScraper& operator=(const MetricsScraper&) = delete;

  /// \brief Runs after every scrape with the scrape timestamp — the SLO
  /// engine's evaluation trigger. Set before Start(); runs on the scrape
  /// thread (or the ScrapeOnce caller).
  void SetPostScrapeHook(std::function<void(int64_t now_ms)> hook);
  /// \brief Heartbeat slot the scrape loop beats each iteration. Set
  /// before Start(); may be null.
  void SetWatchdogHandle(Watchdog::Handle* handle);

  /// \brief Samples the whole registry now; returns the timestamp used.
  /// \p at_ms overrides the wall clock (deterministic tests).
  int64_t ScrapeOnce(int64_t at_ms = 0);

  void Start();
  void Stop();
  bool running() const;

  uint64_t scrapes() const { return scrapes_.load(std::memory_order_relaxed); }
  const Config& config() const { return config_; }

 private:
  void Loop();

  const MetricsRegistry* registry_;
  MetricsTimeSeries* store_;
  Config config_;

  std::function<void(int64_t)> post_scrape_hook_;
  Watchdog::Handle* watchdog_ = nullptr;
  std::atomic<uint64_t> scrapes_{0};

  /// Serializes Start/Stop end to end (including the join), so a Start
  /// racing a Stop cannot respawn the loop before the old thread has
  /// observed the stop and been joined. thread_ is guarded by this mutex.
  std::mutex lifecycle_mutex_;
  mutable std::mutex thread_mutex_;
  std::condition_variable wake_cv_;
  std::thread thread_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace aims::obs
