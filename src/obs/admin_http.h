#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

/// \file admin_http.h
/// \brief Dependency-free HTTP/1.1 admin listener for the observability
/// plane: /metrics, /healthz, /shards, /tenants/<id>, /traces,
/// /debug/flightrecord. One blocking accept thread (poll() with a short
/// timeout so Stop() is prompt) feeds a BOUNDED connection queue drained
/// by a small handler pool — the same reject-don't-block admission idiom
/// as the ingest queues: when the queue is full the listener writes a
/// canned 503 and closes instead of queueing unboundedly, so a curl storm
/// can never pile threads onto the data plane. Handlers are read paths
/// over already-lock-cheap snapshots; concurrency is capped by the pool
/// size.
///
/// Deliberately minimal: GET only (405 otherwise), Connection: close, no
/// keep-alive, no TLS, binds loopback. This is an operator port, not a
/// public API — the typed API stays the product surface.

namespace aims::obs {

/// \brief Listener knobs. Defaults favor "cheap and bounded".
struct AdminHttpConfig {
  /// TCP port on 127.0.0.1. 0 picks an ephemeral port (read it back from
  /// port() after Start()).
  int port = 0;
  /// Handler pool size == max in-flight requests.
  int handler_threads = 2;
  /// Accepted connections waiting for a handler; beyond this the listener
  /// answers 503 immediately.
  size_t max_pending = 16;
  /// Per-connection socket send/receive timeout. A stuck client costs one
  /// handler for at most this long.
  double io_timeout_ms = 2000.0;
  /// Request-head size cap; larger requests get 431 and a close.
  size_t max_request_bytes = 8192;
  /// Total wall-clock budget for reading one request head. The per-recv
  /// socket timeout alone does not stop a slowloris client that trickles
  /// one byte per almost-timeout; this deadline bounds the WHOLE read, so
  /// a slow client costs a handler at most this long before the server
  /// closes (no response) and counts it in slow_clients(). 0 disables.
  double read_deadline_ms = 5000.0;
  /// Request-line size cap (method + target + version). A target longer
  /// than this gets 414 and a close — keeps a hostile query string from
  /// consuming the whole head budget.
  size_t max_request_line_bytes = 2048;
};

/// \brief Parsed request head, as much of it as the admin plane needs.
struct AdminRequest {
  std::string method;  ///< "GET", uppercased as received.
  std::string path;    ///< Path without the query string, e.g. "/metrics".
  std::string query;   ///< Raw query string without the '?', may be empty.
};

/// \brief What a route handler returns; the server adds the envelope
/// (status line, Content-Length, Connection: close).
struct AdminResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// \brief Bounded-admission HTTP listener with exact and prefix routes.
///
/// Thread-safe: register routes before Start(); Start/Stop from a control
/// thread; handlers run on pool threads and must be thread-safe
/// themselves.
class AdminHttpServer {
 public:
  using Handler = std::function<AdminResponse(const AdminRequest&)>;

  explicit AdminHttpServer(AdminHttpConfig config = {});
  ~AdminHttpServer();

  AdminHttpServer(const AdminHttpServer&) = delete;
  AdminHttpServer& operator=(const AdminHttpServer&) = delete;

  /// \brief Exact-path route ("/metrics"). Last registration wins.
  void Route(std::string path, Handler handler);
  /// \brief Prefix route ("/tenants/"): matches any path starting with the
  /// prefix; the handler sees the full path and parses the suffix. The
  /// longest matching prefix wins; exact routes win over prefixes.
  void RoutePrefix(std::string prefix, Handler handler);

  /// \brief Binds 127.0.0.1:<port>, listens, spawns the accept thread and
  /// handler pool. Not idempotent; call once.
  Status Start();
  /// \brief Stops accepting, drains nothing (pending queued connections
  /// get a 503-equivalent close), joins all threads. Idempotent.
  void Stop();

  bool running() const;
  /// Bound port (resolves ephemeral 0), or -1 before Start().
  int port() const { return port_.load(std::memory_order_acquire); }

  /// Requests fully served (any status from a handler).
  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Connections rejected at admission (queue full → canned 503).
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  /// Connections closed for blowing the read deadline (slowloris-style
  /// trickle) or an oversized request line/head.
  uint64_t slow_clients() const {
    return slow_clients_.load(std::memory_order_relaxed);
  }

  const AdminHttpConfig& config() const { return config_; }

 private:
  void AcceptLoop();
  void HandlerLoop();
  void ServeConnection(int fd);
  /// Reads the request head (bounded, with timeout); false on a socket
  /// error/timeout/oversize (response already written when appropriate).
  bool ReadRequestHead(int fd, std::string* head);
  const Handler* Resolve(const std::string& path) const;
  static void WriteAll(int fd, const char* data, size_t size);
  static void WriteResponse(int fd, const AdminResponse& response);

  AdminHttpConfig config_;

  /// Routing tables are written before Start() and read-only afterwards.
  std::map<std::string, Handler> exact_routes_;
  std::vector<std::pair<std::string, Handler>> prefix_routes_;

  std::atomic<int> port_{-1};
  int listen_fd_ = -1;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;
  bool stop_requested_ = false;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> slow_clients_{0};

  mutable std::mutex thread_mutex_;
  std::thread accept_thread_;
  std::vector<std::thread> handlers_;
  bool running_ = false;
};

/// \brief Percent-decodes a URL component ('+' -> space, %XX -> byte;
/// malformed escapes pass through literally). Exposed for tests.
std::string UrlDecode(const std::string& text);

/// \brief Splits a raw query string ("a=1&b=x%20y") into decoded key/value
/// pairs; a key without '=' maps to "". Later duplicates win. Exposed for
/// handlers (/api/v1/query_range) and tests.
std::map<std::string, std::string> ParseQueryParams(const std::string& query);

}  // namespace aims::obs
