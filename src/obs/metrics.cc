#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/macros.h"

namespace aims::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  AIMS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_.reserve(bounds_.size() + 1);
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
}

void Histogram::Record(double value) {
  // First bucket whose upper bound admits the value; past-the-end = +inf.
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[i]->fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::bucket_count(size_t i) const {
  AIMS_CHECK(i < buckets_.size());
  return buckets_[i]->load(std::memory_order_relaxed);
}

double Histogram::ApproxQuantile(double p) const {
  uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  double target = p * static_cast<double>(n);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      double lo = i == 0 ? 0.0 : bounds_[i - 1];
      // Overflow bucket: no upper edge to interpolate toward, so clamp to
      // the last finite bound instead of extrapolating past the end.
      // overflow_count() exposes how many observations force this clamp.
      if (i == bounds_.size()) return lo;
      double hi = bounds_[i];
      double within =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket->store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return slot.get();
}

std::vector<double> MetricsRegistry::DefaultLatencyBoundsMs() {
  std::vector<double> bounds;
  for (double b = 0.25; b <= 4096.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> MetricsRegistry::DefaultProfileBoundsMs() {
  std::vector<double> bounds;
  for (double b = 0.001; b <= 4096.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

std::vector<std::pair<std::string, Counter*>> MetricsRegistry::Counters()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.get());
  return out;
}

std::vector<std::pair<std::string, Gauge*>> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.get());
  return out;
}

std::vector<std::pair<std::string, Histogram*>> MetricsRegistry::Histograms()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::string MetricsRegistry::DumpText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // One globally name-sorted list across kinds: counters, gauges, and
  // histograms interleave by name, so the dump order is a stable function
  // of the metric names alone.
  std::map<std::string, std::string> lines;
  char line[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof(line), "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    lines["c:" + name] = line;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(line, sizeof(line), "gauge %s %lld max %lld\n", name.c_str(),
                  static_cast<long long>(g->value()),
                  static_cast<long long>(g->max()));
    lines["g:" + name] = line;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(line, sizeof(line),
                  "histogram %s count %llu mean %.3f p50 %.3f p99 %.3f\n",
                  name.c_str(), static_cast<unsigned long long>(h->count()),
                  h->mean(), h->ApproxQuantile(0.5), h->ApproxQuantile(0.99));
    lines["h:" + name] = line;
  }
  std::ostringstream out;
  // Sort by bare name first, kind tag second, so a counter and a gauge that
  // share a name still dump adjacently and deterministically.
  std::vector<std::pair<std::string, const std::string*>> ordered;
  ordered.reserve(lines.size());
  for (const auto& [key, text] : lines) {
    ordered.emplace_back(key.substr(2) + "\x01" + key.substr(0, 1), &text);
  }
  std::sort(ordered.begin(), ordered.end());
  for (const auto& [key, text] : ordered) out << *text;
  return out.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace aims::obs
