#include "obs/tracer.h"

#include <cstdio>

#include "obs/json_util.h"

namespace aims::obs {

std::string Trace::ToJson() const {
  std::string out = "{\"request_id\":" + std::to_string(request_id_) +
                    ",\"label\":\"" + JsonEscape(label_) + "\",\"spans\":[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& span = spans_[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"" + JsonEscape(span.name) +
           "\",\"id\":" + std::to_string(span.id) +
           ",\"parent_id\":" + std::to_string(span.parent_id) +
           ",\"start_ms\":";
    AppendJsonDouble(&out, span.start_ms);
    out += ",\"end_ms\":";
    AppendJsonDouble(&out, span.end_ms);
    out += '}';
  }
  out += "]}";
  return out;
}

void Tracer::SetEvictionSink(std::function<void(const Trace&)> sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  eviction_sink_ = std::move(sink);
}

void Tracer::Record(Trace trace) {
  trace.CloseOpenSpans();
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_recorded_;
  traces_.push_back(std::move(trace));
  while (traces_.size() > capacity_) {
    // The sink (flight recorder) sees the trace BEFORE it leaves the ring,
    // and the dropped counter moves exactly once per eviction either way —
    // capture never changes the accounting.
    if (eviction_sink_) eviction_sink_(traces_.front());
    traces_.pop_front();
    ++dropped_;
  }
}

std::vector<Trace> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<Trace>(traces_.begin(), traces_.end());
}

uint64_t Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

size_t Tracer::retained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return traces_.size();
}

double Tracer::OldestRetainedAgeMs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (traces_.empty()) return 0.0;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - traces_.front().epoch())
      .count();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  traces_.clear();
  total_recorded_ = 0;
  dropped_ = 0;
}

std::string Tracer::DumpJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"total_recorded\":" + std::to_string(total_recorded_) +
                    ",\"dropped\":" + std::to_string(dropped_) +
                    ",\"traces\":[";
  bool first = true;
  for (const Trace& trace : traces_) {
    if (!first) out += ',';
    first = false;
    out += trace.ToJson();
  }
  out += "]}";
  return out;
}

}  // namespace aims::obs
