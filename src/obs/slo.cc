#include "obs/slo.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/macros.h"
#include "obs/json_util.h"

namespace aims::obs {

const char* SloKindName(SloKind kind) {
  switch (kind) {
    case SloKind::kLatencyQuantile:
      return "latency_quantile";
    case SloKind::kErrorRatio:
      return "error_ratio";
    case SloKind::kAvailability:
      return "availability";
  }
  return "error_ratio";
}

SloEngine::SloEngine(const MetricsTimeSeries* store, MetricsRegistry* registry,
                     std::vector<SloObjective> objectives)
    : store_(store), objectives_(std::move(objectives)) {
  AIMS_CHECK(store_ != nullptr);
  if (registry != nullptr && !objectives_.empty()) {
    burning_gauge_ = registry->GetGauge("slo.burning");
    breach_transitions_ = registry->GetCounter("slo.breach_transitions_total");
  }
}

void SloEngine::SetBreachHook(std::function<void(const SloStatus&)> hook) {
  breach_hook_ = std::move(hook);
}

namespace {

/// Burn rate over one window ending at now: bad-event fraction divided by
/// the error budget (1 - objective). A burn of 1.0 spends the budget
/// exactly at the promised pace; the alert threshold is a multiple of it.
double BurnOver(const MetricsTimeSeries& store, const SloObjective& slo,
                int64_t now_ms, double window_ms) {
  const int64_t start = now_ms - static_cast<int64_t>(window_ms);
  const double budget = std::max(1.0 - slo.objective, 1e-9);
  double bad_fraction = 0.0;
  switch (slo.kind) {
    case SloKind::kLatencyQuantile: {
      // Scrapes are a uniform cadence, so the violating-sample fraction
      // approximates the violating-time fraction.
      const std::vector<gorilla::Sample> samples =
          store.Query(slo.series, start, now_ms);
      if (samples.empty()) return 0.0;
      size_t violating = 0;
      for (const gorilla::Sample& s : samples) {
        if (s.value > slo.latency_target_ms) ++violating;
      }
      bad_fraction =
          static_cast<double>(violating) / static_cast<double>(samples.size());
      break;
    }
    case SloKind::kErrorRatio:
    case SloKind::kAvailability: {
      const double total = IncreaseOver(store, slo.total_series, start, now_ms);
      if (total <= 0.0) return 0.0;
      const double bad = IncreaseOver(store, slo.series, start, now_ms);
      bad_fraction = std::clamp(bad / total, 0.0, 1.0);
      break;
    }
  }
  return bad_fraction / budget;
}

}  // namespace

std::vector<SloStatus> SloEngine::Evaluate(int64_t now_ms) {
  std::vector<SloStatus> statuses;
  statuses.reserve(objectives_.size());
  for (const SloObjective& slo : objectives_) {
    SloStatus status;
    status.name = slo.name;
    status.kind = slo.kind;
    status.objective = slo.objective;
    status.series = slo.series;
    status.fast_window_ms = slo.fast_window_ms;
    status.slow_window_ms = slo.slow_window_ms;
    status.fast_burn = BurnOver(*store_, slo, now_ms, slo.fast_window_ms);
    status.slow_burn = BurnOver(*store_, slo, now_ms, slo.slow_window_ms);
    // Both windows must burn: the fast window reacts, the slow window
    // confirms it is not a blip.
    status.burning = status.fast_burn >= slo.burn_threshold &&
                     status.slow_burn >= slo.burn_threshold;
    if (status.burning) {
      char reason[192];
      std::snprintf(reason, sizeof(reason),
                    "SLO %s burning: %.1fx budget over %.0fs, %.1fx over "
                    "%.0fs (threshold %.1fx)",
                    slo.name.c_str(), status.fast_burn,
                    slo.fast_window_ms / 1000.0, status.slow_burn,
                    slo.slow_window_ms / 1000.0, slo.burn_threshold);
      status.reason = reason;
    }
    statuses.push_back(std::move(status));
  }

  std::vector<SloStatus> newly_burning;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (was_burning_.size() != statuses.size()) {
      was_burning_.assign(statuses.size(), false);
    }
    for (size_t i = 0; i < statuses.size(); ++i) {
      if (statuses[i].burning && !was_burning_[i]) {
        newly_burning.push_back(statuses[i]);
      }
      was_burning_[i] = statuses[i].burning;
    }
    latest_ = statuses;
  }

  int64_t burning = 0;
  for (const SloStatus& s : statuses) {
    if (s.burning) ++burning;
  }
  if (burning_gauge_ != nullptr) burning_gauge_->Set(burning);
  if (breach_transitions_ != nullptr && !newly_burning.empty()) {
    breach_transitions_->Increment(newly_burning.size());
  }
  // Hook outside the lock: it renders/dumps (flight recorder).
  if (breach_hook_) {
    for (const SloStatus& s : newly_burning) breach_hook_(s);
  }
  return statuses;
}

std::vector<SloStatus> SloEngine::Latest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return latest_;
}

namespace {

/// Prometheus text-format label-value escaping: backslash, double quote,
/// and newline must be escaped or the series — and every family after it
/// — fails to parse. Objective names are operator-configured free text,
/// so escape rather than trust.
std::string PromLabelEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void AppendSloFamily(std::string* out, const std::vector<SloStatus>& slos) {
  if (slos.empty()) return;
  struct DoubleDim {
    const char* name;
    double SloStatus::* field;
  };
  static constexpr DoubleDim kDoubleDims[] = {
      {"aims_slo_objective", &SloStatus::objective},
      {"aims_slo_burn_rate_fast", &SloStatus::fast_burn},
      {"aims_slo_burn_rate_slow", &SloStatus::slow_burn},
  };
  for (const DoubleDim& dim : kDoubleDims) {
    *out += std::string("# TYPE ") + dim.name + " gauge\n";
    for (const SloStatus& s : slos) {
      *out += std::string(dim.name) + "{objective=\"" + PromLabelEscape(s.name) +
              "\"} " + TrimmedDouble(s.*dim.field) + "\n";
    }
  }
  *out += "# TYPE aims_slo_burning gauge\n";
  for (const SloStatus& s : slos) {
    *out += "aims_slo_burning{objective=\"" + PromLabelEscape(s.name) +
            "\"} " + std::string(s.burning ? "1" : "0") + "\n";
  }
}

}  // namespace aims::obs
