#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

/// \file tracer.h
/// \brief Lightweight request tracing shared by every subsystem. Where the
/// MetricsRegistry aggregates (how many queries, what p99), a Trace
/// decomposes ONE request's latency into named spans — ingest admission,
/// queue wait, shard lock, every block I/O, each recognizer update — so a
/// slow request is explainable, not just countable. Spans carry parent/
/// child ids, so one trace follows a request end-to-end through nested
/// stages and exports as a correctly nested Chrome trace_event timeline
/// (see obs/exporters.h). Traces are built lock-free by the worker that
/// owns the request and handed to a bounded, thread-safe Tracer ring
/// buffer that exports them as JSON next to the metrics dump.

namespace aims::obs {

/// \brief One named interval of a request's life, in milliseconds relative
/// to the request's submission. Span ids are 1-based within their trace;
/// parent_id 0 marks a root span.
struct TraceSpan {
  std::string name;
  uint64_t id = 0;
  uint64_t parent_id = 0;
  double start_ms = 0.0;
  /// Negative while the span is open; EndSpan/CloseOpenSpans stamps it.
  double end_ms = -1.0;
};

/// \brief The span timeline of one request. Not thread-safe: a trace is
/// mutated only by the thread currently driving its request.
///
/// Nesting is implicit: a span begun (or added) while another span is open
/// becomes that span's child, so instrumentation at different layers —
/// server, catalog, core — composes into one tree without any layer
/// knowing about the others.
class Trace {
 public:
  /// Starts the clock: all span times are relative to construction.
  Trace() : epoch_(std::chrono::steady_clock::now()) {}
  explicit Trace(uint64_t request_id) : Trace() { request_id_ = request_id; }

  uint64_t request_id() const { return request_id_; }
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  /// Milliseconds since construction.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// \brief Opens a span starting now, child of the innermost open span;
  /// returns its index for EndSpan.
  size_t BeginSpan(std::string name) {
    return BeginSpanAt(std::move(name), ElapsedMs());
  }

  /// \brief Opens a span with an explicit start — e.g. a root span that
  /// covers the request from submission (start 0) even though the worker
  /// opens it only at dispatch.
  size_t BeginSpanAt(std::string name, double start_ms) {
    spans_.push_back(TraceSpan{std::move(name), NextSpanId(), CurrentParent(),
                               start_ms, -1.0});
    open_stack_.push_back(spans_.size() - 1);
    return spans_.size() - 1;
  }

  /// \brief Closes span \p index at the current time (idempotent).
  void EndSpan(size_t index) {
    if (index < spans_.size() && spans_[index].end_ms < 0.0) {
      spans_[index].end_ms = ElapsedMs();
      PopOpen(index);
    }
  }

  /// \brief Records a closed span with explicit bounds (e.g. an interval
  /// that started before the current thread picked the request up), child
  /// of the innermost open span.
  void AddSpan(std::string name, double start_ms, double end_ms) {
    spans_.push_back(
        TraceSpan{std::move(name), NextSpanId(), CurrentParent(), start_ms,
                  end_ms});
  }

  /// \brief Records an instantaneous marker (start == end == now), child of
  /// the innermost open span — e.g. "classification_event".
  void AddMarker(std::string name) {
    double now = ElapsedMs();
    AddSpan(std::move(name), now, now);
  }

  /// \brief Stamps every still-open span with the current time; call
  /// before publishing a trace whose request ended abnormally.
  void CloseOpenSpans() {
    for (TraceSpan& span : spans_) {
      if (span.end_ms < 0.0) span.end_ms = ElapsedMs();
    }
    open_stack_.clear();
  }

  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// \brief One JSON object:
  /// {"request_id":7,"label":"...","spans":[{"name":...,"id":...,
  /// "parent_id":...,"start_ms":...,"end_ms":...},...]}.
  std::string ToJson() const;

 private:
  uint64_t NextSpanId() { return static_cast<uint64_t>(spans_.size()) + 1; }
  uint64_t CurrentParent() const {
    return open_stack_.empty() ? 0 : spans_[open_stack_.back()].id;
  }
  void PopOpen(size_t index) {
    for (size_t i = open_stack_.size(); i-- > 0;) {
      if (open_stack_[i] == index) {
        open_stack_.erase(open_stack_.begin() + static_cast<ptrdiff_t>(i));
        return;
      }
    }
  }

  uint64_t request_id_ = 0;
  std::string label_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceSpan> spans_;
  /// Indices of open spans, outermost first: the implicit parent stack.
  std::vector<size_t> open_stack_;
};

/// \brief Bounded, thread-safe ring buffer of finished traces. Keeps the
/// most recent `capacity` traces; recording past capacity explicitly
/// evicts the oldest trace and increments the dropped-trace counter, so
/// tracing never grows without bound under sustained load and the loss is
/// observable instead of silent.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 512) : capacity_(capacity) {}

  /// \brief Stores a finished trace (closing any still-open spans). When
  /// the ring is full the oldest retained trace is evicted and counted in
  /// dropped(); an eviction sink, when set, observes it on its way out.
  void Record(Trace trace);

  /// \brief Observer of every trace the ring evicts (the flight
  /// recorder's last-chance capture). Runs under the tracer's mutex on
  /// the recording thread: keep it cheap and NEVER call back into the
  /// tracer from it. Eviction accounting (dropped()) is unchanged by the
  /// sink. Set during wiring, before concurrent recording starts.
  void SetEvictionSink(std::function<void(const Trace&)> sink);

  /// \brief Server-wide request-id source, shared by every traced
  /// subsystem so exported timelines never collide on id.
  uint64_t NextRequestId() {
    return next_request_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Retained traces, oldest first.
  std::vector<Trace> Snapshot() const;

  size_t capacity() const { return capacity_; }
  uint64_t total_recorded() const;
  /// Traces evicted by the ring buffer since construction (or Clear).
  uint64_t dropped() const;
  /// Traces currently retained (<= capacity).
  size_t retained() const;
  /// \brief Age in milliseconds of the oldest retained trace (measured
  /// from its epoch), or 0 when empty — the trace window's actual
  /// coverage. A dashboard reading dropped() alone cannot tell whether
  /// the ring still spans the incident it is investigating; this can.
  double OldestRetainedAgeMs() const;

  /// \brief Test/bench-only: forgets retained traces and zeroes the
  /// recorded/dropped counters (the request-id source keeps advancing).
  void Clear();

  /// \brief {"total_recorded":N,"dropped":D,"traces":[...]} — the JSON
  /// companion to MetricsRegistry::DumpText.
  std::string DumpJson() const;

 private:
  const size_t capacity_;
  std::atomic<uint64_t> next_request_id_{1};
  mutable std::mutex mutex_;
  std::deque<Trace> traces_;
  uint64_t total_recorded_ = 0;
  uint64_t dropped_ = 0;
  /// Guarded by mutex_; invoked under it (see SetEvictionSink).
  std::function<void(const Trace&)> eviction_sink_;
};

}  // namespace aims::obs
