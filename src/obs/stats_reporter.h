#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/watchdog.h"

/// \file stats_reporter.h
/// \brief Periodic introspection over a MetricsRegistry: a background
/// thread snapshots the registry on an interval, turns monotonic counters
/// into rates (delta / elapsed, wrap-safe), and derives a single health
/// signal — is the ingest queue saturating, is query p99 over target — the
/// way Aurora's QoS monitor reduces per-operator statistics to "are we
/// meeting the service contract". The latest snapshot is served lock-cheap
/// to the typed API's GetHealth and to dashboards.

namespace aims::obs {

/// \brief What the reporter watches and the targets it judges against.
struct StatsReporterConfig {
  /// Snapshot cadence of the background thread (Start()); also the rate
  /// window. Snapshots on demand (SnapshotNow) work regardless.
  double interval_ms = 1000.0;
  /// Histogram whose p99 is compared against the target (ignored when the
  /// histogram is not registered or the target is 0).
  std::string latency_histogram = "scheduler.exec_ms";
  /// Degraded when p99 exceeds this; saturated when it exceeds twice this.
  /// 0 disables the latency check.
  double p99_target_ms = 0.0;
  /// Gauge read as a queue depth for the saturation ratio (ignored when
  /// not registered or capacity is 0).
  std::string saturation_gauge = "ingest.queue_depth";
  /// Capacity the gauge is divided by. Degraded at >= 75% of capacity,
  /// saturated at >= 100%. 0 disables the saturation check.
  double saturation_capacity = 0.0;
  /// Gauge read as the WAL lag in bytes — committed log the page files
  /// have not yet absorbed via checkpoint (ShardedCatalog publishes it
  /// after every durable ingest). Ignored when not registered or the
  /// budget is 0.
  std::string wal_lag_gauge = "storage.wal_lag_bytes";
  /// Checkpoint byte budget the WAL-lag gauge is divided by. A lag well
  /// past the auto-checkpoint threshold means checkpoints are failing or
  /// falling behind ingest — recovery time grows with every committed
  /// byte. Degraded at >= 75% of budget, saturated at >= 100%. 0 disables
  /// the check.
  double wal_lag_budget_bytes = 0.0;
  /// Gauge read as the max-over-shards shard-lock-wait p99 in
  /// MICROseconds (the catalog publishes it after every ingest and shard-
  /// stats snapshot). Ignored when not registered or the target is 0.
  std::string shard_lock_gauge = "catalog.shard_lock_p99_us";
  /// Target for the shard-lock p99 in milliseconds. One shard whose
  /// writers queue behind a hot lock degrades every tenant placed there —
  /// the per-shard probe catches it while server-wide p99 still looks
  /// fine. Degraded when p99 exceeds the target, saturated at 2x. 0
  /// disables the check.
  double shard_lock_p99_target_ms = 0.0;
  /// Counter of queries over the server's slow-query threshold, judged as
  /// a rate over the snapshot window.
  std::string slow_query_counter = "scheduler.slow_queries";
  /// Degraded when the slow-query rate exceeds this many per second. 0
  /// disables the check. A slow-query burst is a quality-of-service
  /// breach even while queues and p99 still look healthy (p99 lags a
  /// window; the rate reacts within one).
  double slow_query_rate_per_sec = 0.0;
};

/// \brief Overall judgement of one snapshot.
enum class HealthLevel {
  kOk,         ///< All watched signals within target.
  kDegraded,   ///< A signal is past its soft threshold.
  kSaturated,  ///< A signal is at/over capacity (or 2x the latency target).
};

/// \brief Human-readable level name ("Ok" / "Degraded" / "Saturated").
const char* HealthLevelName(HealthLevel level);

/// \brief Value and rate of one counter at snapshot time.
struct CounterRate {
  uint64_t value = 0;
  /// Delta per second since the previous snapshot (0 on the first).
  double per_sec = 0.0;
};

/// \brief The most recent change of the derived health level — what
/// /healthz and the flight recorder report as the WHY behind the current
/// WHAT. Captured at the snapshot where the level changed; carries that
/// snapshot's violated inputs.
struct HealthTransition {
  /// Sequence of the snapshot that changed the level.
  uint64_t sequence = 0;
  /// Reporter uptime (ms) when the transition happened.
  double uptime_ms = 0.0;
  HealthLevel from = HealthLevel::kOk;
  HealthLevel to = HealthLevel::kOk;
  /// The threshold breaches in force at transition time (empty when the
  /// transition was a recovery to Ok).
  std::vector<std::string> reasons;
};

/// \brief One periodic (or on-demand) evaluation of the registry.
struct HealthSnapshot {
  /// 1-based snapshot sequence number; 0 means "no snapshot yet".
  uint64_t sequence = 0;
  /// Milliseconds since the reporter was constructed.
  double uptime_ms = 0.0;
  /// Actual window this snapshot's rates are computed over.
  double window_ms = 0.0;
  HealthLevel level = HealthLevel::kOk;
  /// One entry per threshold breach, e.g. "queue at 112% of capacity".
  std::vector<std::string> reasons;
  /// saturation_gauge value / saturation_capacity (0 when disabled).
  double queue_saturation = 0.0;
  /// wal_lag_gauge value / wal_lag_budget_bytes (0 when disabled).
  double wal_lag_saturation = 0.0;
  /// p99 of latency_histogram in ms (0 when disabled/unregistered).
  double p99_ms = 0.0;
  /// Max-over-shards shard-lock-wait p99 in ms (0 when the shard-lock
  /// gauge is unregistered).
  double shard_lock_p99_ms = 0.0;
  /// Rate of slow_query_counter over the window (0 when unregistered).
  double slow_query_per_sec = 0.0;
  /// The most recent level change, carried on every snapshot since (empty
  /// until the level first leaves its initial Ok).
  std::optional<HealthTransition> last_transition;
  /// Every registered counter with its per-second rate over the window.
  std::map<std::string, CounterRate> rates;
};

/// \brief One JSON object for a snapshot — the /healthz body and the
/// flight-record bundle's health entries. Includes the last transition
/// (or null) and the full per-counter rate map.
std::string HealthSnapshotJson(const HealthSnapshot& snapshot);

/// \brief Background snapshot thread + on-demand evaluation.
///
/// Thread-safe. Start() is optional: without it the reporter is a pure
/// on-demand evaluator (SnapshotNow). Stop()/destructor join the thread
/// promptly (the interval wait is interruptible).
class StatsReporter {
 public:
  /// \param registry watched registry (not owned, must outlive this).
  explicit StatsReporter(const MetricsRegistry* registry,
                         StatsReporterConfig config = {});
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  /// \brief Spawns the periodic thread (idempotent).
  void Start();

  /// \brief Stops and joins the periodic thread (idempotent).
  void Stop();

  /// \brief Evaluates the registry right now, updates Latest(), and
  /// returns the fresh snapshot. Safe to call concurrently with the
  /// background thread.
  HealthSnapshot SnapshotNow();

  /// \brief Most recent snapshot; computes one first when none exists yet
  /// (so callers never see an empty sequence-0 report once they ask).
  HealthSnapshot Latest();

  /// \brief Observer of every freshly computed snapshot (the flight
  /// recorder's health feed). Runs on the snapshotting thread with no
  /// reporter lock held. Set before Start(); not synchronized against
  /// concurrent snapshots.
  void SetSnapshotHook(std::function<void(const HealthSnapshot&)> hook);

  /// \brief Heartbeat slot the periodic loop beats each iteration (armed
  /// while the loop runs). Set before Start(); may be null.
  void SetWatchdogHandle(Watchdog::Handle* handle);

  /// \brief External health contributor, consulted at the end of every
  /// snapshot computation before transition bookkeeping: the callback may
  /// append reasons and raise (never lower) the level — the server wires
  /// the SLO engine here so a burning objective degrades /healthz with an
  /// SLO reason. Set before Start(); runs with the reporter's snapshot
  /// lock held, so it must not call back into this reporter.
  void SetHealthInput(std::function<void(HealthSnapshot*)> input);

  bool running() const;
  const StatsReporterConfig& config() const { return config_; }

 private:
  void Loop();
  /// Computes a snapshot from current registry state; caller must hold
  /// snapshot_mutex_ (rate bookkeeping is not concurrent-safe).
  HealthSnapshot ComputeLocked();

  const MetricsRegistry* registry_;
  StatsReporterConfig config_;
  const std::chrono::steady_clock::time_point epoch_;

  /// Serializes snapshot computation and guards latest_ + rate history.
  mutable std::mutex snapshot_mutex_;
  HealthSnapshot latest_;
  uint64_t sequence_ = 0;
  std::map<std::string, uint64_t> prev_counters_;
  std::chrono::steady_clock::time_point prev_time_;
  /// Level of the previous snapshot + the last change, for
  /// HealthSnapshot::last_transition (guarded by snapshot_mutex_).
  HealthLevel prev_level_ = HealthLevel::kOk;
  std::optional<HealthTransition> last_transition_;

  /// Set-before-Start wiring (unsynchronized by contract).
  std::function<void(const HealthSnapshot&)> snapshot_hook_;
  std::function<void(HealthSnapshot*)> health_input_;
  Watchdog::Handle* watchdog_ = nullptr;

  mutable std::mutex thread_mutex_;
  std::condition_variable wake_cv_;
  std::thread thread_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace aims::obs
