#pragma once

#include <string>

#include <vector>

#include "obs/cache_stats.h"
#include "obs/cost_ledger.h"
#include "obs/metrics.h"
#include "obs/shard_stats.h"
#include "obs/slo.h"
#include "obs/tracer.h"
#include "obs/wal_stats.h"

/// \file exporters.h
/// \brief Standard-format exporters over the obs primitives, so AIMS dumps
/// plug into existing tooling instead of needing bespoke parsers:
///
///   * PrometheusExport — the Prometheus text exposition format for a
///     MetricsRegistry: counters, gauges (level + high-water mark),
///     histograms as cumulative `_bucket{le=...}` series with `_sum` /
///     `_count`, plus companion `_quantile{quantile=...}` gauges carrying
///     p50/p95/p99 interpolated from the fixed buckets, since AIMS
///     histograms are bucketed, not sampled.
///   * ChromeTraceExport — Chrome `trace_event` JSON ("X" complete events)
///     from a Tracer, loadable directly in Perfetto / chrome://tracing.
///     Each request becomes its own named track (tid = request id) and
///     span nesting follows the parent/child ids recorded in the trace.

namespace aims::obs {

/// \brief Version baked in at configure time (CMake project VERSION), or
/// "unknown" outside the CMake build.
const char* BuildVersion();
/// \brief Abbreviated git commit baked in at configure time, or "unknown"
/// when the build happened outside a git checkout.
const char* BuildGitSha();
/// \brief Seconds since this process's obs library was initialized —
/// the `aims_uptime_seconds` gauge. Monotonic (steady clock).
double ProcessUptimeSeconds();

/// \brief Prometheus text exposition of every registered metric, in the
/// registry's stable name-sorted order. Metric names are sanitized
/// (non-alphanumeric -> '_') and prefixed "aims_". The exposition leads
/// with the `aims_build_info{version,git_sha}` identity series, the
/// `aims_uptime_seconds` gauge, and (where /proc/self is readable) the
/// self-sampled `aims_process_rss_bytes` / `aims_process_open_fds` /
/// `aims_process_cpu_seconds_total` resource series, so every scrape is
/// self-identifying and self-describing. After the histograms it appends
/// `aims_histogram_overflow_total{histogram=...}`, counting observations
/// past each histogram's last finite bound (where quantile gauges clamp).
std::string PrometheusExport(const MetricsRegistry& registry);

/// \brief Extended exposition: the registry as above, then (when non-null)
/// the tracer's ring health as `aims_tracer_*` — recorded/dropped totals,
/// retained count, and the oldest retained trace's age, so dashboards can
/// see the trace window's actual coverage, not just that eviction happened
/// — and the cost ledger as the `aims_tenant_*` family, one
/// `{tenant="<id>"}` labelled series per tenant per cost dimension — and
/// a block-cache snapshot (e.g. ShardedCatalog::TotalCacheStats()) as the
/// `aims_cache_*` family: hit/miss/eviction/invalidation/insertion
/// counters plus resident-bytes/blocks and capacity gauges — and a WAL
/// snapshot (e.g. ShardedCatalog::TotalWalStats()) as the `aims_wal_*`
/// family: record/commit/sync/checkpoint counters, the group-commit
/// batch-size high-water mark, the current lag in bytes, and the last
/// recovery's replay/discard accounting — and per-shard health probes
/// (e.g. ShardedCatalog::ShardStats()) as the `aims_shard_*` family, one
/// `{shard="<i>"}` labelled series per shard per probe: session/tenant
/// placement, ingest/query totals, lock-wait p50/p99, WAL lag, and queue
/// depth — and the latest SLO judgements (e.g. SloEngine::Latest()) as the
/// `aims_slo_*` family: objective, fast/slow burn rates, and the 0/1
/// burning flag, one `{objective="<name>"}` labelled series each.
std::string PrometheusExport(const MetricsRegistry& registry,
                             const Tracer* tracer,
                             const CostLedger* ledger = nullptr,
                             const CacheStats* cache = nullptr,
                             const WalStats* wal = nullptr,
                             const std::vector<ShardStatsEntry>* shards =
                                 nullptr,
                             const std::vector<SloStatus>* slo = nullptr);

/// \brief One Prometheus-sanitized metric name: "scheduler.exec_ms" ->
/// "aims_scheduler_exec_ms". Exposed for tests and dashboards.
std::string PrometheusName(const std::string& name);

/// \brief Chrome trace_event JSON for every trace the tracer retains:
/// {"displayTimeUnit":"ms","traceEvents":[...]}. Timestamps are in
/// microseconds relative to the earliest retained trace, so concurrent
/// requests line up on one absolute timeline. Each span becomes a complete
/// ("ph":"X") event with its span id/parent id in "args"; each request
/// gets a thread-name metadata event carrying the trace label.
std::string ChromeTraceExport(const Tracer& tracer);

}  // namespace aims::obs
