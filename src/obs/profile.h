#pragma once

#include <chrono>
#include <string>

#include "obs/metrics.h"

/// \file profile.h
/// \brief Compile-time-optional profiling hooks for the hot kernels (DWT
/// transform, ProPolyne block evaluation, weighted-SVD update, ...).
///
/// Usage in a kernel:
///
///   void HotFunction() {
///     AIMS_PROFILE_SCOPE("signal.forward_dwt");
///     ...
///   }
///
/// Built with -DAIMS_PROFILE (CMake option AIMS_PROFILE=ON) the macro
/// opens a scoped timer that records the elapsed milliseconds into a
/// per-stage histogram of the process-wide Profiler registry; built
/// without it the macro expands to nothing, so the default build carries
/// zero cost — not even a branch — in the kernels.
///
/// The per-stage histograms live in their own MetricsRegistry (kernels run
/// below the server layer and know nothing about servers); dump them with
/// Profiler::Global().DumpText() or export them via PrometheusExport on
/// Profiler::Global().registry().

namespace aims::obs {

/// \brief Process-wide directory of per-stage profiling histograms.
///
/// Stage() resolution takes the registry mutex; hot code should resolve
/// once (function-local static) and Record lock-free thereafter — which is
/// exactly what AIMS_PROFILE_SCOPE does.
class Profiler {
 public:
  static Profiler& Global();

  /// Per-stage histogram (sub-millisecond buckets), registered on first
  /// use; the returned pointer stays valid for the process lifetime.
  Histogram* Stage(const std::string& name) {
    return registry_.GetHistogram(name,
                                  MetricsRegistry::DefaultProfileBoundsMs());
  }

  const MetricsRegistry& registry() const { return registry_; }
  MetricsRegistry& registry() { return registry_; }

  /// True when the binary was built with -DAIMS_PROFILE; lets benches and
  /// tests report which mode they measured.
  static constexpr bool CompiledIn() {
#ifdef AIMS_PROFILE
    return true;
#else
    return false;
#endif
  }

  /// Plain-text dump of every stage histogram (empty without stages).
  std::string DumpText() const { return registry_.DumpText(); }

  /// Test/bench-only: zeroes every stage histogram between phases.
  void Reset() { registry_.Reset(); }

 private:
  Profiler() = default;
  MetricsRegistry registry_;
};

/// \brief RAII stage timer: records scope-exit minus construction, in
/// milliseconds, into \p stage. Use through AIMS_PROFILE_SCOPE so the
/// default build compiles the timer out entirely.
class ProfileScope {
 public:
  explicit ProfileScope(Histogram* stage)
      : stage_(stage), start_(std::chrono::steady_clock::now()) {}
  ~ProfileScope() {
    stage_->Record(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Histogram* stage_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace aims::obs

#ifdef AIMS_PROFILE
#define AIMS_PROFILE_CONCAT_INNER(a, b) a##b
#define AIMS_PROFILE_CONCAT(a, b) AIMS_PROFILE_CONCAT_INNER(a, b)
/// Times the enclosing scope into the named per-stage histogram. The stage
/// is resolved once per call site (function-local static), so steady state
/// is two clock reads plus three relaxed atomic adds.
#define AIMS_PROFILE_SCOPE(stage_name)                                       \
  static ::aims::obs::Histogram* AIMS_PROFILE_CONCAT(aims_profile_stage_,    \
                                                     __LINE__) =             \
      ::aims::obs::Profiler::Global().Stage(stage_name);                     \
  ::aims::obs::ProfileScope AIMS_PROFILE_CONCAT(aims_profile_scope_,         \
                                                __LINE__)(                   \
      AIMS_PROFILE_CONCAT(aims_profile_stage_, __LINE__))
#else
#define AIMS_PROFILE_SCOPE(stage_name) \
  do {                                 \
  } while (false)
#endif
