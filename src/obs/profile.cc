#include "obs/profile.h"

namespace aims::obs {

Profiler& Profiler::Global() {
  // Leaked on purpose: kernels may record during static destruction of
  // other objects, so the profiler must outlive everything.
  static Profiler* instance = new Profiler();
  return *instance;
}

}  // namespace aims::obs
