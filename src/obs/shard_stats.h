#pragma once

#include <cstdint>

/// \file shard_stats.h
/// \brief Per-shard health snapshot published by the server's catalog —
/// the input of the `aims_shard_*` Prometheus family and the shard-health
/// section of GetShardStats. Defined in obs (like CacheStats/WalStats) so
/// the exporter can consume it without depending on the server layer.

namespace aims::obs {

/// \brief One shard's health probe at snapshot time.
struct ShardStatsEntry {
  uint64_t shard = 0;
  /// Sessions whose primary route points at this shard.
  uint64_t sessions = 0;
  /// Distinct tenants with at least one session on this shard.
  uint64_t tenants = 0;
  /// Ingests / queries served by this shard since construction.
  uint64_t ingests = 0;
  uint64_t queries = 0;
  /// Shard-lock wait quantiles (ms) over the shard's lifetime — the
  /// "is one shard's lock hot" probe.
  double lock_wait_p50_ms = 0.0;
  double lock_wait_p99_ms = 0.0;
  /// Committed-but-uncheckpointed WAL bytes (0 on the in-memory backend).
  uint64_t wal_lag_bytes = 0;
  /// Operations currently waiting for or holding the shard lock — the
  /// shard's queue depth at snapshot time.
  int64_t queue_depth = 0;
};

}  // namespace aims::obs
