#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

/// \file cost_ledger.h
/// \brief Per-tenant cost attribution. Where the MetricsRegistry answers
/// "how much work is the server doing", the CostLedger answers "who is it
/// doing it for": every ingest, query, and stream path charges the acting
/// tenant's cells — CPU nanoseconds, block reads/writes, bytes moved,
/// queue occupancy — so a multi-tenant deployment can see which client is
/// burning the I/O budget (the ROADMAP's million-user accounting story).
///
/// The design mirrors the registry's resolve-once-then-lock-free pattern:
/// ForTenant takes a mutex only on a tenant's FIRST charge — later lookups
/// hit a write-once lock-free fast table — and the returned TenantLedger
/// is pointer-stable for the ledger's lifetime with every charge on it a
/// relaxed atomic add: cheap enough to stay always-on (bench_query_cost
/// asserts < 2% overhead on a CPU-bound workload).

namespace aims::obs {

/// \brief Identifier of one tenant. The server layer charges its ClientId
/// here; the obs layer itself is agnostic about what the id means.
using TenantId = uint64_t;

/// \brief Point-in-time copy of one tenant's accumulated costs.
struct TenantUsage {
  /// CPU time spent on this tenant's requests (ScopedCpuCharge sections).
  uint64_t cpu_ns = 0;
  uint64_t blocks_read = 0;
  uint64_t blocks_written = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  /// Total time this tenant's work sat in bounded queues (ingest queue,
  /// scheduler admission) — the "queue occupancy" a noisy tenant inflicts
  /// on itself.
  double queue_ms = 0.0;
  uint64_t queries = 0;
  uint64_t ingests = 0;
  uint64_t stream_batches = 0;
  uint64_t slow_queries = 0;
  /// Submissions rejected by admission control (no other cost charged).
  uint64_t rejected = 0;

  /// Field-wise sum, for ledger-wide totals.
  void Accumulate(const TenantUsage& other);
};

/// \brief One tenant's live cost cells. All charges are relaxed atomic
/// adds: safe from any thread, never blocking, and individually exact
/// (Snapshot tears only across fields, never within one).
class TenantLedger {
 public:
  void ChargeCpuNs(uint64_t ns) { cpu_ns_.fetch_add(ns, kRelaxed); }
  void ChargeRead(uint64_t blocks, uint64_t bytes) {
    blocks_read_.fetch_add(blocks, kRelaxed);
    bytes_read_.fetch_add(bytes, kRelaxed);
  }
  void ChargeWrite(uint64_t blocks, uint64_t bytes) {
    blocks_written_.fetch_add(blocks, kRelaxed);
    bytes_written_.fetch_add(bytes, kRelaxed);
  }
  void ChargeQueueMs(double ms) { queue_ms_.fetch_add(ms, kRelaxed); }
  void CountQuery() { queries_.fetch_add(1, kRelaxed); }
  void CountIngest() { ingests_.fetch_add(1, kRelaxed); }
  void CountStreamBatch() { stream_batches_.fetch_add(1, kRelaxed); }
  void CountSlowQuery() { slow_queries_.fetch_add(1, kRelaxed); }
  void CountRejected() { rejected_.fetch_add(1, kRelaxed); }

  TenantUsage Snapshot() const;

 private:
  static constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

  std::atomic<uint64_t> cpu_ns_{0};
  std::atomic<uint64_t> blocks_read_{0};
  std::atomic<uint64_t> blocks_written_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  /// fetch_add on atomic<double> is C++20 (same idiom as Histogram::sum_).
  std::atomic<double> queue_ms_{0.0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> ingests_{0};
  std::atomic<uint64_t> stream_batches_{0};
  std::atomic<uint64_t> slow_queries_{0};
  std::atomic<uint64_t> rejected_{0};
};

/// \brief Registry of per-tenant ledgers. Thread-safe; the mutex guards
/// only tenant registration and enumeration, never the charges themselves.
class CostLedger {
 public:
  /// \brief The tenant's ledger, created on first use. The pointer stays
  /// valid for the CostLedger's lifetime — resolve once per request (or
  /// once per service), then charge lock-free.
  TenantLedger* ForTenant(TenantId tenant);

  /// \brief Usage of one tenant, or nullopt if it was never charged.
  std::optional<TenantUsage> Usage(TenantId tenant) const;

  /// \brief Every tenant's usage, sorted by tenant id.
  std::vector<std::pair<TenantId, TenantUsage>> Snapshot() const;

  /// \brief Field-wise sum across all tenants.
  TenantUsage Total() const;

  size_t num_tenants() const;

 private:
  /// Lock-free fast path for already-registered tenants: an open-addressed
  /// table whose slots are written exactly once (tenants are never
  /// removed), so readers need no lock and no seqlock — a slot's id never
  /// changes after it is claimed. Misses (new tenant, sentinel-valued id,
  /// table full) fall back to the mutex-guarded map, which stays the
  /// source of truth for enumeration.
  static constexpr size_t kFastSlots = 256;  // power of two (probe mask)
  static constexpr TenantId kEmptySlot = ~TenantId{0};
  struct FastSlot {
    std::atomic<TenantId> id{kEmptySlot};
    std::atomic<TenantLedger*> ledger{nullptr};
  };

  TenantLedger* FastLookup(TenantId tenant) const;
  void FastPublishLocked(TenantId tenant, TenantLedger* ledger);

  mutable std::mutex mutex_;
  /// unique_ptr cells so ForTenant's pointers survive rehash/rebalance.
  std::map<TenantId, std::unique_ptr<TenantLedger>> tenants_;
  mutable FastSlot fast_[kFastSlots];
};

/// \brief RAII CPU-time charge: the always-on promotion of the
/// AIMS_PROFILE_SCOPE idea — one steady_clock pair per section, one
/// relaxed add on destruction. A null ledger makes it a no-op, so call
/// sites need no branches of their own.
class ScopedCpuCharge {
 public:
  explicit ScopedCpuCharge(TenantLedger* ledger)
      : ledger_(ledger),
        start_(ledger == nullptr ? std::chrono::steady_clock::time_point{}
                                 : std::chrono::steady_clock::now()) {}
  ~ScopedCpuCharge() {
    if (ledger_ == nullptr) return;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    if (ns > 0) ledger_->ChargeCpuNs(static_cast<uint64_t>(ns));
  }

  ScopedCpuCharge(const ScopedCpuCharge&) = delete;
  ScopedCpuCharge& operator=(const ScopedCpuCharge&) = delete;

 private:
  TenantLedger* ledger_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace aims::obs
