#include "obs/cost_ledger.h"

namespace aims::obs {

void TenantUsage::Accumulate(const TenantUsage& other) {
  cpu_ns += other.cpu_ns;
  blocks_read += other.blocks_read;
  blocks_written += other.blocks_written;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  queue_ms += other.queue_ms;
  queries += other.queries;
  ingests += other.ingests;
  stream_batches += other.stream_batches;
  slow_queries += other.slow_queries;
  rejected += other.rejected;
}

TenantUsage TenantLedger::Snapshot() const {
  TenantUsage usage;
  usage.cpu_ns = cpu_ns_.load(kRelaxed);
  usage.blocks_read = blocks_read_.load(kRelaxed);
  usage.blocks_written = blocks_written_.load(kRelaxed);
  usage.bytes_read = bytes_read_.load(kRelaxed);
  usage.bytes_written = bytes_written_.load(kRelaxed);
  usage.queue_ms = queue_ms_.load(kRelaxed);
  usage.queries = queries_.load(kRelaxed);
  usage.ingests = ingests_.load(kRelaxed);
  usage.stream_batches = stream_batches_.load(kRelaxed);
  usage.slow_queries = slow_queries_.load(kRelaxed);
  usage.rejected = rejected_.load(kRelaxed);
  return usage;
}

TenantLedger* CostLedger::FastLookup(TenantId tenant) const {
  size_t index = static_cast<size_t>(tenant) & (kFastSlots - 1);
  for (size_t probe = 0; probe < kFastSlots; ++probe) {
    const FastSlot& slot = fast_[(index + probe) & (kFastSlots - 1)];
    TenantId id = slot.id.load(std::memory_order_relaxed);
    if (id == kEmptySlot) return nullptr;  // tenant not in the fast table
    if (id == tenant) {
      // The ledger store may not be visible yet right after the slot was
      // claimed; a null read just falls back to the slow path.
      return slot.ledger.load(std::memory_order_acquire);
    }
  }
  return nullptr;  // table full of other tenants
}

void CostLedger::FastPublishLocked(TenantId tenant, TenantLedger* ledger) {
  size_t index = static_cast<size_t>(tenant) & (kFastSlots - 1);
  for (size_t probe = 0; probe < kFastSlots; ++probe) {
    FastSlot& slot = fast_[(index + probe) & (kFastSlots - 1)];
    TenantId id = slot.id.load(std::memory_order_relaxed);
    if (id == tenant) return;  // already published
    if (id == kEmptySlot) {
      // Writers are serialized by mutex_, so claiming is a plain pair of
      // stores: id first, then the pointer with release so a reader that
      // sees the pointer also sees a fully-constructed TenantLedger.
      slot.id.store(tenant, std::memory_order_relaxed);
      slot.ledger.store(ledger, std::memory_order_release);
      return;
    }
  }
  // Table full: this tenant stays on the mutex path. Correct, just slower.
}

TenantLedger* CostLedger::ForTenant(TenantId tenant) {
  if (tenant != kEmptySlot) {
    if (TenantLedger* fast = FastLookup(tenant)) return fast;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = tenants_[tenant];
  if (!slot) slot = std::make_unique<TenantLedger>();
  if (tenant != kEmptySlot) FastPublishLocked(tenant, slot.get());
  return slot.get();
}

std::optional<TenantUsage> CostLedger::Usage(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return std::nullopt;
  return it->second->Snapshot();
}

std::vector<std::pair<TenantId, TenantUsage>> CostLedger::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<TenantId, TenantUsage>> out;
  out.reserve(tenants_.size());
  for (const auto& [tenant, ledger] : tenants_) {
    out.emplace_back(tenant, ledger->Snapshot());
  }
  return out;
}

TenantUsage CostLedger::Total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TenantUsage total;
  for (const auto& [tenant, ledger] : tenants_) {
    total.Accumulate(ledger->Snapshot());
  }
  return total;
}

size_t CostLedger::num_tenants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenants_.size();
}

}  // namespace aims::obs
