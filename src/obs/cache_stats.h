#pragma once

#include <cstdint>

/// \file cache_stats.h
/// \brief Point-in-time counters of one block cache (or an aggregate over
/// several). Lives in obs — not storage — so the exporters can emit the
/// aims_cache_* Prometheus family and GetHealth can carry cache health
/// without obs depending on the storage layer (storage links obs, so the
/// reverse edge would be a cycle).

namespace aims::obs {

/// \brief Snapshot of a block cache's accounting counters. Produced by
/// storage::BlockCache::Stats() and summed across catalog shards by
/// server::ShardedCatalog::TotalCacheStats().
struct CacheStats {
  /// Lookups served from the cache (no device I/O).
  uint64_t hits = 0;
  /// Lookups that went to the device (read-through).
  uint64_t misses = 0;
  /// Entries evicted to stay within the byte budget.
  uint64_t evictions = 0;
  /// Entries dropped because their block was overwritten (write-through
  /// invalidation), keeping the cache coherent with the device.
  uint64_t invalidations = 0;
  /// Entries admitted after a miss.
  uint64_t insertions = 0;
  /// Payload bytes currently resident.
  uint64_t bytes_cached = 0;
  /// Blocks currently resident.
  uint64_t blocks_cached = 0;
  /// Configured byte budget (summed across instances when aggregated).
  uint64_t capacity_bytes = 0;

  /// Field-wise sum, for catalog-wide aggregates over per-shard caches.
  void Accumulate(const CacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    invalidations += other.invalidations;
    insertions += other.insertions;
    bytes_cached += other.bytes_cached;
    blocks_cached += other.blocks_cached;
    capacity_bytes += other.capacity_bytes;
  }

  /// hits / (hits + misses), or 0 before the first lookup.
  double HitRate() const {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

}  // namespace aims::obs
