#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

/// \file log.h
/// \brief Structured asynchronous logging: a lock-free bounded MPSC ring
/// drained by one background thread into a JSON-lines sink. The producer
/// contract is the same reject-never-block rule the ingest queues follow —
/// Log() is a handful of atomic operations and NEVER blocks, sleeps, or
/// allocates a lock; when the ring is full (the drainer fell behind) or
/// the rate limit trips, the record is dropped and counted instead. The
/// server's slow-query log rides on this: emitting a record from a pool
/// worker must never add latency to the request path it is reporting on.
///
/// The ring is Vyukov's bounded MPMC queue: each cell carries a sequence
/// number; producers claim a slot with one CAS on the enqueue cursor and
/// publish by storing the cell's sequence, so producers never wait on each
/// other or on the consumer.

namespace aims::obs {

/// \brief Tuning of one AsyncLogger.
struct AsyncLogConfig {
  /// Ring capacity in records (rounded up to a power of two, minimum 2).
  /// A full ring drops new records (counted in dropped_full()).
  size_t ring_capacity = 1024;
  /// Background drain cadence. The drainer also wakes immediately on
  /// Stop()/Flush(), so a large value only delays the sink, not shutdown.
  double drain_interval_ms = 20.0;
  /// Producer-side rate limit: at most this many records admitted per
  /// second (0 = unlimited). Excess records are dropped and counted in
  /// dropped_rate_limited() — overload protection for the sink.
  size_t max_records_per_sec = 0;
};

/// \brief Lock-free bounded async logger with a JSON-lines sink.
///
/// Thread-safe: Log() from any number of threads; Flush/Stop from control
/// threads (they serialize on the drain mutex, concurrent with producers).
class AsyncLogger {
 public:
  /// \param sink destination stream (not owned; must outlive the logger or
  /// its Stop()). One record per line, flushed after every drain pass.
  explicit AsyncLogger(std::ostream* sink, AsyncLogConfig config = {});

  /// Stops the drain thread, writing out everything still enqueued.
  ~AsyncLogger();

  AsyncLogger(const AsyncLogger&) = delete;
  AsyncLogger& operator=(const AsyncLogger&) = delete;

  /// \brief Enqueues one record (one line; the newline is added by the
  /// drainer). Returns false — without blocking — when the record was
  /// dropped because the ring is full or the rate limit tripped.
  bool Log(std::string line);

  /// \brief Blocks until every record ADMITTED before this call (every
  /// Log() that returned true) is in the sink, then flushes it. Records
  /// whose producers are mid-publish are waited for (bounded: a producer
  /// finishes its publish in a handful of instructions), so a Flush
  /// ordered after a successful Log never loses that record. Records
  /// admitted concurrently with the flush may or may not be included.
  void Flush();

  /// \brief Stops and joins the drain thread, then runs one final
  /// blocking Flush (idempotent) — every record accepted before Stop()
  /// reaches the sink; none are silently dropped at shutdown. Log() keeps
  /// accepting records afterwards; they sit in the ring until a Flush()
  /// or are lost — stop last.
  void Stop();

  bool running() const;

  /// Records written to the sink.
  uint64_t published() const { return published_.load(std::memory_order_relaxed); }
  /// Records dropped because the ring was full.
  uint64_t dropped_full() const {
    return dropped_full_.load(std::memory_order_relaxed);
  }
  /// Records dropped by the producer-side rate limit.
  uint64_t dropped_rate_limited() const {
    return dropped_rate_limited_.load(std::memory_order_relaxed);
  }
  /// Total records dropped for any reason.
  uint64_t dropped() const { return dropped_full() + dropped_rate_limited(); }

  size_t ring_capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<uint64_t> sequence{0};
    std::string line;
  };

  bool TryPush(std::string* line);
  bool TryPop(std::string* line);
  bool RateAdmit();
  void DrainLoop();

  std::ostream* sink_;
  AsyncLogConfig config_;
  const std::chrono::steady_clock::time_point epoch_;

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  std::atomic<uint64_t> enqueue_pos_{0};
  std::atomic<uint64_t> dequeue_pos_{0};

  /// Start of the current one-second rate window, in ms since epoch_.
  std::atomic<int64_t> rate_window_start_ms_{0};
  std::atomic<uint64_t> rate_window_count_{0};

  std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> dropped_full_{0};
  std::atomic<uint64_t> dropped_rate_limited_{0};

  /// Serializes sink access between the drain thread and Flush().
  std::mutex drain_mutex_;

  mutable std::mutex thread_mutex_;
  std::condition_variable wake_cv_;
  std::thread thread_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace aims::obs
