#include "obs/stats_reporter.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"

namespace aims::obs {

namespace {

double MsSince(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - start).count();
}

}  // namespace

const char* HealthLevelName(HealthLevel level) {
  switch (level) {
    case HealthLevel::kOk:
      return "Ok";
    case HealthLevel::kDegraded:
      return "Degraded";
    case HealthLevel::kSaturated:
      return "Saturated";
  }
  return "Unknown";
}

StatsReporter::StatsReporter(const MetricsRegistry* registry,
                             StatsReporterConfig config)
    : registry_(registry),
      config_(config),
      epoch_(std::chrono::steady_clock::now()),
      prev_time_(epoch_) {
  AIMS_CHECK(registry_ != nullptr);
  if (config_.interval_ms <= 0.0) config_.interval_ms = 1000.0;
}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::Start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void StatsReporter::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!running_) return;
    stop_requested_ = true;
    to_join = std::move(thread_);
    running_ = false;
  }
  wake_cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

bool StatsReporter::running() const {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  return running_;
}

void StatsReporter::Loop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(config_.interval_ms));
  std::unique_lock<std::mutex> lock(thread_mutex_);
  while (!stop_requested_) {
    // Interruptible interval wait: Stop() returns within one wakeup.
    if (wake_cv_.wait_for(lock, interval, [&] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    SnapshotNow();
    lock.lock();
  }
}

HealthSnapshot StatsReporter::SnapshotNow() {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  latest_ = ComputeLocked();
  return latest_;
}

HealthSnapshot StatsReporter::Latest() {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  if (latest_.sequence == 0) latest_ = ComputeLocked();
  return latest_;
}

HealthSnapshot StatsReporter::ComputeLocked() {
  const auto now = std::chrono::steady_clock::now();
  HealthSnapshot snap;
  snap.sequence = ++sequence_;
  snap.uptime_ms = MsSince(epoch_, now);
  snap.window_ms = MsSince(prev_time_, now);

  // Counter rates: unsigned wrap-around subtraction keeps deltas correct
  // across a 2^64 wrap; the first snapshot reports rate 0.
  const double window_s = snap.window_ms / 1000.0;
  for (const auto& [name, counter] : registry_->Counters()) {
    CounterRate rate;
    rate.value = counter->value();
    auto it = prev_counters_.find(name);
    if (it != prev_counters_.end() && window_s > 0.0) {
      rate.per_sec = static_cast<double>(rate.value - it->second) / window_s;
    }
    prev_counters_[name] = rate.value;
    snap.rates[name] = rate;
  }
  prev_time_ = now;

  char reason[160];
  if (config_.saturation_capacity > 0.0) {
    for (const auto& [name, gauge] : registry_->Gauges()) {
      if (name != config_.saturation_gauge) continue;
      snap.queue_saturation = static_cast<double>(gauge->value()) /
                              config_.saturation_capacity;
      if (snap.queue_saturation >= 0.75) {
        std::snprintf(reason, sizeof(reason), "%s at %.0f%% of capacity",
                      name.c_str(), snap.queue_saturation * 100.0);
        snap.reasons.push_back(reason);
        snap.level = snap.queue_saturation >= 1.0 ? HealthLevel::kSaturated
                                                  : HealthLevel::kDegraded;
      }
      break;
    }
  }
  if (config_.wal_lag_budget_bytes > 0.0) {
    for (const auto& [name, gauge] : registry_->Gauges()) {
      if (name != config_.wal_lag_gauge) continue;
      snap.wal_lag_saturation = static_cast<double>(gauge->value()) /
                                config_.wal_lag_budget_bytes;
      if (snap.wal_lag_saturation >= 0.75) {
        std::snprintf(reason, sizeof(reason),
                      "%s at %.0f%% of checkpoint budget", name.c_str(),
                      snap.wal_lag_saturation * 100.0);
        snap.reasons.push_back(reason);
        HealthLevel level = snap.wal_lag_saturation >= 1.0
                                ? HealthLevel::kSaturated
                                : HealthLevel::kDegraded;
        snap.level = std::max(snap.level, level);
      }
      break;
    }
  }
  for (const auto& [name, gauge] : registry_->Gauges()) {
    if (name != config_.shard_lock_gauge) continue;
    // The gauge carries microseconds (integer gauges would flatten sub-ms
    // lock waits to zero); the snapshot and target speak milliseconds.
    snap.shard_lock_p99_ms = static_cast<double>(gauge->value()) / 1000.0;
    if (config_.shard_lock_p99_target_ms > 0.0 &&
        snap.shard_lock_p99_ms > config_.shard_lock_p99_target_ms) {
      std::snprintf(reason, sizeof(reason),
                    "shard lock-wait p99 %.2f ms over target %.2f ms",
                    snap.shard_lock_p99_ms, config_.shard_lock_p99_target_ms);
      snap.reasons.push_back(reason);
      HealthLevel level =
          snap.shard_lock_p99_ms > 2.0 * config_.shard_lock_p99_target_ms
              ? HealthLevel::kSaturated
              : HealthLevel::kDegraded;
      snap.level = std::max(snap.level, level);
    }
    break;
  }
  {
    auto it = snap.rates.find(config_.slow_query_counter);
    if (it != snap.rates.end()) snap.slow_query_per_sec = it->second.per_sec;
  }
  if (config_.slow_query_rate_per_sec > 0.0 &&
      snap.slow_query_per_sec > config_.slow_query_rate_per_sec) {
    std::snprintf(reason, sizeof(reason),
                  "%s at %.1f/s over target %.1f/s",
                  config_.slow_query_counter.c_str(), snap.slow_query_per_sec,
                  config_.slow_query_rate_per_sec);
    snap.reasons.push_back(reason);
    snap.level = std::max(snap.level, HealthLevel::kDegraded);
  }
  if (config_.p99_target_ms > 0.0) {
    for (const auto& [name, hist] : registry_->Histograms()) {
      if (name != config_.latency_histogram) continue;
      snap.p99_ms = hist->ApproxQuantile(0.99);
      if (snap.p99_ms > config_.p99_target_ms) {
        std::snprintf(reason, sizeof(reason),
                      "%s p99 %.1f ms over target %.1f ms", name.c_str(),
                      snap.p99_ms, config_.p99_target_ms);
        snap.reasons.push_back(reason);
        HealthLevel level = snap.p99_ms > 2.0 * config_.p99_target_ms
                                ? HealthLevel::kSaturated
                                : HealthLevel::kDegraded;
        snap.level = std::max(snap.level, level);
      }
      break;
    }
  }
  return snap;
}

}  // namespace aims::obs
