#include "obs/stats_reporter.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/macros.h"
#include "obs/json_util.h"

namespace aims::obs {

namespace {

double MsSince(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - start).count();
}

}  // namespace

std::string HealthSnapshotJson(const HealthSnapshot& snapshot) {
  std::string out = "{\"sequence\":" + std::to_string(snapshot.sequence) +
                    ",\"uptime_ms\":";
  AppendJsonDouble(&out, snapshot.uptime_ms);
  out += ",\"window_ms\":";
  AppendJsonDouble(&out, snapshot.window_ms);
  out += ",\"level\":\"";
  out += HealthLevelName(snapshot.level);
  out += "\",\"reasons\":[";
  for (size_t i = 0; i < snapshot.reasons.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + JsonEscape(snapshot.reasons[i]) + '"';
  }
  out += "],\"queue_saturation\":";
  AppendJsonDouble(&out, snapshot.queue_saturation);
  out += ",\"wal_lag_saturation\":";
  AppendJsonDouble(&out, snapshot.wal_lag_saturation);
  out += ",\"p99_ms\":";
  AppendJsonDouble(&out, snapshot.p99_ms);
  out += ",\"shard_lock_p99_ms\":";
  AppendJsonDouble(&out, snapshot.shard_lock_p99_ms);
  out += ",\"slow_query_per_sec\":";
  AppendJsonDouble(&out, snapshot.slow_query_per_sec);
  out += ",\"last_transition\":";
  if (snapshot.last_transition.has_value()) {
    const HealthTransition& t = *snapshot.last_transition;
    out += "{\"sequence\":" + std::to_string(t.sequence) + ",\"uptime_ms\":";
    AppendJsonDouble(&out, t.uptime_ms);
    out += ",\"from\":\"";
    out += HealthLevelName(t.from);
    out += "\",\"to\":\"";
    out += HealthLevelName(t.to);
    out += "\",\"reasons\":[";
    for (size_t i = 0; i < t.reasons.size(); ++i) {
      if (i > 0) out += ',';
      out += '"' + JsonEscape(t.reasons[i]) + '"';
    }
    out += "]}";
  } else {
    out += "null";
  }
  out += ",\"rates\":{";
  bool first = true;
  for (const auto& [name, rate] : snapshot.rates) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) +
           "\":{\"value\":" + std::to_string(rate.value) + ",\"per_sec\":";
    AppendJsonDouble(&out, rate.per_sec);
    out += '}';
  }
  out += "}}";
  return out;
}

const char* HealthLevelName(HealthLevel level) {
  switch (level) {
    case HealthLevel::kOk:
      return "Ok";
    case HealthLevel::kDegraded:
      return "Degraded";
    case HealthLevel::kSaturated:
      return "Saturated";
  }
  return "Unknown";
}

StatsReporter::StatsReporter(const MetricsRegistry* registry,
                             StatsReporterConfig config)
    : registry_(registry),
      config_(config),
      epoch_(std::chrono::steady_clock::now()),
      prev_time_(epoch_) {
  AIMS_CHECK(registry_ != nullptr);
  if (config_.interval_ms <= 0.0) config_.interval_ms = 1000.0;
}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::Start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void StatsReporter::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!running_) return;
    stop_requested_ = true;
    to_join = std::move(thread_);
    running_ = false;
  }
  wake_cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

bool StatsReporter::running() const {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  return running_;
}

void StatsReporter::SetSnapshotHook(
    std::function<void(const HealthSnapshot&)> hook) {
  snapshot_hook_ = std::move(hook);
}

void StatsReporter::SetWatchdogHandle(Watchdog::Handle* handle) {
  watchdog_ = handle;
}

void StatsReporter::SetHealthInput(
    std::function<void(HealthSnapshot*)> input) {
  health_input_ = std::move(input);
}

void StatsReporter::Loop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(config_.interval_ms));
  // Armed only while the loop runs: a reporter that was never started (or
  // was stopped) is idle, not stalled.
  Watchdog::Scope heartbeat(watchdog_);
  std::unique_lock<std::mutex> lock(thread_mutex_);
  while (!stop_requested_) {
    // Interruptible interval wait: Stop() returns within one wakeup.
    if (wake_cv_.wait_for(lock, interval, [&] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    if (watchdog_ != nullptr) watchdog_->Beat();
    SnapshotNow();
    lock.lock();
  }
}

HealthSnapshot StatsReporter::SnapshotNow() {
  HealthSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    latest_ = ComputeLocked();
    snap = latest_;
  }
  // Hook outside the lock: it may render/dump (flight recorder) and must
  // not serialize against concurrent Latest() readers.
  if (snapshot_hook_) snapshot_hook_(snap);
  return snap;
}

HealthSnapshot StatsReporter::Latest() {
  HealthSnapshot snap;
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    if (latest_.sequence == 0) {
      latest_ = ComputeLocked();
      fresh = true;
    }
    snap = latest_;
  }
  if (fresh && snapshot_hook_) snapshot_hook_(snap);
  return snap;
}

HealthSnapshot StatsReporter::ComputeLocked() {
  const auto now = std::chrono::steady_clock::now();
  HealthSnapshot snap;
  snap.sequence = ++sequence_;
  snap.uptime_ms = MsSince(epoch_, now);
  snap.window_ms = MsSince(prev_time_, now);

  // Counter rates: unsigned wrap-around subtraction keeps deltas correct
  // across a 2^64 wrap; the first snapshot reports rate 0.
  const double window_s = snap.window_ms / 1000.0;
  for (const auto& [name, counter] : registry_->Counters()) {
    CounterRate rate;
    rate.value = counter->value();
    auto it = prev_counters_.find(name);
    if (it != prev_counters_.end() && window_s > 0.0) {
      rate.per_sec = static_cast<double>(rate.value - it->second) / window_s;
    }
    prev_counters_[name] = rate.value;
    snap.rates[name] = rate;
  }
  prev_time_ = now;

  char reason[160];
  if (config_.saturation_capacity > 0.0) {
    for (const auto& [name, gauge] : registry_->Gauges()) {
      if (name != config_.saturation_gauge) continue;
      snap.queue_saturation = static_cast<double>(gauge->value()) /
                              config_.saturation_capacity;
      if (snap.queue_saturation >= 0.75) {
        std::snprintf(reason, sizeof(reason), "%s at %.0f%% of capacity",
                      name.c_str(), snap.queue_saturation * 100.0);
        snap.reasons.push_back(reason);
        snap.level = snap.queue_saturation >= 1.0 ? HealthLevel::kSaturated
                                                  : HealthLevel::kDegraded;
      }
      break;
    }
  }
  if (config_.wal_lag_budget_bytes > 0.0) {
    for (const auto& [name, gauge] : registry_->Gauges()) {
      if (name != config_.wal_lag_gauge) continue;
      snap.wal_lag_saturation = static_cast<double>(gauge->value()) /
                                config_.wal_lag_budget_bytes;
      if (snap.wal_lag_saturation >= 0.75) {
        std::snprintf(reason, sizeof(reason),
                      "%s at %.0f%% of checkpoint budget", name.c_str(),
                      snap.wal_lag_saturation * 100.0);
        snap.reasons.push_back(reason);
        HealthLevel level = snap.wal_lag_saturation >= 1.0
                                ? HealthLevel::kSaturated
                                : HealthLevel::kDegraded;
        snap.level = std::max(snap.level, level);
      }
      break;
    }
  }
  for (const auto& [name, gauge] : registry_->Gauges()) {
    if (name != config_.shard_lock_gauge) continue;
    // The gauge carries microseconds (integer gauges would flatten sub-ms
    // lock waits to zero); the snapshot and target speak milliseconds.
    snap.shard_lock_p99_ms = static_cast<double>(gauge->value()) / 1000.0;
    if (config_.shard_lock_p99_target_ms > 0.0 &&
        snap.shard_lock_p99_ms > config_.shard_lock_p99_target_ms) {
      std::snprintf(reason, sizeof(reason),
                    "shard lock-wait p99 %.2f ms over target %.2f ms",
                    snap.shard_lock_p99_ms, config_.shard_lock_p99_target_ms);
      snap.reasons.push_back(reason);
      HealthLevel level =
          snap.shard_lock_p99_ms > 2.0 * config_.shard_lock_p99_target_ms
              ? HealthLevel::kSaturated
              : HealthLevel::kDegraded;
      snap.level = std::max(snap.level, level);
    }
    break;
  }
  {
    auto it = snap.rates.find(config_.slow_query_counter);
    if (it != snap.rates.end()) snap.slow_query_per_sec = it->second.per_sec;
  }
  if (config_.slow_query_rate_per_sec > 0.0 &&
      snap.slow_query_per_sec > config_.slow_query_rate_per_sec) {
    std::snprintf(reason, sizeof(reason),
                  "%s at %.1f/s over target %.1f/s",
                  config_.slow_query_counter.c_str(), snap.slow_query_per_sec,
                  config_.slow_query_rate_per_sec);
    snap.reasons.push_back(reason);
    snap.level = std::max(snap.level, HealthLevel::kDegraded);
  }
  if (config_.p99_target_ms > 0.0) {
    for (const auto& [name, hist] : registry_->Histograms()) {
      if (name != config_.latency_histogram) continue;
      snap.p99_ms = hist->ApproxQuantile(0.99);
      if (snap.p99_ms > config_.p99_target_ms) {
        std::snprintf(reason, sizeof(reason),
                      "%s p99 %.1f ms over target %.1f ms", name.c_str(),
                      snap.p99_ms, config_.p99_target_ms);
        snap.reasons.push_back(reason);
        HealthLevel level = snap.p99_ms > 2.0 * config_.p99_target_ms
                                ? HealthLevel::kSaturated
                                : HealthLevel::kDegraded;
        snap.level = std::max(snap.level, level);
      }
      break;
    }
  }
  // External contributors (the SLO engine) weigh in before transition
  // bookkeeping, so an SLO-only breach is a real level change with its
  // reason captured in last_transition like any built-in check.
  if (health_input_) {
    const HealthLevel before = snap.level;
    health_input_(&snap);
    snap.level = std::max(snap.level, before);
  }
  if (snap.level != prev_level_) {
    HealthTransition transition;
    transition.sequence = snap.sequence;
    transition.uptime_ms = snap.uptime_ms;
    transition.from = prev_level_;
    transition.to = snap.level;
    transition.reasons = snap.reasons;
    last_transition_ = std::move(transition);
    prev_level_ = snap.level;
  }
  snap.last_transition = last_transition_;
  return snap;
}

}  // namespace aims::obs
