#include "server/tracer.h"

#include <cstdio>

namespace aims::server {

namespace {

/// JSON string escaping for span names/labels (control chars, quote,
/// backslash — the only things our labels can plausibly contain).
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

}  // namespace

std::string Trace::ToJson() const {
  std::string out = "{\"request_id\":" + std::to_string(request_id_) +
                    ",\"label\":\"" + JsonEscape(label_) + "\",\"spans\":[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& span = spans_[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"" + JsonEscape(span.name) + "\",\"start_ms\":";
    AppendDouble(&out, span.start_ms);
    out += ",\"end_ms\":";
    AppendDouble(&out, span.end_ms);
    out += '}';
  }
  out += "]}";
  return out;
}

void Tracer::Record(Trace trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_recorded_;
  traces_.push_back(std::move(trace));
  while (traces_.size() > capacity_) traces_.pop_front();
}

std::vector<Trace> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<Trace>(traces_.begin(), traces_.end());
}

uint64_t Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_ - traces_.size();
}

std::string Tracer::DumpJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"total_recorded\":" + std::to_string(total_recorded_) +
                    ",\"dropped\":" +
                    std::to_string(total_recorded_ - traces_.size()) +
                    ",\"traces\":[";
  bool first = true;
  for (const Trace& trace : traces_) {
    if (!first) out += ',';
    first = false;
    out += trace.ToJson();
  }
  out += "]}";
  return out;
}

}  // namespace aims::server
