#include "server/sharded_catalog.h"

#include <chrono>
#include <mutex>

#include "common/macros.h"

namespace aims::server {

namespace {

/// Milliseconds elapsed since \p start.
double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ShardedCatalog::ShardedCatalog(size_t num_shards, core::AimsConfig config,
                               MetricsRegistry* metrics)
    : config_(config) {
  AIMS_CHECK(num_shards >= 1);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(config));
  }
  if (metrics != nullptr) {
    ingest_count_ = metrics->GetCounter("catalog.ingest.count");
    query_count_ = metrics->GetCounter("catalog.query.count");
    blocks_read_ = metrics->GetCounter("catalog.query.blocks_read");
    ingest_latency_ms_ = metrics->GetHistogram(
        "catalog.ingest.latency_ms", MetricsRegistry::DefaultLatencyBoundsMs());
    query_latency_ms_ = metrics->GetHistogram(
        "catalog.query.latency_ms", MetricsRegistry::DefaultLatencyBoundsMs());
  }
}

Result<GlobalSessionId> ShardedCatalog::Ingest(
    ClientId client, const std::string& name,
    const streams::Recording& recording, obs::Trace* trace,
    IngestIoStats* io_stats) {
  size_t shard_index = ShardForClient(client);
  Shard& shard = *shards_[shard_index];
  auto start = std::chrono::steady_clock::now();
  Result<core::SessionId> local = [&]() -> Result<core::SessionId> {
    size_t lock_span = 0;
    if (trace != nullptr) lock_span = trace->BeginSpan("shard_lock");
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    if (trace != nullptr) trace->EndSpan(lock_span);
    // Writes are serialized by the exclusive lock, so the device's write-
    // counter delta across this ingest is attributable to it exactly.
    // io_stats is filled whatever the outcome: a fault mid-ingest has
    // already performed (and charged) its writes, and the tenant's ledger
    // must reflect them.
    const size_t writes_before = shard.system.device().writes();
    Result<core::SessionId> result =
        shard.system.IngestRecording(name, recording, trace);
    if (io_stats != nullptr) {
      io_stats->blocks_written = shard.system.device().writes() - writes_before;
      io_stats->bytes_written =
          io_stats->blocks_written * config_.block_size_bytes;
    }
    return result;
  }();
  AIMS_RETURN_NOT_OK(local.status());
  if (ingest_count_ != nullptr) ingest_count_->Increment();
  if (ingest_latency_ms_ != nullptr) ingest_latency_ms_->Record(MsSince(start));
  return MakeGlobalId(shard_index, *local);
}

const ShardedCatalog::Shard* ShardedCatalog::ShardFor(
    GlobalSessionId id) const {
  size_t shard_index = ShardOf(id);
  if (shard_index >= shards_.size()) return nullptr;
  return shards_[shard_index].get();
}

Result<core::SessionInfo> ShardedCatalog::GetSession(GlobalSessionId id) const {
  const Shard* shard = ShardFor(id);
  if (shard == nullptr) {
    return Status::NotFound("ShardedCatalog::GetSession: no such shard");
  }
  std::shared_lock<std::shared_mutex> lock(shard->mutex);
  return shard->system.GetSession(LocalId(id));
}

Result<std::vector<double>> ShardedCatalog::ReadChannel(GlobalSessionId id,
                                                        size_t channel) const {
  const Shard* shard = ShardFor(id);
  if (shard == nullptr) {
    return Status::NotFound("ShardedCatalog::ReadChannel: no such shard");
  }
  auto start = std::chrono::steady_clock::now();
  Result<std::vector<double>> result = [&]() -> Result<std::vector<double>> {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    return shard->system.ReadChannel(LocalId(id), channel);
  }();
  if (result.ok()) {
    if (query_count_ != nullptr) query_count_->Increment();
    if (query_latency_ms_ != nullptr) query_latency_ms_->Record(MsSince(start));
  }
  return result;
}

Result<core::RangeStatistics> ShardedCatalog::QueryRange(
    GlobalSessionId id, size_t channel, size_t first_frame,
    size_t last_frame) const {
  const Shard* shard = ShardFor(id);
  if (shard == nullptr) {
    return Status::NotFound("ShardedCatalog::QueryRange: no such shard");
  }
  auto start = std::chrono::steady_clock::now();
  Result<core::RangeStatistics> result =
      [&]() -> Result<core::RangeStatistics> {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    return shard->system.QueryRange(LocalId(id), channel, first_frame,
                                    last_frame);
  }();
  if (result.ok()) {
    if (query_count_ != nullptr) query_count_->Increment();
    if (query_latency_ms_ != nullptr) query_latency_ms_->Record(MsSince(start));
    // Note: under concurrency RangeStatistics::blocks_read is a device-
    // level delta and may include reads issued by overlapping queries on
    // the same shard — treat both it and this counter as approximate;
    // total_blocks_read() reads the exact device counters.
    if (blocks_read_ != nullptr) blocks_read_->Increment(result->blocks_read);
  }
  return result;
}

Result<core::ProgressiveRangeResult> ShardedCatalog::QueryRangeProgressive(
    GlobalSessionId id, size_t channel, size_t first_frame, size_t last_frame,
    const core::ProgressiveObserver& observer,
    const std::function<void()>& on_shard_locked) const {
  const Shard* shard = ShardFor(id);
  if (shard == nullptr) {
    return Status::NotFound(
        "ShardedCatalog::QueryRangeProgressive: no such shard");
  }
  auto start = std::chrono::steady_clock::now();
  Result<core::ProgressiveRangeResult> result =
      [&]() -> Result<core::ProgressiveRangeResult> {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    if (on_shard_locked) on_shard_locked();
    return shard->system.QueryRangeProgressive(LocalId(id), channel,
                                               first_frame, last_frame,
                                               observer);
  }();
  if (result.ok()) {
    if (query_count_ != nullptr) query_count_->Increment();
    if (query_latency_ms_ != nullptr) query_latency_ms_->Record(MsSince(start));
    if (blocks_read_ != nullptr && !result->steps.empty()) {
      blocks_read_->Increment(result->steps.back().blocks_read);
    }
  }
  return result;
}

std::vector<core::SessionInfo> ShardedCatalog::ListSessions() const {
  std::vector<core::SessionInfo> out;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    std::vector<core::SessionInfo> sessions = shard->system.ListSessions();
    out.insert(out.end(), sessions.begin(), sessions.end());
  }
  return out;
}

size_t ShardedCatalog::total_sessions() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->system.ListSessions().size();
  }
  return total;
}

storage::BlockDevice* ShardedCatalog::mutable_shard_device(size_t shard) {
  AIMS_CHECK(shard < shards_.size());
  return shards_[shard]->system.mutable_device();
}

storage::BlockCache* ShardedCatalog::mutable_shard_cache(size_t shard) {
  AIMS_CHECK(shard < shards_.size());
  return shards_[shard]->system.mutable_block_cache();
}

obs::CacheStats ShardedCatalog::TotalCacheStats() const {
  obs::CacheStats total;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    const storage::BlockCache* cache = shard->system.block_cache();
    if (cache != nullptr) total.Accumulate(cache->Stats());
  }
  return total;
}

size_t ShardedCatalog::total_blocks_read() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->system.device().reads();
  }
  return total;
}

size_t ShardedCatalog::total_blocks_written() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->system.device().writes();
  }
  return total;
}

Result<core::QueryPlan> ShardedCatalog::PlanRangeQuery(GlobalSessionId id,
                                                       size_t channel,
                                                       size_t first_frame,
                                                       size_t last_frame) const {
  const Shard* shard = ShardFor(id);
  if (shard == nullptr) {
    return Status::NotFound("ShardedCatalog::PlanRangeQuery: no such shard");
  }
  std::shared_lock<std::shared_mutex> lock(shard->mutex);
  AIMS_ASSIGN_OR_RETURN(core::QueryPlan plan,
                        shard->system.PlanRangeQuery(LocalId(id), channel,
                                                     first_frame, last_frame));
  plan.session = id;
  return plan;
}

}  // namespace aims::server
