#include "server/sharded_catalog.h"

#include <chrono>
#include <mutex>

#include "common/macros.h"

namespace aims::server {

namespace {

/// Milliseconds elapsed since \p start.
double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ShardedCatalog::ShardedCatalog(size_t num_shards, core::AimsConfig config,
                               MetricsRegistry* metrics)
    : config_(config) {
  AIMS_CHECK(num_shards >= 1);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    // Every shard gets its own durable store (its own page file + WAL)
    // under the configured base path, so per-shard commits never contend
    // on one log file and recovery parallelizes naturally by shard.
    core::AimsConfig shard_config = config;
    if (!shard_config.durability.path.empty()) {
      shard_config.durability.path += "/shard_" + std::to_string(i);
    }
    shards_.push_back(std::make_unique<Shard>(shard_config));
    shards_.back()->wal_lag.store(
        shards_.back()->system.WalStats().lag_bytes,
        std::memory_order_relaxed);
  }
  if (metrics != nullptr) {
    ingest_count_ = metrics->GetCounter("catalog.ingest.count");
    query_count_ = metrics->GetCounter("catalog.query.count");
    blocks_read_ = metrics->GetCounter("catalog.query.blocks_read");
    ingest_latency_ms_ = metrics->GetHistogram(
        "catalog.ingest.latency_ms", MetricsRegistry::DefaultLatencyBoundsMs());
    query_latency_ms_ = metrics->GetHistogram(
        "catalog.query.latency_ms", MetricsRegistry::DefaultLatencyBoundsMs());
    if (durable()) {
      wal_lag_gauge_ = metrics->GetGauge("storage.wal_lag_bytes");
      PublishWalLag();
    }
  }
}

Status ShardedCatalog::init_status() const {
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    AIMS_RETURN_NOT_OK(shard->system.init_status());
  }
  return Status::OK();
}

bool ShardedCatalog::durable() const {
  // All shards share one config, so the first answers for every one.
  return shards_.front()->system.durable();
}

void ShardedCatalog::PublishWalLag() {
  if (wal_lag_gauge_ == nullptr) return;
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->wal_lag.load(std::memory_order_relaxed);
  }
  wal_lag_gauge_->Set(static_cast<int64_t>(total));
}

Result<GlobalSessionId> ShardedCatalog::Ingest(
    ClientId client, const std::string& name,
    const streams::Recording& recording, obs::Trace* trace,
    IngestIoStats* io_stats) {
  size_t shard_index = ShardForClient(client);
  Shard& shard = *shards_[shard_index];
  auto start = std::chrono::steady_clock::now();
  // durable() reads a pointer set once at construction — safe lock-free.
  Result<core::SessionId> local =
      shard.system.durable()
          ? IngestDurable(shard, name, recording, trace, io_stats)
          : IngestInMemory(shard, name, recording, trace, io_stats);
  AIMS_RETURN_NOT_OK(local.status());
  if (ingest_count_ != nullptr) ingest_count_->Increment();
  if (ingest_latency_ms_ != nullptr) ingest_latency_ms_->Record(MsSince(start));
  return MakeGlobalId(shard_index, *local);
}

Result<core::SessionId> ShardedCatalog::IngestInMemory(
    Shard& shard, const std::string& name,
    const streams::Recording& recording, obs::Trace* trace,
    IngestIoStats* io_stats) {
  size_t lock_span = 0;
  if (trace != nullptr) lock_span = trace->BeginSpan("shard_lock");
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  if (trace != nullptr) trace->EndSpan(lock_span);
  // Writes are serialized by the exclusive lock, so the device's write-
  // counter delta across this ingest is attributable to it exactly.
  // io_stats is filled whatever the outcome: a fault mid-ingest has
  // already performed (and charged) its writes, and the tenant's ledger
  // must reflect them.
  const size_t writes_before = shard.system.device().writes();
  Result<core::SessionId> result =
      shard.system.IngestRecording(name, recording, trace);
  if (io_stats != nullptr) {
    io_stats->blocks_written = shard.system.device().writes() - writes_before;
    io_stats->bytes_written =
        io_stats->blocks_written * config_.block_size_bytes;
  }
  return result;
}

Result<core::SessionId> ShardedCatalog::IngestDurable(
    Shard& shard, const std::string& name,
    const streams::Recording& recording, obs::Trace* trace,
    IngestIoStats* io_stats) {
  if (io_stats != nullptr) *io_stats = IngestIoStats{};
  core::AimsSystem::StagedIngest staged;
  {
    size_t lock_span = 0;
    if (trace != nullptr) lock_span = trace->BeginSpan("shard_lock");
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    if (trace != nullptr) trace->EndSpan(lock_span);
    // Failed staging performs no device writes (the dirty pages are
    // dropped from the buffer pool), so io_stats stays zero on error.
    AIMS_ASSIGN_OR_RETURN(
        staged, shard.system.IngestRecordingStaged(name, recording, trace));
  }
  // The sync wait runs with the shard lock RELEASED: concurrent ingests
  // into this shard reach their own WaitDurable and share one group-commit
  // fsync instead of serializing syncs behind the exclusive lock.
  size_t sync_span = 0;
  if (trace != nullptr) sync_span = trace->BeginSpan("wal_sync");
  Status durable = shard.system.WaitDurable(staged);
  if (trace != nullptr) trace->EndSpan(sync_span);
  // Not durable -> not acknowledged. The WAL's sync error is sticky, so
  // the shard refuses further commits rather than silently degrading.
  AIMS_RETURN_NOT_OK(durable);
  {
    size_t lock_span = 0;
    if (trace != nullptr) lock_span = trace->BeginSpan("shard_apply_lock");
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    if (trace != nullptr) trace->EndSpan(lock_span);
    AIMS_RETURN_NOT_OK(shard.system.ApplyDurable(staged));
    shard.wal_lag.store(shard.system.WalStats().lag_bytes,
                        std::memory_order_relaxed);
  }
  // Staged ingests attribute I/O by their own block list, not a counter
  // delta: another ingest's write-back may run between the two exclusive
  // sections, and a delta would cross-charge tenants.
  if (io_stats != nullptr) {
    io_stats->blocks_written = staged.blocks.size();
    io_stats->bytes_written = staged.blocks.size() * config_.block_size_bytes;
  }
  PublishWalLag();
  return staged.id;
}

const ShardedCatalog::Shard* ShardedCatalog::ShardFor(
    GlobalSessionId id) const {
  size_t shard_index = ShardOf(id);
  if (shard_index >= shards_.size()) return nullptr;
  return shards_[shard_index].get();
}

Result<core::SessionInfo> ShardedCatalog::GetSession(GlobalSessionId id) const {
  const Shard* shard = ShardFor(id);
  if (shard == nullptr) {
    return Status::NotFound("ShardedCatalog::GetSession: no such shard");
  }
  std::shared_lock<std::shared_mutex> lock(shard->mutex);
  return shard->system.GetSession(LocalId(id));
}

Result<std::vector<double>> ShardedCatalog::ReadChannel(GlobalSessionId id,
                                                        size_t channel) const {
  const Shard* shard = ShardFor(id);
  if (shard == nullptr) {
    return Status::NotFound("ShardedCatalog::ReadChannel: no such shard");
  }
  auto start = std::chrono::steady_clock::now();
  Result<std::vector<double>> result = [&]() -> Result<std::vector<double>> {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    return shard->system.ReadChannel(LocalId(id), channel);
  }();
  if (result.ok()) {
    if (query_count_ != nullptr) query_count_->Increment();
    if (query_latency_ms_ != nullptr) query_latency_ms_->Record(MsSince(start));
  }
  return result;
}

Result<core::RangeStatistics> ShardedCatalog::QueryRange(
    GlobalSessionId id, size_t channel, size_t first_frame,
    size_t last_frame) const {
  const Shard* shard = ShardFor(id);
  if (shard == nullptr) {
    return Status::NotFound("ShardedCatalog::QueryRange: no such shard");
  }
  auto start = std::chrono::steady_clock::now();
  Result<core::RangeStatistics> result =
      [&]() -> Result<core::RangeStatistics> {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    return shard->system.QueryRange(LocalId(id), channel, first_frame,
                                    last_frame);
  }();
  if (result.ok()) {
    if (query_count_ != nullptr) query_count_->Increment();
    if (query_latency_ms_ != nullptr) query_latency_ms_->Record(MsSince(start));
    // Note: under concurrency RangeStatistics::blocks_read is a device-
    // level delta and may include reads issued by overlapping queries on
    // the same shard — treat both it and this counter as approximate;
    // total_blocks_read() reads the exact device counters.
    if (blocks_read_ != nullptr) blocks_read_->Increment(result->blocks_read);
  }
  return result;
}

Result<core::ProgressiveRangeResult> ShardedCatalog::QueryRangeProgressive(
    GlobalSessionId id, size_t channel, size_t first_frame, size_t last_frame,
    const core::ProgressiveObserver& observer,
    const std::function<void()>& on_shard_locked) const {
  const Shard* shard = ShardFor(id);
  if (shard == nullptr) {
    return Status::NotFound(
        "ShardedCatalog::QueryRangeProgressive: no such shard");
  }
  auto start = std::chrono::steady_clock::now();
  Result<core::ProgressiveRangeResult> result =
      [&]() -> Result<core::ProgressiveRangeResult> {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    if (on_shard_locked) on_shard_locked();
    return shard->system.QueryRangeProgressive(LocalId(id), channel,
                                               first_frame, last_frame,
                                               observer);
  }();
  if (result.ok()) {
    if (query_count_ != nullptr) query_count_->Increment();
    if (query_latency_ms_ != nullptr) query_latency_ms_->Record(MsSince(start));
    if (blocks_read_ != nullptr && !result->steps.empty()) {
      blocks_read_->Increment(result->steps.back().blocks_read);
    }
  }
  return result;
}

std::vector<core::SessionInfo> ShardedCatalog::ListSessions() const {
  std::vector<core::SessionInfo> out;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    std::vector<core::SessionInfo> sessions = shard->system.ListSessions();
    out.insert(out.end(), sessions.begin(), sessions.end());
  }
  return out;
}

size_t ShardedCatalog::total_sessions() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->system.ListSessions().size();
  }
  return total;
}

storage::BlockDevice* ShardedCatalog::mutable_shard_device(size_t shard) {
  AIMS_CHECK(shard < shards_.size());
  return shards_[shard]->system.mutable_device();
}

storage::BlockCache* ShardedCatalog::mutable_shard_cache(size_t shard) {
  AIMS_CHECK(shard < shards_.size());
  return shards_[shard]->system.mutable_block_cache();
}

obs::WalStats ShardedCatalog::TotalWalStats() const {
  obs::WalStats total;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total.Accumulate(shard->system.WalStats());
  }
  return total;
}

obs::CacheStats ShardedCatalog::TotalCacheStats() const {
  obs::CacheStats total;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    const storage::BlockCache* cache = shard->system.block_cache();
    if (cache != nullptr) total.Accumulate(cache->Stats());
  }
  return total;
}

size_t ShardedCatalog::total_blocks_read() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->system.device().reads();
  }
  return total;
}

size_t ShardedCatalog::total_blocks_written() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->system.device().writes();
  }
  return total;
}

Result<core::QueryPlan> ShardedCatalog::PlanRangeQuery(GlobalSessionId id,
                                                       size_t channel,
                                                       size_t first_frame,
                                                       size_t last_frame) const {
  const Shard* shard = ShardFor(id);
  if (shard == nullptr) {
    return Status::NotFound("ShardedCatalog::PlanRangeQuery: no such shard");
  }
  std::shared_lock<std::shared_mutex> lock(shard->mutex);
  AIMS_ASSIGN_OR_RETURN(core::QueryPlan plan,
                        shard->system.PlanRangeQuery(LocalId(id), channel,
                                                     first_frame, last_frame));
  plan.session = id;
  return plan;
}

}  // namespace aims::server
