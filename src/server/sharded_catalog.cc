#include "server/sharded_catalog.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/macros.h"

namespace aims::server {

namespace {

/// Milliseconds elapsed since \p start.
double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Low 48 bits of an opaque id — the monotone mint counter (the high 16
/// carry the routing epoch at mint time, provenance only).
constexpr uint64_t kCounterMask = 0xffffffffffffull;

// ---- Routing-journal record encoding -------------------------------------
// One catalog blob per mutation, framed by the WriteAheadLog exactly like
// the shards' own catalog records (host byte order):
//   type u8, then the type's fixed-width fields.

enum RouteRecordType : uint8_t {
  kRouteAdd = 1,        // u64 gid, u64 client, u32 shard, u32 local
  kMigrationBegin = 2,  // u64 client, u32 target
  kRouteMove = 3,       // u64 gid, u32 target shard, u32 target local
  kMigrationCommit = 4, // u64 client, u32 target
};

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

std::vector<uint8_t> EncodeRouteAdd(GlobalSessionId id, ClientId client,
                                    size_t shard, core::SessionId local) {
  std::vector<uint8_t> blob;
  blob.push_back(kRouteAdd);
  PutU64(&blob, id);
  PutU64(&blob, client);
  PutU32(&blob, static_cast<uint32_t>(shard));
  PutU32(&blob, static_cast<uint32_t>(local));
  return blob;
}

std::vector<uint8_t> EncodeMigrationBegin(ClientId client, size_t target) {
  std::vector<uint8_t> blob;
  blob.push_back(kMigrationBegin);
  PutU64(&blob, client);
  PutU32(&blob, static_cast<uint32_t>(target));
  return blob;
}

std::vector<uint8_t> EncodeRouteMove(GlobalSessionId id, size_t target_shard,
                                     core::SessionId target_local) {
  std::vector<uint8_t> blob;
  blob.push_back(kRouteMove);
  PutU64(&blob, id);
  PutU32(&blob, static_cast<uint32_t>(target_shard));
  PutU32(&blob, static_cast<uint32_t>(target_local));
  return blob;
}

std::vector<uint8_t> EncodeMigrationCommit(ClientId client, size_t target) {
  std::vector<uint8_t> blob;
  blob.push_back(kMigrationCommit);
  PutU64(&blob, client);
  PutU32(&blob, static_cast<uint32_t>(target));
  return blob;
}

/// Bumps the shard's queue-depth gauge for the duration of one operation
/// (waiting for the lock counts — that is what queue depth means).
struct ShardOpScope {
  explicit ShardOpScope(std::atomic<int64_t>& depth) : depth_(depth) {
    depth_.fetch_add(1, std::memory_order_relaxed);
  }
  ~ShardOpScope() { depth_.fetch_sub(1, std::memory_order_relaxed); }
  std::atomic<int64_t>& depth_;
};

}  // namespace

/// RAII in-flight-ingest marker. Opens BEFORE placement resolves; the
/// migrator pins the tenant first and then waits for the gate to drain, so
/// every ingest that resolved placement pre-pin has registered its route
/// by the time the migrator enumerates the tenant's sessions.
class ShardedCatalog::IngestGate {
 public:
  IngestGate(ShardedCatalog* catalog, ClientId client)
      : catalog_(catalog), client_(client) {
    std::lock_guard<std::mutex> lock(catalog_->inflight_mutex_);
    ++catalog_->inflight_[client_];
  }
  ~IngestGate() {
    {
      std::lock_guard<std::mutex> lock(catalog_->inflight_mutex_);
      auto it = catalog_->inflight_.find(client_);
      if (it != catalog_->inflight_.end() && --it->second == 0) {
        catalog_->inflight_.erase(it);
      }
    }
    catalog_->inflight_cv_.notify_all();
  }
  IngestGate(const IngestGate&) = delete;
  IngestGate& operator=(const IngestGate&) = delete;

 private:
  ShardedCatalog* catalog_;
  ClientId client_;
};

ShardedCatalog::ShardedCatalog(size_t num_shards, core::AimsConfig config,
                               MetricsRegistry* metrics,
                               ShardRouterConfig router_config)
    : config_(config),
      router_(std::make_unique<ShardRouter>(num_shards, router_config)) {
  AIMS_CHECK(num_shards >= 1);
  std::vector<double> lock_bounds = MetricsRegistry::DefaultLatencyBoundsMs();
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    // Every shard gets its own durable store (its own page file + WAL)
    // under the configured base path, so per-shard commits never contend
    // on one log file and recovery parallelizes naturally by shard.
    core::AimsConfig shard_config = config;
    if (!shard_config.durability.path.empty()) {
      shard_config.durability.path += "/shard_" + std::to_string(i);
    }
    shards_.push_back(std::make_unique<Shard>(shard_config, lock_bounds));
    shards_.back()->wal_lag.store(
        shards_.back()->system.WalStats().lag_bytes,
        std::memory_order_relaxed);
  }
  if (durable()) {
    // The shards have recovered their own stores; now recover the route
    // table that makes their sessions addressable.
    journal_status_ = OpenAndReplayJournal(config_.durability.path);
  }
  if (metrics != nullptr) {
    ingest_count_ = metrics->GetCounter("catalog.ingest.count");
    query_count_ = metrics->GetCounter("catalog.query.count");
    blocks_read_ = metrics->GetCounter("catalog.query.blocks_read");
    ingest_latency_ms_ = metrics->GetHistogram(
        "catalog.ingest.latency_ms", MetricsRegistry::DefaultLatencyBoundsMs());
    query_latency_ms_ = metrics->GetHistogram(
        "catalog.query.latency_ms", MetricsRegistry::DefaultLatencyBoundsMs());
    // Max-over-shards lock-wait p99 in MICROseconds (integer gauges would
    // flatten sub-ms waits to zero in ms) — the StatsReporter's shard-
    // health input.
    shard_lock_p99_gauge_ = metrics->GetGauge("catalog.shard_lock_p99_us");
    if (durable()) {
      wal_lag_gauge_ = metrics->GetGauge("storage.wal_lag_bytes");
      PublishWalLag();
    }
  }
}

ShardedCatalog::~ShardedCatalog() = default;

Status ShardedCatalog::init_status() const {
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    AIMS_RETURN_NOT_OK(shard->system.init_status());
  }
  return journal_status_;
}

bool ShardedCatalog::durable() const {
  // All shards share one config, so the first answers for every one.
  return shards_.front()->system.durable();
}

void ShardedCatalog::PublishWalLag() {
  if (wal_lag_gauge_ == nullptr) return;
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->wal_lag.load(std::memory_order_relaxed);
  }
  wal_lag_gauge_->Set(static_cast<int64_t>(total));
}

void ShardedCatalog::PublishShardHealth() {
  if (shard_lock_p99_gauge_ == nullptr) return;
  double max_p99_ms = 0.0;
  for (const auto& shard : shards_) {
    max_p99_ms = std::max(max_p99_ms, shard->lock_wait_ms.ApproxQuantile(0.99));
  }
  shard_lock_p99_gauge_->Set(static_cast<int64_t>(max_p99_ms * 1000.0 + 0.5));
}

GlobalSessionId ShardedCatalog::MintSessionId() {
  uint64_t counter =
      next_session_counter_.fetch_add(1, std::memory_order_relaxed);
  uint64_t epoch = router_->epoch() & 0xffffull;
  return (epoch << 48) | (counter & kCounterMask);
}

void ShardedCatalog::RegisterRoute(GlobalSessionId id, ClientId client,
                                   size_t shard, core::SessionId local) {
  std::unique_lock<std::shared_mutex> lock(routes_mutex_);
  Route route;
  route.client = client;
  route.shard = static_cast<uint32_t>(shard);
  route.local = local;
  routes_[id] = route;
  client_sessions_[client].push_back(id);
}

Result<ShardedCatalog::Route> ShardedCatalog::FindRoute(
    GlobalSessionId id) const {
  std::shared_lock<std::shared_mutex> lock(routes_mutex_);
  auto it = routes_.find(id);
  if (it == routes_.end()) {
    return Status::NotFound("ShardedCatalog: unknown session id");
  }
  return it->second;
}

template <typename Fn>
auto ShardedCatalog::ReadOnShard(const Shard& shard, Fn&& fn) const {
  ShardOpScope scope(shard.active_ops);
  auto wait_start = std::chrono::steady_clock::now();
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  shard.lock_wait_ms.Record(MsSince(wait_start));
  return fn(shard.system);
}

// ---- Ingest ---------------------------------------------------------------

Result<GlobalSessionId> ShardedCatalog::Ingest(
    ClientId client, const std::string& name,
    const streams::Recording& recording, obs::Trace* trace,
    IngestIoStats* io_stats) {
  if (durable() && !journal_status_.ok()) return journal_status_;
  IngestGate gate(this, client);
  size_t shard_index = router_->ShardForClient(client);
  Shard& shard = *shards_[shard_index];
  auto start = std::chrono::steady_clock::now();
  std::vector<core::StandingRangeUpdate> updates;
  Result<core::SessionId> local = IngestOnShard(
      shard, name, recording, trace, io_stats,
      ingest_hook_ != nullptr ? &updates : nullptr);
  AIMS_RETURN_NOT_OK(local.status());
  GlobalSessionId id = MintSessionId();
  // The route must be durable before the ingest is acknowledged: an acked
  // session that recovery cannot address again would be a lost ack.
  AIMS_RETURN_NOT_OK(JournalRouteAdd(id, client, shard_index, *local));
  RegisterRoute(id, client, shard_index, *local);
  // Continuous aggregates learn the new session only after it is routed
  // and durable; no shard lock is held here, so the hook may take the
  // registry's own lock freely.
  if (ingest_hook_ != nullptr && !updates.empty()) {
    ingest_hook_(id, client, updates);
  }
  shard.ingests.fetch_add(1, std::memory_order_relaxed);
  if (ingest_count_ != nullptr) ingest_count_->Increment();
  if (ingest_latency_ms_ != nullptr) ingest_latency_ms_->Record(MsSince(start));
  PublishShardHealth();
  return id;
}

void ShardedCatalog::SetStandingQueries(
    const std::vector<core::StandingRangeQuery>& queries) {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->mutex);
    shard->system.SetStandingQueries(queries);
  }
}

Result<core::SessionId> ShardedCatalog::IngestOnShard(
    Shard& shard, const std::string& name,
    const streams::Recording& recording, obs::Trace* trace,
    IngestIoStats* io_stats, std::vector<core::StandingRangeUpdate>* updates) {
  // durable() reads a pointer set once at construction — safe lock-free.
  return shard.system.durable()
             ? IngestDurable(shard, name, recording, trace, io_stats, updates)
             : IngestInMemory(shard, name, recording, trace, io_stats, updates);
}

Result<core::SessionId> ShardedCatalog::IngestInMemory(
    Shard& shard, const std::string& name,
    const streams::Recording& recording, obs::Trace* trace,
    IngestIoStats* io_stats, std::vector<core::StandingRangeUpdate>* updates) {
  ShardOpScope scope(shard.active_ops);
  size_t lock_span = 0;
  if (trace != nullptr) lock_span = trace->BeginSpan("shard_lock");
  auto wait_start = std::chrono::steady_clock::now();
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  shard.lock_wait_ms.Record(MsSince(wait_start));
  if (trace != nullptr) trace->EndSpan(lock_span);
  // Writes are serialized by the exclusive lock, so the device's write-
  // counter delta across this ingest is attributable to it exactly.
  // io_stats is filled whatever the outcome: a fault mid-ingest has
  // already performed (and charged) its writes, and the tenant's ledger
  // must reflect them.
  const size_t writes_before = shard.system.device().writes();
  Result<core::SessionId> result =
      shard.system.IngestRecording(name, recording, trace, updates);
  if (io_stats != nullptr) {
    io_stats->blocks_written = shard.system.device().writes() - writes_before;
    io_stats->bytes_written =
        io_stats->blocks_written * config_.block_size_bytes;
  }
  return result;
}

Result<core::SessionId> ShardedCatalog::IngestDurable(
    Shard& shard, const std::string& name,
    const streams::Recording& recording, obs::Trace* trace,
    IngestIoStats* io_stats, std::vector<core::StandingRangeUpdate>* updates) {
  if (io_stats != nullptr) *io_stats = IngestIoStats{};
  ShardOpScope scope(shard.active_ops);
  core::AimsSystem::StagedIngest staged;
  {
    size_t lock_span = 0;
    if (trace != nullptr) lock_span = trace->BeginSpan("shard_lock");
    auto wait_start = std::chrono::steady_clock::now();
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    shard.lock_wait_ms.Record(MsSince(wait_start));
    if (trace != nullptr) trace->EndSpan(lock_span);
    // Failed staging performs no device writes (the dirty pages are
    // dropped from the buffer pool), so io_stats stays zero on error.
    AIMS_ASSIGN_OR_RETURN(staged, shard.system.IngestRecordingStaged(
                                      name, recording, trace, updates));
  }
  // The sync wait runs with the shard lock RELEASED: concurrent ingests
  // into this shard reach their own WaitDurable and share one group-commit
  // fsync instead of serializing syncs behind the exclusive lock.
  size_t sync_span = 0;
  if (trace != nullptr) sync_span = trace->BeginSpan("wal_sync");
  Status durable = shard.system.WaitDurable(staged);
  if (trace != nullptr) trace->EndSpan(sync_span);
  // Not durable -> not acknowledged. The WAL's sync error is sticky, so
  // the shard refuses further commits rather than silently degrading.
  AIMS_RETURN_NOT_OK(durable);
  {
    size_t lock_span = 0;
    if (trace != nullptr) lock_span = trace->BeginSpan("shard_apply_lock");
    auto wait_start = std::chrono::steady_clock::now();
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    shard.lock_wait_ms.Record(MsSince(wait_start));
    if (trace != nullptr) trace->EndSpan(lock_span);
    AIMS_RETURN_NOT_OK(shard.system.ApplyDurable(staged));
    shard.wal_lag.store(shard.system.WalStats().lag_bytes,
                        std::memory_order_relaxed);
  }
  // Staged ingests attribute I/O by their own block list, not a counter
  // delta: another ingest's write-back may run between the two exclusive
  // sections, and a delta would cross-charge tenants.
  if (io_stats != nullptr) {
    io_stats->blocks_written = staged.blocks.size();
    io_stats->bytes_written = staged.blocks.size() * config_.block_size_bytes;
  }
  PublishWalLag();
  return staged.id;
}

// ---- Reads (dual-read aware) ----------------------------------------------

Result<core::SessionInfo> ShardedCatalog::GetSession(GlobalSessionId id) const {
  AIMS_ASSIGN_OR_RETURN(Route route, FindRoute(id));
  Result<core::SessionInfo> result = ReadOnShard(
      *shards_[route.shard],
      [&](const core::AimsSystem& sys) { return sys.GetSession(route.local); });
  if (!result.ok() && route.dual) {
    result = ReadOnShard(*shards_[route.fallback_shard],
                         [&](const core::AimsSystem& sys) {
                           return sys.GetSession(route.fallback_local);
                         });
  }
  return result;
}

Result<std::vector<double>> ShardedCatalog::ReadChannel(GlobalSessionId id,
                                                        size_t channel) const {
  AIMS_ASSIGN_OR_RETURN(Route route, FindRoute(id));
  auto start = std::chrono::steady_clock::now();
  Result<std::vector<double>> result =
      ReadOnShard(*shards_[route.shard], [&](const core::AimsSystem& sys) {
        return sys.ReadChannel(route.local, channel);
      });
  if (!result.ok() && route.dual) {
    result = ReadOnShard(*shards_[route.fallback_shard],
                         [&](const core::AimsSystem& sys) {
                           return sys.ReadChannel(route.fallback_local,
                                                  channel);
                         });
  }
  if (result.ok()) {
    shards_[route.shard]->queries.fetch_add(1, std::memory_order_relaxed);
    if (query_count_ != nullptr) query_count_->Increment();
    if (query_latency_ms_ != nullptr) query_latency_ms_->Record(MsSince(start));
  }
  return result;
}

Result<core::RangeStatistics> ShardedCatalog::QueryRange(
    GlobalSessionId id, size_t channel, size_t first_frame,
    size_t last_frame) const {
  AIMS_ASSIGN_OR_RETURN(Route route, FindRoute(id));
  auto start = std::chrono::steady_clock::now();
  Result<core::RangeStatistics> result =
      ReadOnShard(*shards_[route.shard], [&](const core::AimsSystem& sys) {
        return sys.QueryRange(route.local, channel, first_frame, last_frame);
      });
  if (!result.ok() && route.dual) {
    result = ReadOnShard(
        *shards_[route.fallback_shard], [&](const core::AimsSystem& sys) {
          return sys.QueryRange(route.fallback_local, channel, first_frame,
                                last_frame);
        });
  }
  if (result.ok()) {
    shards_[route.shard]->queries.fetch_add(1, std::memory_order_relaxed);
    if (query_count_ != nullptr) query_count_->Increment();
    if (query_latency_ms_ != nullptr) query_latency_ms_->Record(MsSince(start));
    // Note: under concurrency RangeStatistics::blocks_read is a device-
    // level delta and may include reads issued by overlapping queries on
    // the same shard — treat both it and this counter as approximate;
    // total_blocks_read() reads the exact device counters.
    if (blocks_read_ != nullptr) blocks_read_->Increment(result->blocks_read);
  }
  return result;
}

Result<core::ProgressiveRangeResult> ShardedCatalog::QueryRangeProgressive(
    GlobalSessionId id, size_t channel, size_t first_frame, size_t last_frame,
    const core::ProgressiveObserver& observer,
    const std::function<void()>& on_shard_locked) const {
  AIMS_ASSIGN_OR_RETURN(Route route, FindRoute(id));
  auto start = std::chrono::steady_clock::now();
  Result<core::ProgressiveRangeResult> result =
      ReadOnShard(*shards_[route.shard], [&](const core::AimsSystem& sys) {
        if (on_shard_locked) on_shard_locked();
        return sys.QueryRangeProgressive(route.local, channel, first_frame,
                                         last_frame, observer);
      });
  if (!result.ok() && route.dual) {
    result = ReadOnShard(
        *shards_[route.fallback_shard], [&](const core::AimsSystem& sys) {
          if (on_shard_locked) on_shard_locked();
          return sys.QueryRangeProgressive(route.fallback_local, channel,
                                           first_frame, last_frame, observer);
        });
  }
  if (result.ok()) {
    shards_[route.shard]->queries.fetch_add(1, std::memory_order_relaxed);
    if (query_count_ != nullptr) query_count_->Increment();
    if (query_latency_ms_ != nullptr) query_latency_ms_->Record(MsSince(start));
    if (blocks_read_ != nullptr && !result->steps.empty()) {
      blocks_read_->Increment(result->steps.back().blocks_read);
    }
  }
  return result;
}

Result<core::QueryPlan> ShardedCatalog::PlanRangeQuery(GlobalSessionId id,
                                                       size_t channel,
                                                       size_t first_frame,
                                                       size_t last_frame) const {
  AIMS_ASSIGN_OR_RETURN(Route route, FindRoute(id));
  Result<core::QueryPlan> plan =
      ReadOnShard(*shards_[route.shard], [&](const core::AimsSystem& sys) {
        return sys.PlanRangeQuery(route.local, channel, first_frame,
                                  last_frame);
      });
  if (!plan.ok() && route.dual) {
    plan = ReadOnShard(
        *shards_[route.fallback_shard], [&](const core::AimsSystem& sys) {
          return sys.PlanRangeQuery(route.fallback_local, channel, first_frame,
                                    last_frame);
        });
  }
  AIMS_RETURN_NOT_OK(plan.status());
  plan->session = id;
  return plan;
}

// ---- Catalog-wide introspection -------------------------------------------

std::vector<CatalogSessionEntry> ShardedCatalog::ListSessions() const {
  std::vector<std::pair<GlobalSessionId, Route>> snapshot;
  {
    std::shared_lock<std::shared_mutex> lock(routes_mutex_);
    snapshot.assign(routes_.begin(), routes_.end());
  }
  // Mint-counter order == ingest order (the epoch bits in the high word
  // are provenance, not ordering).
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auto& a, const auto& b) {
              return (a.first & kCounterMask) < (b.first & kCounterMask);
            });
  std::vector<CatalogSessionEntry> out;
  out.reserve(snapshot.size());
  for (const auto& [id, route] : snapshot) {
    Result<core::SessionInfo> info = ReadOnShard(
        *shards_[route.shard], [&](const core::AimsSystem& sys) {
          return sys.GetSession(route.local);
        });
    if (!info.ok() && route.dual) {
      info = ReadOnShard(*shards_[route.fallback_shard],
                         [&](const core::AimsSystem& sys) {
                           return sys.GetSession(route.fallback_local);
                         });
    }
    if (!info.ok()) continue;  // defensive: routes never dangle by design
    CatalogSessionEntry entry;
    entry.id = id;
    entry.client = route.client;
    entry.info = *info;
    out.push_back(std::move(entry));
  }
  return out;
}

size_t ShardedCatalog::total_sessions() const {
  std::shared_lock<std::shared_mutex> lock(routes_mutex_);
  return routes_.size();
}

// ---- Raw-sample lifecycle ---------------------------------------------------

Result<std::vector<storage::tslife::SegmentMeta>> ShardedCatalog::ListSegments(
    GlobalSessionId id) const {
  AIMS_ASSIGN_OR_RETURN(Route route, FindRoute(id));
  Result<std::vector<storage::tslife::SegmentMeta>> result = ReadOnShard(
      *shards_[route.shard], [&](const core::AimsSystem& sys) {
        return sys.ListSegments(route.local);
      });
  if (!result.ok() && route.dual) {
    result = ReadOnShard(*shards_[route.fallback_shard],
                         [&](const core::AimsSystem& sys) {
                           return sys.ListSegments(route.fallback_local);
                         });
  }
  return result;
}

Result<std::vector<gorilla::Sample>> ShardedCatalog::ReadRawSamples(
    GlobalSessionId id, size_t channel) const {
  AIMS_ASSIGN_OR_RETURN(Route route, FindRoute(id));
  Result<std::vector<gorilla::Sample>> result = ReadOnShard(
      *shards_[route.shard], [&](const core::AimsSystem& sys) {
        return sys.ReadRawSamples(route.local, channel);
      });
  if (!result.ok() && route.dual) {
    result = ReadOnShard(*shards_[route.fallback_shard],
                         [&](const core::AimsSystem& sys) {
                           return sys.ReadRawSamples(route.fallback_local,
                                                     channel);
                         });
  }
  return result;
}

size_t ShardedCatalog::TotalSegmentBytes() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += ReadOnShard(*shard, [](const core::AimsSystem& sys) {
      return sys.SegmentBytes();
    });
  }
  return total;
}

Result<storage::tslife::SweepStats> ShardedCatalog::SweepRetention(
    const TenantRetentionPolicies& policies, int64_t now_us) {
  // Snapshot which local sessions belong to override clients, per shard.
  // The route table is the authority; local sessions with no route (e.g.
  // migrated-away source copies) fall through to the default policy.
  std::vector<std::unordered_map<ClientId, std::vector<core::SessionId>>>
      override_groups(shards_.size());
  if (!policies.overrides.empty()) {
    std::shared_lock<std::shared_mutex> lock(routes_mutex_);
    for (const auto& [id, route] : routes_) {
      (void)id;
      if (policies.overrides.count(route.client) == 0) continue;
      override_groups[route.shard][route.client].push_back(route.local);
      if (route.dual) {
        override_groups[route.fallback_shard][route.client].push_back(
            route.fallback_local);
      }
    }
  }
  storage::tslife::SweepStats stats;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    ShardOpScope scope(shard.active_ops);
    auto wait_start = std::chrono::steady_clock::now();
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    shard.lock_wait_ms.Record(MsSince(wait_start));
    std::vector<bool> overridden(shard.system.ListSessions().size(), false);
    for (const auto& [client, locals] : override_groups[i]) {
      for (const core::SessionId sid : locals) {
        if (sid < overridden.size()) overridden[sid] = true;
      }
      AIMS_ASSIGN_OR_RETURN(
          storage::tslife::SweepStats shard_stats,
          shard.system.SweepRetention(policies.overrides.at(client), now_us,
                                      &locals));
      stats.Merge(shard_stats);
    }
    std::vector<core::SessionId> rest;
    rest.reserve(overridden.size());
    for (core::SessionId sid = 0; sid < overridden.size(); ++sid) {
      if (!overridden[sid]) rest.push_back(sid);
    }
    AIMS_ASSIGN_OR_RETURN(
        storage::tslife::SweepStats shard_stats,
        shard.system.SweepRetention(policies.default_policy, now_us, &rest));
    stats.Merge(shard_stats);
    if (shard.system.durable()) {
      shard.wal_lag.store(shard.system.WalStats().lag_bytes,
                          std::memory_order_relaxed);
    }
  }
  PublishWalLag();
  return stats;
}

void ShardedCatalog::SetWalWatchdog(obs::Watchdog::Handle* handle) {
  for (const auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->mutex);
    shard->system.SetWalWatchdog(handle);
  }
  if (journal_ != nullptr) journal_->SetWatchdog(handle);
}

obs::WalStats ShardedCatalog::TotalWalStats() const {
  obs::WalStats total;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total.Accumulate(shard->system.WalStats());
  }
  return total;
}

obs::CacheStats ShardedCatalog::TotalCacheStats() const {
  obs::CacheStats total;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    const storage::BlockCache* cache = shard->system.block_cache();
    if (cache != nullptr) total.Accumulate(cache->Stats());
  }
  return total;
}

size_t ShardedCatalog::total_blocks_read() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->system.device().reads();
  }
  return total;
}

size_t ShardedCatalog::total_blocks_written() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->system.device().writes();
  }
  return total;
}

std::vector<obs::ShardStatsEntry> ShardedCatalog::ShardStats() const {
  std::vector<obs::ShardStatsEntry> out(shards_.size());
  {
    std::shared_lock<std::shared_mutex> lock(routes_mutex_);
    std::vector<std::unordered_set<ClientId>> tenants(shards_.size());
    for (const auto& [id, route] : routes_) {
      (void)id;
      out[route.shard].sessions += 1;
      tenants[route.shard].insert(route.client);
    }
    for (size_t i = 0; i < shards_.size(); ++i) {
      out[i].tenants = tenants[i].size();
    }
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    out[i].shard = i;
    out[i].ingests = shard.ingests.load(std::memory_order_relaxed);
    out[i].queries = shard.queries.load(std::memory_order_relaxed);
    out[i].lock_wait_p50_ms = shard.lock_wait_ms.ApproxQuantile(0.5);
    out[i].lock_wait_p99_ms = shard.lock_wait_ms.ApproxQuantile(0.99);
    out[i].wal_lag_bytes = shard.wal_lag.load(std::memory_order_relaxed);
    out[i].queue_depth = shard.active_ops.load(std::memory_order_relaxed);
  }
  // Snapshotting health is the natural point to refresh the gauge the
  // reporter watches.
  const_cast<ShardedCatalog*>(this)->PublishShardHealth();
  return out;
}

// ---- Typed admin surface ---------------------------------------------------

Result<AdminFaultResponse> ShardedCatalog::ApplyFault(
    const AdminFaultRequest& request) {
  if (request.shard >= shards_.size()) {
    return Status::InvalidArgument("ApplyFault: no such shard");
  }
  storage::BlockDevice* device = shards_[request.shard]->system.mutable_device();
  // Reset first: it also clears pending faults, so reset+arm in one
  // request behaves as "clean slate, then arm".
  if (request.reset_counters) device->ResetCounters();
  if (request.clear_faults) {
    device->FailNextReads(0);
    device->FailNextWrites(0);
  }
  if (request.fail_next_reads > 0) device->FailNextReads(request.fail_next_reads);
  if (request.fail_next_writes > 0) {
    device->FailNextWrites(request.fail_next_writes);
  }
  AdminFaultResponse response;
  response.shard = request.shard;
  return response;
}

Result<ClearCacheResponse> ShardedCatalog::ClearCache(
    const ClearCacheRequest& request) {
  ClearCacheResponse response;
  auto clear_one = [&](size_t i) {
    storage::BlockCache* cache = shards_[i]->system.mutable_block_cache();
    if (cache != nullptr) {
      cache->Clear();
      ++response.shards_cleared;
    }
  };
  if (request.shard.has_value()) {
    if (*request.shard >= shards_.size()) {
      return Status::InvalidArgument("ClearCache: no such shard");
    }
    clear_one(*request.shard);
  } else {
    for (size_t i = 0; i < shards_.size(); ++i) clear_one(i);
  }
  return response;
}

storage::BlockDevice* ShardedCatalog::mutable_shard_device(size_t shard) {
  AIMS_CHECK(shard < shards_.size());
  return shards_[shard]->system.mutable_device();
}

storage::BlockCache* ShardedCatalog::mutable_shard_cache(size_t shard) {
  AIMS_CHECK(shard < shards_.size());
  return shards_[shard]->system.mutable_block_cache();
}

// ---- Live migration --------------------------------------------------------

Result<std::vector<GlobalSessionId>> ShardedCatalog::BeginTenantMigration(
    ClientId client, size_t target_shard) {
  if (target_shard >= shards_.size()) {
    return Status::InvalidArgument("BeginTenantMigration: no such shard");
  }
  if (durable() && !journal_status_.ok()) return journal_status_;
  // Pin first: every ingest that resolves placement from here on lands on
  // the target. Then journal the begin record, so recovery knows the
  // target shard may hold partial copies.
  router_->SetPin(client, target_shard);
  Status journaled = JournalMigrationBegin(client, target_shard);
  if (!journaled.ok()) {
    router_->ClearPin(client);
    return journaled;
  }
  // Wait out ingests that resolved placement before the pin. They are
  // acknowledged normally (redirected-in-time or drained, never dropped);
  // after the drain the tenant's session set is stable under this
  // enumeration.
  {
    std::unique_lock<std::mutex> lock(inflight_mutex_);
    inflight_cv_.wait(lock, [&] {
      return inflight_.find(client) == inflight_.end();
    });
  }
  std::vector<GlobalSessionId> to_move;
  {
    std::shared_lock<std::shared_mutex> lock(routes_mutex_);
    auto it = client_sessions_.find(client);
    if (it != client_sessions_.end()) {
      for (GlobalSessionId id : it->second) {
        if (routes_.at(id).shard != target_shard) to_move.push_back(id);
      }
    }
  }
  return to_move;
}

Status ShardedCatalog::MigrateSession(GlobalSessionId id, size_t target_shard) {
  if (target_shard >= shards_.size()) {
    return Status::InvalidArgument("MigrateSession: no such shard");
  }
  AIMS_ASSIGN_OR_RETURN(Route route, FindRoute(id));
  if (route.shard == target_shard) return Status::OK();
  // 1. Materialize the source copy under the source's SHARED lock —
  //    concurrent queries keep running against it throughout.
  Shard& source = *shards_[route.shard];
  std::string name;
  Result<streams::Recording> materialized = ReadOnShard(
      source, [&](const core::AimsSystem& sys) -> Result<streams::Recording> {
        AIMS_ASSIGN_OR_RETURN(core::SessionInfo info,
                              sys.GetSession(route.local));
        name = info.name;
        return sys.MaterializeSession(route.local);
      });
  AIMS_RETURN_NOT_OK(materialized.status());
  // 2. Ingest the copy into the target. On the durable backend this is the
  //    full staged WAL protocol: the copy is on stable storage before we
  //    proceed. No catalog metrics, no tenant attribution — migration is an
  //    infrastructure move, not tenant activity.
  AIMS_ASSIGN_OR_RETURN(
      core::SessionId target_local,
      IngestOnShard(*shards_[target_shard], name, *materialized,
                    /*trace=*/nullptr, /*io_stats=*/nullptr));
  // 2b. Carry the sealed raw segments over verbatim. The target's ingest
  //     rebuilt tier-0 segments from the materialized samples, but the
  //     source may hold downsampled tiers (tier/decimation/NMSE metadata)
  //     and the raw tier must stay bit-exact across moves — so the copied
  //     segments replace the rebuilt ones wholesale.
  Result<std::vector<storage::tslife::Segment>> segments = ReadOnShard(
      source, [&](const core::AimsSystem& sys) {
        return sys.ExportSegments(route.local);
      });
  AIMS_RETURN_NOT_OK(segments.status());
  {
    Shard& target = *shards_[target_shard];
    ShardOpScope scope(target.active_ops);
    auto wait_start = std::chrono::steady_clock::now();
    std::unique_lock<std::shared_mutex> lock(target.mutex);
    target.lock_wait_ms.Record(MsSince(wait_start));
    AIMS_RETURN_NOT_OK(
        target.system.ReplaceSegments(target_local, std::move(*segments)));
  }
  // 3. Journal the owner flip. Once this record is durable, recovery
  //    resolves the session to the target — and only then does the live
  //    route flip, so crash-before and crash-after both leave exactly one
  //    owner.
  AIMS_RETURN_NOT_OK(JournalRouteMove(id, target_shard, target_local));
  // 4. Enter the dual-read window: primary = target, fallback = source.
  {
    std::unique_lock<std::shared_mutex> lock(routes_mutex_);
    auto it = routes_.find(id);
    if (it == routes_.end()) {
      return Status::NotFound("MigrateSession: route vanished mid-migration");
    }
    Route& live = it->second;
    live.fallback_shard = live.shard;
    live.fallback_local = live.local;
    live.shard = static_cast<uint32_t>(target_shard);
    live.local = target_local;
    live.dual = true;
  }
  return Status::OK();
}

Status ShardedCatalog::CommitTenantMigration(ClientId client,
                                             size_t target_shard) {
  // Atomic routing flip: close every dual-read window of the tenant in one
  // exclusive critical section — after this, reads resolve to the target
  // only and the source copies are unreachable (logical source cleanup;
  // physical block reclamation is a compaction concern, not a routing one).
  {
    std::unique_lock<std::shared_mutex> lock(routes_mutex_);
    auto it = client_sessions_.find(client);
    if (it != client_sessions_.end()) {
      for (GlobalSessionId id : it->second) {
        Route& route = routes_.at(id);
        route.dual = false;
        route.fallback_shard = 0;
        route.fallback_local = 0;
      }
    }
  }
  // The commit record makes the pin durable: recovery re-pins the tenant,
  // so post-restart ingests keep landing where the data lives.
  AIMS_RETURN_NOT_OK(JournalMigrationCommit(client, target_shard));
  router_->BumpEpoch();
  return Status::OK();
}

void ShardedCatalog::AbortTenantMigration(ClientId client) {
  // Already-moved sessions stay on the target (their copies are durable
  // and journaled there); just close the dual windows and drop the pin.
  {
    std::unique_lock<std::shared_mutex> lock(routes_mutex_);
    auto it = client_sessions_.find(client);
    if (it != client_sessions_.end()) {
      for (GlobalSessionId id : it->second) {
        Route& route = routes_.at(id);
        route.dual = false;
        route.fallback_shard = 0;
        route.fallback_local = 0;
      }
    }
  }
  router_->ClearPin(client);
}

// ---- Routing journal -------------------------------------------------------

Status ShardedCatalog::JournalAppend(const std::vector<uint8_t>& blob) {
  if (journal_ == nullptr) return Status::OK();
  AIMS_ASSIGN_OR_RETURN(uint64_t txn, journal_->BeginTxn());
  AIMS_RETURN_NOT_OK(journal_->AppendCatalog(txn, blob));
  // Commit = append + WaitDurable; concurrent journal commits share one
  // group-commit fsync like the shard WALs do.
  return journal_->Commit(txn);
}

Status ShardedCatalog::JournalRouteAdd(GlobalSessionId id, ClientId client,
                                       size_t shard, core::SessionId local) {
  return JournalAppend(EncodeRouteAdd(id, client, shard, local));
}

Status ShardedCatalog::JournalMigrationBegin(ClientId client,
                                             size_t target_shard) {
  return JournalAppend(EncodeMigrationBegin(client, target_shard));
}

Status ShardedCatalog::JournalRouteMove(GlobalSessionId id, size_t target_shard,
                                        core::SessionId target_local) {
  return JournalAppend(EncodeRouteMove(id, target_shard, target_local));
}

Status ShardedCatalog::JournalMigrationCommit(ClientId client,
                                              size_t target_shard) {
  return JournalAppend(EncodeMigrationCommit(client, target_shard));
}

Status ShardedCatalog::OpenAndReplayJournal(const std::string& base_path) {
  namespace durable = storage::durable;
  durable::WalConfig wal_config;
  wal_config.sync_mode = config_.durability.sync_mode;
  wal_config.group_commit_ms = config_.durability.group_commit_ms;
  wal_config.simulated_sync_ms = config_.durability.simulated_sync_ms;
  const std::string path = base_path + "/routes.wal";

  AIMS_ASSIGN_OR_RETURN(durable::WriteAheadLog::Opened opened,
                        durable::WriteAheadLog::Open(path, wal_config));

  // Replay. The journal is tiny relative to the shard WALs (fixed-width
  // routing records only), so a full linear replay at open is cheap.
  uint64_t max_counter = 0;
  // client -> targets of migrations that began and never committed. A
  // set, not a single slot: a tenant can crash one migration and later
  // start another — the first target's partial copies stay unowned
  // forever and must stay excluded from adoption on every future reopen.
  std::unordered_map<ClientId, std::set<size_t>> open_migrations;
  std::set<std::pair<uint32_t, core::SessionId>> moved_away;
  std::vector<std::pair<ClientId, size_t>> pins;
  for (const durable::RecoveredTxn& txn : opened.committed) {
    for (const std::vector<uint8_t>& blob : txn.catalog_blobs) {
      if (blob.empty()) continue;
      const uint8_t* p = blob.data() + 1;
      switch (blob[0]) {
        case kRouteAdd: {
          if (blob.size() < 1 + 8 + 8 + 4 + 4) break;
          GlobalSessionId id = GetU64(p);
          ClientId client = GetU64(p + 8);
          uint32_t shard = GetU32(p + 16);
          uint32_t local = GetU32(p + 20);
          if (shard >= shards_.size()) break;  // stale vs. shrunken topology
          Route route;
          route.client = client;
          route.shard = shard;
          route.local = static_cast<core::SessionId>(local);
          routes_[id] = route;
          max_counter = std::max(max_counter, id & kCounterMask);
          break;
        }
        case kMigrationBegin: {
          if (blob.size() < 1 + 8 + 4) break;
          open_migrations[GetU64(p)].insert(GetU32(p + 8));
          break;
        }
        case kRouteMove: {
          if (blob.size() < 1 + 8 + 4 + 4) break;
          GlobalSessionId id = GetU64(p);
          uint32_t target_shard = GetU32(p + 8);
          uint32_t target_local = GetU32(p + 12);
          if (target_shard >= shards_.size()) break;
          auto it = routes_.find(id);
          if (it == routes_.end()) break;
          // The source copy is superseded; remember it so orphan adoption
          // below does not resurrect it as a second owner.
          moved_away.insert({it->second.shard, it->second.local});
          it->second.shard = target_shard;
          it->second.local = static_cast<core::SessionId>(target_local);
          break;
        }
        case kMigrationCommit: {
          if (blob.size() < 1 + 8 + 4) break;
          ClientId client = GetU64(p);
          uint32_t target = GetU32(p + 8);
          // Only the committed target's copies became route-owned; an
          // earlier crashed migration's target (other set entries) keeps
          // its exclusion.
          auto open_it = open_migrations.find(client);
          if (open_it != open_migrations.end()) {
            open_it->second.erase(target);
            if (open_it->second.empty()) open_migrations.erase(open_it);
          }
          if (target < shards_.size()) pins.emplace_back(client, target);
          break;
        }
        default:
          break;  // forward-compatible: unknown record types are skipped
      }
    }
  }

  // Validate every recovered route against what shard recovery actually
  // restored; a route whose session is gone (deleted store, external
  // tampering) is dropped rather than left dangling.
  for (auto it = routes_.begin(); it != routes_.end();) {
    const Route& route = it->second;
    bool exists =
        shards_[route.shard]->system.GetSession(route.local).ok();
    it = exists ? std::next(it) : routes_.erase(it);
  }

  next_session_counter_.store(max_counter + 1, std::memory_order_relaxed);

  // Orphan adoption: a shard session with no durable route belongs to an
  // ingest that committed on the shard WAL but crashed before its route
  // record — it was never acknowledged. Adopt it under the lost-and-found
  // tenant (client 0) with a fresh id so the data stays reachable. Two
  // exclusions keep "exactly one owner" true: source copies superseded by
  // a RouteMove, and any shard that is the target of a migration that
  // began but never committed (its unreferenced sessions may be partial
  // copies of sessions the source still owns).
  std::unordered_set<size_t> open_targets;
  for (const auto& [client, targets] : open_migrations) {
    (void)client;
    open_targets.insert(targets.begin(), targets.end());
  }
  std::set<std::pair<uint32_t, core::SessionId>> referenced;
  for (const auto& [id, route] : routes_) {
    (void)id;
    referenced.insert({route.shard, route.local});
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (open_targets.count(i) != 0) continue;
    for (const core::SessionInfo& info : shards_[i]->system.ListSessions()) {
      std::pair<uint32_t, core::SessionId> key{static_cast<uint32_t>(i),
                                               info.id};
      if (referenced.count(key) != 0 || moved_away.count(key) != 0) continue;
      GlobalSessionId id = MintSessionId();
      Route route;
      route.client = 0;
      route.shard = static_cast<uint32_t>(i);
      route.local = info.id;
      routes_[id] = route;
    }
  }

  // Restore pins (each bump advances the epoch past every committed
  // migration's generation).
  for (const auto& [client, target] : pins) router_->SetPin(client, target);

  // Rebuild the by-client index in mint order.
  std::vector<std::pair<GlobalSessionId, const Route*>> ordered;
  ordered.reserve(routes_.size());
  for (const auto& [id, route] : routes_) ordered.emplace_back(id, &route);
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    return (a.first & kCounterMask) < (b.first & kCounterMask);
  });
  for (const auto& [id, route] : ordered) {
    client_sessions_[route->client].push_back(id);
  }

  // Compact: rewrite the journal as one snapshot transaction in a fresh
  // file, then atomically rename it over the old log. Crash before the
  // rename leaves the old journal intact; crash after leaves the complete
  // snapshot — either way recovery sees a consistent log.
  const std::string tmp_path = path + ".tmp";
  std::error_code ec;
  std::filesystem::remove(tmp_path, ec);  // stale tmp from an earlier crash
  AIMS_ASSIGN_OR_RETURN(durable::WriteAheadLog::Opened compacted,
                        durable::WriteAheadLog::Open(tmp_path, wal_config));
  AIMS_ASSIGN_OR_RETURN(uint64_t txn, compacted.wal->BeginTxn());
  for (const auto& [id, route] : ordered) {
    AIMS_RETURN_NOT_OK(compacted.wal->AppendCatalog(
        txn, EncodeRouteAdd(id, route->client, route->shard, route->local)));
  }
  for (const auto& [client, target] : pins) {
    AIMS_RETURN_NOT_OK(compacted.wal->AppendCatalog(
        txn, EncodeMigrationCommit(client, target)));
  }
  // Open migrations survive compaction: their targets may hold partial
  // copies of sessions the source still owns, and the no-adoption
  // exclusion above must keep holding on every future reopen — otherwise
  // the second reopen would adopt those copies as second owners.
  for (const auto& [client, targets] : open_migrations) {
    for (size_t target : targets) {
      AIMS_RETURN_NOT_OK(compacted.wal->AppendCatalog(
          txn, EncodeMigrationBegin(client, target)));
    }
  }
  AIMS_RETURN_NOT_OK(compacted.wal->Commit(txn));
  compacted.wal.reset();  // close before the rename
  opened.wal.reset();
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    return Status::IoError("routing journal compaction rename failed: " +
                           ec.message());
  }
  AIMS_ASSIGN_OR_RETURN(durable::WriteAheadLog::Opened reopened,
                        durable::WriteAheadLog::Open(path, wal_config));
  journal_ = std::move(reopened.wal);
  return Status::OK();
}

}  // namespace aims::server
