#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

/// \file shard_router.h
/// \brief Consistent-hash placement of tenants onto shards, plus the pin
/// table the live migrator uses to override it. This is the single source
/// of placement truth: nothing above the router may assume `client % N`.
///
/// The ring carries `vnodes_per_shard` virtual points per shard, hashed
/// with a splitmix64-style mixer, and a tenant lands on the successor of
/// its own hash. Growing the ring N -> N+1 therefore remaps only the
/// tenants whose successor became one of the new shard's points — in
/// expectation 1/(N+1) of them, and *every* remapped tenant moves TO the
/// new shard (a property test pins both facts). Contrast with modulo
/// placement, which remaps N/(N+1) of all tenants on every resize.
///
/// Pins: `SetPin(client, shard)` overrides the ring for one tenant — the
/// migrator pins a tenant to its target shard before copying, and a
/// committed migration keeps the pin so the tenant's future ingests land
/// where its data lives. Pins survive restart via the catalog's routing
/// journal, not the router itself (the router is pure in-memory state).
///
/// Epoch: a monotone counter bumped on every topology or committed-pin
/// change. The catalog folds it into newly minted session ids, which makes
/// ids traceable to a routing generation without encoding a shard index.
///
/// Thread-safe: lookups take a shared lock; pin/topology changes take the
/// exclusive lock. Lookups are O(log(points)) binary searches.

namespace aims::server {

/// \brief Identifier of one tenant (client) of the service runtime.
using ClientId = uint64_t;

/// \brief Tuning of one ShardRouter.
struct ShardRouterConfig {
  /// Virtual nodes per shard. More points -> smoother load split and a
  /// tighter remap bound, at O(points log points) build cost.
  size_t vnodes_per_shard = 128;
  /// Seed folded into every hash, so independent routers (tests) can
  /// build distinct rings from the same shard count.
  uint64_t hash_seed = 0x9e3779b97f4a7c15ull;
};

/// \brief Consistent-hash ring + tenant pin table.
class ShardRouter {
 public:
  explicit ShardRouter(size_t num_shards, ShardRouterConfig config = {});

  size_t num_shards() const;

  /// \brief Placement: the pin if one is set, else the ring successor of
  /// the tenant's hash.
  size_t ShardForClient(ClientId client) const;

  /// \brief Pure ring placement, ignoring pins — what the tenant would map
  /// to with no migration history. Used by the planner and property tests.
  size_t RingShardForClient(ClientId client) const;

  /// \brief Pins \p client to \p shard, overriding the ring. Bumps the
  /// epoch. No-op (but still an epoch bump) when re-pinning to the same
  /// shard.
  void SetPin(ClientId client, size_t shard);

  /// \brief Removes \p client's pin; the tenant falls back to the ring.
  void ClearPin(ClientId client);

  std::optional<size_t> PinOf(ClientId client) const;

  /// All pins, unordered. (Admin/introspection; the catalog journals pins
  /// itself, it does not read them back from here.)
  std::vector<std::pair<ClientId, size_t>> Pins() const;

  /// \brief Grows the ring by one shard (the scale-out path). Existing
  /// pins are untouched. Bumps the epoch.
  void AddShard();

  /// \brief Routing generation: starts at 1, bumped by SetPin/ClearPin/
  /// AddShard and by explicit BumpEpoch (the migrator bumps at commit).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  uint64_t BumpEpoch() {
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

 private:
  struct RingPoint {
    uint64_t hash = 0;
    uint32_t shard = 0;
  };

  /// splitmix64 finalizer — full-avalanche 64-bit mixer.
  static uint64_t Mix64(uint64_t x);

  /// Inserts \p shard's vnode points keeping points_ sorted. Caller holds
  /// the exclusive lock.
  void InsertShardPoints(size_t shard);

  /// Ring successor of \p hash. Caller holds at least the shared lock;
  /// points_ is never empty.
  size_t SuccessorShard(uint64_t hash) const;

  ShardRouterConfig config_;
  mutable std::shared_mutex mutex_;
  size_t num_shards_ = 0;                       ///< Guarded by mutex_.
  std::vector<RingPoint> points_;               ///< Sorted; guarded by mutex_.
  std::unordered_map<ClientId, size_t> pins_;   ///< Guarded by mutex_.
  std::atomic<uint64_t> epoch_{1};
};

}  // namespace aims::server
