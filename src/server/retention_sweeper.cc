#include "server/retention_sweeper.h"

#include <chrono>
#include <string>
#include <utility>

#include "common/macros.h"

namespace aims::server {

RetentionSweeper::RetentionSweeper(ShardedCatalog* catalog,
                                   RetentionSweeperConfig config,
                                   MetricsRegistry* metrics,
                                   obs::FlightRecorder* recorder,
                                   obs::Watchdog* watchdog)
    : catalog_(catalog), config_(std::move(config)), recorder_(recorder) {
  AIMS_CHECK(catalog != nullptr);
  if (metrics != nullptr) {
    sweeps_total_ = metrics->GetCounter("tslife.sweeps_total");
    sweep_failures_ = metrics->GetCounter("tslife.sweep_failures_total");
    downsampled_total_ =
        metrics->GetCounter("tslife.segments_downsampled_total");
    dropped_total_ = metrics->GetCounter("tslife.segments_dropped_total");
    skipped_total_ = metrics->GetCounter("tslife.segments_skipped_total");
    segment_bytes_ = metrics->GetGauge("tslife.segment_bytes");
    last_max_nmse_ = metrics->GetGauge("tslife.sweep_max_nmse_ppm");
  }
  if (watchdog != nullptr) {
    heartbeat_ = watchdog->Register("tslife_sweeper");
  }
}

RetentionSweeper::~RetentionSweeper() { Stop(); }

void RetentionSweeper::SetDefaultPolicy(
    storage::tslife::RetentionPolicy policy) {
  std::lock_guard<std::mutex> lock(policy_mutex_);
  config_.default_policy = policy;
}

void RetentionSweeper::SetTenantPolicy(
    ClientId client, storage::tslife::RetentionPolicy policy) {
  std::lock_guard<std::mutex> lock(policy_mutex_);
  overrides_[client] = policy;
}

void RetentionSweeper::ClearTenantPolicy(ClientId client) {
  std::lock_guard<std::mutex> lock(policy_mutex_);
  overrides_.erase(client);
}

Result<storage::tslife::SweepStats> RetentionSweeper::SweepNow(
    int64_t now_us) {
  if (now_us == 0) {
    now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::system_clock::now().time_since_epoch())
                 .count();
  }
  ShardedCatalog::TenantRetentionPolicies policies;
  {
    std::lock_guard<std::mutex> lock(policy_mutex_);
    policies.default_policy = config_.default_policy;
    policies.overrides = overrides_;
  }
  obs::Watchdog::Scope supervised(heartbeat_);
  Result<storage::tslife::SweepStats> stats =
      catalog_->SweepRetention(policies, now_us);
  if (!stats.ok()) {
    if (sweep_failures_ != nullptr) sweep_failures_->Increment();
    if (recorder_ != nullptr) {
      recorder_->RecordEvent("tslife sweep failed: " +
                             stats.status().message());
    }
    return stats;
  }
  sweeps_.fetch_add(1, std::memory_order_relaxed);
  if (sweeps_total_ != nullptr) sweeps_total_->Increment();
  if (downsampled_total_ != nullptr) {
    downsampled_total_->Increment(stats->segments_downsampled);
  }
  if (dropped_total_ != nullptr) {
    dropped_total_->Increment(stats->segments_dropped);
  }
  if (skipped_total_ != nullptr) {
    skipped_total_->Increment(stats->segments_skipped);
  }
  if (segment_bytes_ != nullptr) {
    segment_bytes_->Set(static_cast<int64_t>(stats->bytes_after));
  }
  // Gauges are integral; NMSE (a ratio bounded by policy, typically a few
  // percent) is published in parts per million.
  if (last_max_nmse_ != nullptr) {
    last_max_nmse_->Set(static_cast<int64_t>(stats->max_nmse * 1e6));
  }
  // One event line per sweep that changed anything: the flight recorder's
  // bounded ring keeps the recent retention history in post-mortems
  // without a busy idle sweep flooding it.
  if (recorder_ != nullptr &&
      (stats->segments_downsampled > 0 || stats->segments_dropped > 0)) {
    recorder_->RecordEvent(
        "tslife sweep: scanned=" + std::to_string(stats->segments_scanned) +
        " downsampled=" + std::to_string(stats->segments_downsampled) +
        " dropped=" + std::to_string(stats->segments_dropped) +
        " bytes " + std::to_string(stats->bytes_before) + "->" +
        std::to_string(stats->bytes_after));
  }
  return stats;
}

void RetentionSweeper::Start() {
  if (config_.interval_ms <= 0.0) return;
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  if (heartbeat_ != nullptr) heartbeat_->Arm();
  thread_ = std::thread([this] { Loop(); });
}

void RetentionSweeper::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(thread_mutex_);
  running_ = false;
  if (heartbeat_ != nullptr) heartbeat_->Disarm();
}

bool RetentionSweeper::running() const {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  return running_;
}

void RetentionSweeper::Loop() {
  const auto interval = std::chrono::duration<double, std::milli>(
      config_.interval_ms);
  std::unique_lock<std::mutex> lock(thread_mutex_);
  while (!stop_requested_) {
    if (wake_cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    if (heartbeat_ != nullptr) heartbeat_->Beat();
    // Failures are counted and recorded inside SweepNow; the loop keeps
    // going — a transient WAL error must not end retention forever.
    (void)SweepNow();
    lock.lock();
  }
}

}  // namespace aims::server
