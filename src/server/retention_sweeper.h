#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "obs/flight_recorder.h"
#include "obs/watchdog.h"
#include "server/metrics.h"
#include "server/sharded_catalog.h"

/// \file retention_sweeper.h
/// \brief The background half of the raw-sample lifecycle (ROADMAP item
/// 2): a supervised thread that periodically walks every shard's sealed
/// segments and applies the retention tiers — downsample past the
/// downsample age (NMSE-bounded, see storage/tslife.h), drop past the
/// drop age, oldest-first under the byte budget. Per-tenant policy
/// overrides ride on top of the default policy.
///
/// Observability: every sweep beats the "tslife_sweeper" watchdog handle,
/// updates the aims_tslife_* metric family, and leaves a flight-recorder
/// event, so a wedged or pathological sweep shows up in the same places
/// every other background thread does.

namespace aims::server {

/// \brief Sweep cadence and the default retention tiers.
struct RetentionSweeperConfig {
  /// > 0 runs the background thread on this cadence; 0 (default) leaves
  /// sweeping on demand (SweepNow) — what tests use for determinism.
  double interval_ms = 0.0;
  /// Policy applied to every tenant without an override. The default
  /// (all ages 0, no byte budget) retains everything — sweeps scan and
  /// do nothing.
  storage::tslife::RetentionPolicy default_policy;
};

/// \brief Periodic retention sweeps over the catalog's segment stores.
///
/// Thread-safe. Policy setters may race sweeps (the policy table has its
/// own lock); SweepNow may be called concurrently with the background
/// thread — each sweep takes the shards' exclusive locks in order.
class RetentionSweeper {
 public:
  /// \param catalog sweep target (not owned).
  /// \param metrics optional registry for the aims_tslife_* family.
  /// \param recorder optional flight recorder (one event per sweep).
  /// \param watchdog optional supervisor; when given, the sweeper
  /// registers "tslife_sweeper" and its loop heartbeats it.
  explicit RetentionSweeper(ShardedCatalog* catalog,
                            RetentionSweeperConfig config = {},
                            MetricsRegistry* metrics = nullptr,
                            obs::FlightRecorder* recorder = nullptr,
                            obs::Watchdog* watchdog = nullptr);
  ~RetentionSweeper();

  RetentionSweeper(const RetentionSweeper&) = delete;
  RetentionSweeper& operator=(const RetentionSweeper&) = delete;

  /// \brief Replaces the default policy (applies from the next sweep).
  void SetDefaultPolicy(storage::tslife::RetentionPolicy policy);
  /// \brief Sets/replaces one tenant's override.
  void SetTenantPolicy(ClientId client,
                       storage::tslife::RetentionPolicy policy);
  /// \brief Drops one tenant's override (back to the default policy).
  void ClearTenantPolicy(ClientId client);

  /// \brief One sweep on the caller's thread. \p now_us 0 takes the wall
  /// clock; tests inject a deterministic "now" (ages are measured against
  /// data time, so the sweep is a pure function of now_us and the stores).
  Result<storage::tslife::SweepStats> SweepNow(int64_t now_us = 0);

  /// \brief Starts the periodic thread (idempotent; no-op when
  /// interval_ms is 0).
  void Start();
  /// \brief Stops and joins the thread (idempotent).
  void Stop();
  bool running() const;

  /// Completed sweeps since construction (failures included in attempts
  /// but not here).
  uint64_t sweeps() const { return sweeps_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  ShardedCatalog* catalog_;
  RetentionSweeperConfig config_;
  obs::FlightRecorder* recorder_;
  obs::Watchdog::Handle* heartbeat_ = nullptr;

  /// Guards the policy table (config_.default_policy + overrides_).
  mutable std::mutex policy_mutex_;
  std::unordered_map<ClientId, storage::tslife::RetentionPolicy> overrides_;

  std::atomic<uint64_t> sweeps_{0};

  Counter* sweeps_total_ = nullptr;
  Counter* sweep_failures_ = nullptr;
  Counter* downsampled_total_ = nullptr;
  Counter* dropped_total_ = nullptr;
  Counter* skipped_total_ = nullptr;
  Gauge* segment_bytes_ = nullptr;
  Gauge* last_max_nmse_ = nullptr;

  mutable std::mutex thread_mutex_;
  std::condition_variable wake_cv_;
  std::thread thread_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace aims::server
