#pragma once

#include <memory>
#include <string>

#include "recognition/vocabulary.h"
#include "server/ingest_service.h"
#include "server/metrics.h"
#include "server/recognition_service.h"
#include "server/sharded_catalog.h"
#include "server/thread_pool.h"

/// \file server.h
/// \brief AimsServer: the concurrent multi-tenant service runtime. Wires
/// the pieces of aims::server together the way Fig. 1 wires the library's
/// subsystems:
///
///   ThreadPool          -> shared executor for asynchronous work,
///   ShardedCatalog      -> N AimsSystem shards behind rw-locks,
///   IngestService       -> bounded-queue admission onto the shards,
///   RecognitionService  -> per-client live recognizers,
///   MetricsRegistry     -> counters/gauges/histograms across all of it.
///
/// Lifecycle: construct, register vocabulary, serve, Shutdown (or let the
/// destructor do it). Shutdown drains admitted ingests before stopping the
/// executor, so no admitted recording is ever silently lost.

namespace aims::server {

/// \brief Server-wide configuration.
struct ServerConfig {
  /// Catalog shards; throughput scales with min(shards, cores) for
  /// CPU-bound work and with overlapped I/O waits for disk-bound work.
  size_t num_shards = 4;
  /// Executor width.
  size_t num_threads = 4;
  /// Per-shard AimsSystem configuration (wavelet family, block size,
  /// disk cost model...).
  core::AimsConfig system;
  /// Ingest admission/retry policy.
  IngestAdmissionPolicy admission;
  /// Recognizer tuning applied to every client stream.
  recognition::StreamRecognizerConfig recognizer;
};

/// \brief The integrated service runtime.
class AimsServer {
 public:
  explicit AimsServer(ServerConfig config = {});
  ~AimsServer();

  AimsServer(const AimsServer&) = delete;
  AimsServer& operator=(const AimsServer&) = delete;

  /// \brief Registers a motion template shared by all clients' recognizers.
  /// Must happen before any OpenStream (the vocabulary is immutable while
  /// streams are open).
  void AddVocabularyEntry(std::string label, linalg::Matrix segment);

  ShardedCatalog& catalog() { return *catalog_; }
  IngestService& ingest() { return *ingest_; }
  RecognitionService& recognition() { return *recognition_; }
  MetricsRegistry& metrics() { return *metrics_; }
  ThreadPool& pool() { return *pool_; }
  const ServerConfig& config() const { return config_; }

  /// \brief Drains admitted ingests and stops the executor. Idempotent.
  void Shutdown();

 private:
  ServerConfig config_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<ShardedCatalog> catalog_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<IngestService> ingest_;
  recognition::Vocabulary vocabulary_;
  std::unique_ptr<RecognitionService> recognition_;
  bool shut_down_ = false;
};

}  // namespace aims::server
