#pragma once

#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/admin_http.h"
#include "obs/cost_ledger.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/slo.h"
#include "obs/stats_reporter.h"
#include "obs/timeseries.h"
#include "obs/watchdog.h"
#include "recognition/vocabulary.h"
#include "server/api.h"
#include "server/continuous_agg.h"
#include "server/data_migrator.h"
#include "server/ingest_service.h"
#include "server/retention_sweeper.h"
#include "server/metrics.h"
#include "server/query_scheduler.h"
#include "server/recognition_service.h"
#include "server/sharded_catalog.h"
#include "server/thread_pool.h"
#include "server/tracer.h"

/// \file server.h
/// \brief AimsServer: the concurrent multi-tenant service runtime. Wires
/// the pieces of aims::server together the way Fig. 1 wires the library's
/// subsystems:
///
///   ThreadPool          -> shared executor for asynchronous work,
///   ShardedCatalog      -> N AimsSystem shards behind rw-locks,
///   IngestService       -> bounded-queue admission onto the shards,
///   QueryScheduler      -> deadline-aware progressive offline queries,
///   RecognitionService  -> per-client live recognizers,
///   Tracer              -> per-request span timelines,
///   MetricsRegistry     -> counters/gauges/histograms across all of it.
///
/// Clients speak the typed request/response API of api.h:
/// OpenSession -> IngestRecording / SubmitQuery / StreamSamples ->
/// CloseSession. Every operation returns Result<*Response>; StatusCodes
/// propagate unchanged from the subsystem that produced them.
///
/// Lifecycle: construct, register vocabulary, serve, Shutdown (or let the
/// destructor do it). Shutdown drains admitted ingests and scheduled
/// queries before stopping the executor, so no admitted work is ever
/// silently lost.

namespace aims::server {

/// \brief Observability wiring of one server instance.
struct ObsConfig {
  /// Record counters/gauges/histograms. Off, every service runs with a
  /// null registry — the instrumentation reduces to null-pointer checks
  /// (the "off" side of bench_observability).
  bool enable_metrics = true;
  /// Build per-request span traces. Off, every service runs with a null
  /// tracer and requests carry no trace.
  bool enable_tracing = true;
  /// Finished request traces retained for inspection (oldest evicted and
  /// counted in Tracer::dropped()).
  size_t trace_capacity = 512;
  /// What the StatsReporter watches (latency histogram, saturation gauge,
  /// targets) — see obs/stats_reporter.h.
  obs::StatsReporterConfig reporter;
  /// > 0 starts the periodic reporter thread on this cadence (overriding
  /// reporter.interval_ms); 0 leaves health evaluation on-demand only.
  double reporter_interval_ms = 0.0;
  /// Charge per-tenant resource usage (CPU-ns, block I/O, queue
  /// occupancy) on every ingest/query/stream path; exposed through
  /// GetTenantUsage and the aims_tenant_* Prometheus family. Off, the
  /// services run with a null ledger and GetTenantUsage fails with
  /// FailedPrecondition.
  bool enable_cost_ledger = true;
  /// > 0 makes the scheduler emit a slow-query record (plan + actuals,
  /// JSON-lines) for every query whose end-to-end latency reaches this
  /// threshold. 0 disables slow-query logging.
  double slow_query_threshold_ms = 0.0;
  /// Where slow-query records go. Empty with a positive threshold still
  /// counts slow queries (metrics + ledger) but writes no log.
  std::string slow_query_log_path;
  /// Ring sizing / drain cadence / rate limit of the async slow-query
  /// logger (see obs/log.h). Producers never block; overload drops
  /// records and ticks the logger's drop counters instead.
  obs::AsyncLogConfig slow_query_log;
  /// Include the catalog-wide block-cache counters in GetHealth responses
  /// (all-zero when ServerConfig::system.block_cache is disabled). Off,
  /// the health response's cache section stays default-initialized.
  bool enable_cache_stats = true;
  /// Include the catalog-wide WAL counters in GetHealth responses
  /// (zero-valued on the in-memory backend). Off, the health response's
  /// wal section stays default-initialized.
  bool enable_wal_stats = true;
  /// Admin HTTP plane on 127.0.0.1: >= 0 enables (0 picks an ephemeral
  /// port — read it back from admin_http()->port()), < 0 (default)
  /// disables. Serves /metrics, /healthz, /shards, /tenants[/<id>],
  /// /traces, /debug/flightrecord — all read paths with bounded admission.
  int admin_port = -1;
  /// Listener tuning (handler pool width, pending cap, socket timeouts).
  /// The port field inside is overridden by admin_port.
  obs::AdminHttpConfig admin;
  /// Black-box flight recorder: retains recent health snapshots, evicted
  /// traces, and slow-query records; dumps one post-mortem bundle on
  /// Saturated transitions, watchdog stalls, and explicit requests. Off,
  /// no recorder exists and DumpFlightRecord fails FailedPrecondition.
  bool enable_flight_recorder = true;
  /// Ring capacities / bundle placement / persist cadence. An empty
  /// bundle_path defaults to "<durability.path>/flightrecord.json" on the
  /// durable backend (in-memory rendering only otherwise); set
  /// persist_interval_ms > 0 to keep the on-disk bundle at most one
  /// interval stale — what makes it survive SIGKILL.
  obs::FlightRecorderConfig flight_recorder;
  /// Install SIGSEGV/SIGABRT handlers that write the pre-serialized
  /// bundle with async-signal-safe calls and re-raise. Opt-in: sanitizer
  /// builds and embedders often want those signals for themselves.
  bool flight_fatal_signal_handler = false;
  /// > 0 starts the watchdog checker thread on this cadence. 0 (default)
  /// leaves stall checking on demand (Watchdog::CheckNow) — the
  /// supervised sections still register and heartbeat either way.
  double watchdog_interval_ms = 0.0;
  /// Deadline for the supervised threads (pool, reporter, WAL sync
  /// leaders, migrator): an armed heartbeat older than this is a stall —
  /// counted in watchdog.stalls_total and dumped by the flight recorder.
  double watchdog_deadline_ms = 5000.0;
  /// Self-hosted metrics history: a Gorilla-compressed in-memory TSDB over
  /// this server's own registry, queryable through QueryMetricsHistory and
  /// GET /api/v1/query_range. Off, neither exists (FailedPrecondition /
  /// 404) and no scraper runs.
  bool enable_metrics_history = true;
  /// History store sizing/retention (chunk length, age and per-stripe byte
  /// budgets, lock striping) — see obs/timeseries.h.
  obs::MetricsTimeSeriesConfig history;
  /// > 0 starts the scraper thread sampling the registry into the history
  /// store on this cadence (with its own watchdog heartbeat). 0 (default)
  /// leaves history collection on demand — tests and embedders call
  /// metrics_scraper()->ScrapeOnce() to build deterministic timelines.
  double history_scrape_interval_ms = 0.0;
  /// Declarative SLOs evaluated as multi-window burn rates over the
  /// history store after every scrape. A burning objective degrades
  /// GetHealth with an SLO reason, shows up in the aims_slo_* family on
  /// /metrics, and flight-records a breach event whose bundle embeds the
  /// burning series' recent window. Ignored (engine not built) when
  /// metrics history is disabled.
  std::vector<obs::SloObjective> slos;
};

/// \brief Server-wide configuration.
struct ServerConfig {
  /// Catalog shards; throughput scales with min(shards, cores) for
  /// CPU-bound work and with overlapped I/O waits for disk-bound work.
  size_t num_shards = 4;
  /// Executor width.
  size_t num_threads = 4;
  /// Per-shard AimsSystem configuration (wavelet family, block size,
  /// disk cost model, block-cache capacity...). Set
  /// system.block_cache.capacity_bytes > 0 to give every shard a sharded
  /// read-through block cache; hot progressive queries then cost CPU
  /// instead of simulated seeks, and tenants are billed only for cold
  /// reads.
  core::AimsConfig system;
  /// Ingest admission/retry policy.
  IngestAdmissionPolicy admission;
  /// Query admission/fairness policy.
  SchedulerConfig scheduler;
  /// Recognizer tuning applied to every client stream.
  recognition::StreamRecognizerConfig recognizer;
  /// Raw-segment retention: sweep cadence and the default policy tiers.
  /// interval_ms 0 (default) leaves sweeping on demand
  /// (TriggerRetentionSweep / retention_sweeper()->SweepNow).
  RetentionSweeperConfig retention;
  /// Metrics/tracing/health wiring.
  ObsConfig obs;
};

/// \brief The integrated service runtime.
class AimsServer {
 public:
  explicit AimsServer(ServerConfig config = {});
  ~AimsServer();

  AimsServer(const AimsServer&) = delete;
  AimsServer& operator=(const AimsServer&) = delete;

  /// \brief Registers a motion template shared by all clients' recognizers.
  /// The vocabulary is immutable while recognition streams are open:
  /// returns FailedPrecondition in that case.
  Status AddVocabularyEntry(std::string label, linalg::Matrix segment);

  // ---- The typed client API (see api.h for the envelope contracts). ----

  /// \brief Registers \p client. AlreadyExists when the session is already
  /// open; FailedPrecondition when recognition is requested against an
  /// empty vocabulary.
  Result<OpenSessionResponse> OpenSession(const OpenSessionRequest& request);

  /// \brief Stores a recording through the admission-controlled ingest
  /// pipeline and blocks until it lands. NotFound without an open session;
  /// ResourceExhausted when admission rejects.
  Result<IngestRecordingResponse> IngestRecording(
      IngestRecordingRequest request);

  /// \brief Admits a progressive query; never blocks. The returned ticket
  /// delivers the (possibly partial) answer. NotFound without an open
  /// session; ResourceExhausted when the priority lane is full.
  Result<SubmitQueryResponse> SubmitQuery(const SubmitQueryRequest& request);

  /// \brief Feeds live frames to the client's recognition stream.
  /// FailedPrecondition when the session was opened without recognition.
  Result<StreamSamplesResponse> StreamSamples(StreamSamplesRequest request);

  /// \brief Closes the session (flushing the recognition stream, if any).
  /// The client's stored recordings remain queryable by other sessions.
  Result<CloseSessionResponse> CloseSession(const CloseSessionRequest& request);

  /// \brief Reports the derived health signal (counter rates, queue
  /// saturation, p99 vs. target). Needs no open session. Never fails; the
  /// Result envelope is for uniformity with the rest of the API.
  Result<GetHealthResponse> GetHealth(const GetHealthRequest& request);

  /// \brief Reports per-tenant attributed resource usage. Needs no open
  /// session (usage outlives sessions). FailedPrecondition when the cost
  /// ledger is disabled; NotFound when a specific client was requested and
  /// the ledger has never charged it.
  Result<GetTenantUsageResponse> GetTenantUsage(
      const GetTenantUsageRequest& request);

  /// \brief Range-queries the self-hosted metrics history: step-aligned
  /// windows of one stored series under an aggregation (avg/min/max/last/
  /// rate/delta/quantile). Needs no open session. FailedPrecondition when
  /// metrics history is disabled; InvalidArgument on a bad func/step/
  /// range. An unknown series returns an empty point list, not an error.
  /// The HTTP twin is GET /api/v1/query_range on the admin plane.
  Result<QueryMetricsHistoryResponse> QueryMetricsHistory(
      const QueryMetricsHistoryRequest& request);

  // ---- Admin/operator API (routing, rebalance, fault injection). ----

  /// \brief Per-shard health probes plus the routing epoch. Needs no open
  /// session.
  Result<GetShardStatsResponse> GetShardStats(
      const GetShardStatsRequest& request);

  /// \brief Plans (and, unless dry_run, starts) a tenant rebalance; the
  /// migration runs asynchronously on the server's executor while the
  /// affected tenants stay fully serveable. See TriggerRebalanceRequest
  /// for the two modes. AlreadyExists while a rebalance is running;
  /// FailedPrecondition for planner mode without a cost ledger.
  Result<TriggerRebalanceResponse> TriggerRebalance(
      const TriggerRebalanceRequest& request);

  /// \brief Progress of the current (or most recent) rebalance.
  Result<RebalanceStatusResponse> RebalanceStatus(
      const RebalanceStatusRequest& request);

  /// \brief Renders (and, unless the request says otherwise, writes) the
  /// flight recorder's post-mortem bundle on demand — the typed-API
  /// trigger next to the HTTP and automatic ones. FailedPrecondition when
  /// the recorder is disabled.
  Result<DumpFlightRecordResponse> DumpFlightRecord(
      const DumpFlightRecordRequest& request);

  /// \brief Typed fault injection / counter reset against one shard's
  /// device (replaces reaching into catalog().mutable_shard_device()).
  Result<AdminFaultResponse> AdminFault(const AdminFaultRequest& request);

  /// \brief Clears one shard's (or every shard's) block cache (replaces
  /// reaching into catalog().mutable_shard_cache()).
  Result<ClearCacheResponse> ClearCache(const ClearCacheRequest& request);

  // ---- Raw-sample lifecycle API (continuous aggregates, retention). ----

  /// \brief Registers a continuous aggregate for the client: the exact
  /// range result is maintained at every ingest commit and backfilled for
  /// sessions already stored, so matching queries answer with zero block
  /// I/O. NotFound without an open session; InvalidArgument on an
  /// inverted range.
  Result<RegisterAggregateResponse> RegisterAggregate(
      const RegisterAggregateRequest& request);

  /// \brief Drops one continuous aggregate. NotFound on an unknown
  /// handle.
  Result<UnregisterAggregateResponse> UnregisterAggregate(
      const UnregisterAggregateRequest& request);

  /// \brief Sets (or, with clear, drops) the retention policy the sweeper
  /// applies — the server default or one tenant's override.
  Result<SetRetentionPolicyResponse> SetRetentionPolicy(
      const SetRetentionPolicyRequest& request);

  /// \brief Runs one retention sweep synchronously and returns its stats.
  Result<TriggerRetentionSweepResponse> TriggerRetentionSweep(
      const TriggerRetentionSweepRequest& request);

  // ---- Raw subsystem accessors: test/bench instrumentation only. ----
  // Application code goes through the typed API above; these exist so
  // tests and benches can reach into shard devices, metrics, and queues.

  ShardedCatalog& catalog() { return *catalog_; }
  DataMigrator& migrator() { return *migrator_; }
  IngestService& ingest() { return *ingest_; }
  QueryScheduler& scheduler() { return *scheduler_; }
  RecognitionService& recognition() { return *recognition_; }
  MetricsRegistry& metrics() { return *metrics_; }
  Tracer& tracer() { return *tracer_; }
  obs::StatsReporter& reporter() { return *reporter_; }
  ThreadPool& pool() { return *pool_; }
  /// Always constructed (like the registry and tracer); services only see
  /// it when ObsConfig::enable_cost_ledger is set.
  obs::CostLedger& cost_ledger() { return *cost_ledger_; }
  /// The async slow-query logger, or null when slow-query logging is not
  /// configured (threshold 0 or empty path).
  obs::AsyncLogger* slow_query_log() { return slow_log_.get(); }
  /// The black-box recorder, or null when disabled.
  obs::FlightRecorder* flight_recorder() { return recorder_.get(); }
  /// The metrics-history store, or null when disabled.
  obs::MetricsTimeSeries* metrics_history() { return history_.get(); }
  /// The registry->history scraper, or null when metrics history is
  /// disabled. Its thread runs only when history_scrape_interval_ms > 0;
  /// ScrapeOnce works either way.
  obs::MetricsScraper* metrics_scraper() { return scraper_.get(); }
  /// The SLO burn-rate engine, or null when metrics history is disabled
  /// or no objectives are configured.
  obs::SloEngine* slo_engine() { return slo_.get(); }
  /// Always constructed; its checker thread runs only when
  /// ObsConfig::watchdog_interval_ms > 0.
  obs::Watchdog& watchdog() { return *watchdog_; }
  /// The continuous-aggregate registry (always constructed).
  ContinuousAggregateRegistry& aggregates() { return *aggregates_; }
  /// The retention sweeper (always constructed; its thread runs only when
  /// ServerConfig::retention.interval_ms > 0).
  RetentionSweeper& retention_sweeper() { return *sweeper_; }
  /// The admin HTTP listener, or null when ObsConfig::admin_port < 0.
  obs::AdminHttpServer* admin_http() { return admin_.get(); }
  /// OK, or why the admin listener failed to start (port in use, ...).
  const Status& admin_status() const { return admin_status_; }
  const ServerConfig& config() const { return config_; }

  /// \brief Drains admitted ingests and queries, then stops the executor.
  /// Idempotent.
  void Shutdown();

 private:
  struct SessionState {
    bool recognition = false;
  };

  /// Builds the admin plane's routing table (called once at construction
  /// when admin_port >= 0; all routes are read paths over the members).
  void WireAdminRoutes();

  ServerConfig config_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<obs::CostLedger> cost_ledger_;
  // Stream before logger before scheduler: the scheduler's destructor may
  // still publish records, and the logger flushes into the stream.
  std::unique_ptr<std::ofstream> slow_log_stream_;
  std::unique_ptr<obs::AsyncLogger> slow_log_;
  // History store + SLO engine before the recorder: the recorder's
  // context provider reads both, and the engine reads the store. The
  // scraper (whose thread writes the store and drives the engine) is
  // declared with the reporter further down, so it stops first.
  std::unique_ptr<obs::MetricsTimeSeries> history_;
  std::unique_ptr<obs::SloEngine> slo_;
  // The black box outlives (is declared before) every component that
  // feeds it — scheduler, tracer sink, reporter hook, watchdog callback.
  // Shutdown stops its persist thread before those wind down.
  std::unique_ptr<obs::FlightRecorder> recorder_;
  // Before the catalog: the catalog's ingest-commit hook targets the
  // registry, so the registry must outlive it.
  std::unique_ptr<ContinuousAggregateRegistry> aggregates_;
  std::unique_ptr<ShardedCatalog> catalog_;
  // Declared before the pool: rebalance tasks run on the pool and touch
  // the migrator, and the pool joins its workers before either dies.
  std::unique_ptr<DataMigrator> migrator_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<IngestService> ingest_;
  std::unique_ptr<QueryScheduler> scheduler_;
  recognition::Vocabulary vocabulary_;
  std::unique_ptr<RecognitionService> recognition_;
  std::unique_ptr<obs::StatsReporter> reporter_;
  // After the reporter (destroyed before it): the scraper's post-scrape
  // hook drives the SLO engine, whose breach hook feeds the recorder —
  // everything it touches is declared above and so outlives it.
  std::unique_ptr<obs::MetricsScraper> scraper_;
  // Retention sweeper: declared before the watchdog (whose handle it
  // beats) — safe because Shutdown() stops it while the watchdog is still
  // alive, and a stopped sweeper's destructor never touches its handle.
  std::unique_ptr<RetentionSweeper> sweeper_;
  // The watchdog owns every heartbeat handle; Shutdown() silences all
  // beaters (pool joined, reporter stopped, drains done) before members
  // are destroyed, so its position only needs to follow what its STALL
  // CALLBACK reads (the recorder). Admin listener last: its handlers read
  // everything above, so it is destroyed (and stopped) first.
  std::unique_ptr<obs::Watchdog> watchdog_;
  std::unique_ptr<obs::AdminHttpServer> admin_;
  Status admin_status_;

  mutable std::mutex sessions_mutex_;
  std::unordered_map<ClientId, SessionState> sessions_;

  /// Asynchronous-rebalance bookkeeping (guarded by rebalance_mutex_).
  struct RebalanceRun {
    bool running = false;
    std::vector<RebalanceMove> moves;
    size_t completed = 0;
    std::string error;
  };
  mutable std::mutex rebalance_mutex_;
  RebalanceRun rebalance_;

  bool shut_down_ = false;
};

}  // namespace aims::server
