#include "server/ingest_service.h"

#include <utility>
#include <vector>

#include "common/macros.h"

namespace aims::server {

IngestService::IngestService(ShardedCatalog* catalog, ThreadPool* pool,
                             IngestAdmissionPolicy policy,
                             MetricsRegistry* metrics, Tracer* tracer,
                             obs::CostLedger* ledger)
    : catalog_(catalog),
      pool_(pool),
      policy_(policy),
      tracer_(tracer),
      ledger_(ledger) {
  AIMS_CHECK(catalog_ != nullptr);
  AIMS_CHECK(pool_ != nullptr);
  AIMS_CHECK(policy_.queue_capacity >= 1);
  if (policy_.max_attempts == 0) policy_.max_attempts = 1;
  if (metrics != nullptr) {
    submitted_ = metrics->GetCounter("ingest.submitted");
    admitted_ = metrics->GetCounter("ingest.admitted");
    rejected_queue_ = metrics->GetCounter("ingest.rejected_queue");
    rejected_capacity_ = metrics->GetCounter("ingest.rejected_capacity");
    completed_ = metrics->GetCounter("ingest.completed");
    failed_ = metrics->GetCounter("ingest.failed");
    retries_ = metrics->GetCounter("ingest.retries");
    queue_depth_ = metrics->GetGauge("ingest.queue_depth");
    e2e_latency_ms_ = metrics->GetHistogram(
        "ingest.e2e_latency_ms", MetricsRegistry::DefaultLatencyBoundsMs());
  }
}

IngestService::ClientState* IngestService::GetOrCreateClient(ClientId client) {
  {
    std::shared_lock<std::shared_mutex> lock(clients_mutex_);
    auto it = clients_.find(client);
    if (it != clients_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(clients_mutex_);
  auto& slot = clients_[client];
  if (!slot) {
    slot = std::make_unique<ClientState>(client, policy_.queue_capacity);
  }
  return slot.get();
}

Status IngestService::Submit(ClientId client, std::string name,
                             streams::Recording recording, Callback on_done) {
  if (submitted_ != nullptr) submitted_->Increment();
  if (policy_.max_pending_total > 0 &&
      pending_.load(std::memory_order_relaxed) >= policy_.max_pending_total) {
    if (rejected_capacity_ != nullptr) rejected_capacity_->Increment();
    if (ledger_ != nullptr) ledger_->ForTenant(client)->CountRejected();
    return Status::ResourceExhausted("IngestService: server at capacity");
  }
  ClientState* state = GetOrCreateClient(client);
  PendingItem item;
  item.name = std::move(name);
  item.recording = std::move(recording);
  item.on_done = std::move(on_done);
  item.enqueued = std::chrono::steady_clock::now();
  if (tracer_ != nullptr) {
    // The trace is born at admission; a rejected submission below simply
    // drops it, so only admitted work is ever recorded.
    Trace trace(tracer_->NextRequestId());
    trace.set_label("ingest client=" + std::to_string(client) +
                    " name=" + item.name);
    trace.BeginSpan("ingest");  // Root span: closed when Record() stamps it.
    trace.AddSpan("admission", 0.0, trace.ElapsedMs());
    item.queue_span = trace.BeginSpan("queue_wait");
    item.trace = std::move(trace);
  }
  if (!state->queue.Produce(std::move(item))) {
    if (rejected_queue_ != nullptr) rejected_queue_->Increment();
    if (ledger_ != nullptr) ledger_->ForTenant(client)->CountRejected();
    return Status::ResourceExhausted("IngestService: client queue full");
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  tasks_in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (queue_depth_ != nullptr) queue_depth_->AddTracked(1);
  // One drain task per admitted item. A task that loses the race to an
  // earlier drainer finds the queue empty and returns — cheap, and it
  // avoids a scheduled-flag handshake with the producer.
  if (!pool_->Submit([this, state] {
        DrainClient(state);
        // Notify while holding the mutex: the destructor may destroy the
        // condition variable the moment the count hits zero, so the notify
        // must not outlive the critical section.
        std::lock_guard<std::mutex> lock(drain_wait_mutex_);
        tasks_in_flight_.fetch_sub(1, std::memory_order_relaxed);
        drained_cv_.notify_all();
      })) {
    // Pool is shutting down; the item stays queued but will never run.
    pending_.fetch_sub(1, std::memory_order_relaxed);
    tasks_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    if (queue_depth_ != nullptr) queue_depth_->AddTracked(-1);
    return Status::FailedPrecondition("IngestService: executor shut down");
  }
  if (admitted_ != nullptr) admitted_->Increment();
  return Status::OK();
}

void IngestService::DrainClient(ClientState* state) {
  std::lock_guard<std::mutex> serialize(state->drain_mutex);
  std::vector<PendingItem> batch;
  while (state->queue.TryConsume(&batch)) {
    for (PendingItem& item : batch) {
      ProcessItem(state, std::move(item));
    }
    batch.clear();
  }
}

void IngestService::ProcessItem(ClientState* state, PendingItem item) {
  Trace* trace = item.trace.has_value() ? &*item.trace : nullptr;
  if (trace != nullptr) trace->EndSpan(item.queue_span);
  obs::TenantLedger* tenant =
      ledger_ != nullptr ? ledger_->ForTenant(state->client) : nullptr;
  if (tenant != nullptr) {
    tenant->ChargeQueueMs(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - item.enqueued)
                              .count());
    tenant->CountIngest();
  }
  // Wall-clock attribution for every attempt (including retries).
  obs::ScopedCpuCharge cpu_charge(tenant);
  Result<GlobalSessionId> result =
      Status::Internal("IngestService: no attempt ran");
  ShardedCatalog::IngestIoStats io_stats;
  for (size_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      if (retries_ != nullptr) retries_->Increment();
      if (trace != nullptr) trace->AddMarker("retry");
    }
    result = catalog_->Ingest(state->client, item.name, item.recording, trace,
                              &io_stats);
    if (tenant != nullptr && io_stats.blocks_written > 0) {
      tenant->ChargeWrite(io_stats.blocks_written, io_stats.bytes_written);
    }
    // Only transient storage faults are worth another attempt.
    if (result.ok() || result.status().code() != StatusCode::kIoError) break;
  }
  if (trace != nullptr && tracer_ != nullptr) {
    tracer_->Record(std::move(*item.trace));
  }
  if (result.ok()) {
    if (completed_ != nullptr) completed_->Increment();
  } else {
    if (failed_ != nullptr) failed_->Increment();
  }
  if (e2e_latency_ms_ != nullptr) {
    e2e_latency_ms_->Record(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -
                                item.enqueued)
                                .count());
  }
  if (queue_depth_ != nullptr) queue_depth_->AddTracked(-1);
  if (item.on_done) item.on_done(result);
  // Completion accounting last, so Drain() returning implies callbacks ran.
  {
    std::lock_guard<std::mutex> lock(drain_wait_mutex_);
    pending_.fetch_sub(1, std::memory_order_relaxed);
  }
  drained_cv_.notify_all();
}

void IngestService::Drain() {
  std::unique_lock<std::mutex> lock(drain_wait_mutex_);
  drained_cv_.wait(
      lock, [&] { return pending_.load(std::memory_order_relaxed) == 0; });
}

IngestService::~IngestService() {
  std::unique_lock<std::mutex> lock(drain_wait_mutex_);
  drained_cv_.wait(lock, [&] {
    return tasks_in_flight_.load(std::memory_order_relaxed) == 0;
  });
}

}  // namespace aims::server
