#include "server/shard_router.h"

#include <algorithm>
#include <mutex>

#include "common/macros.h"

namespace aims::server {

ShardRouter::ShardRouter(size_t num_shards, ShardRouterConfig config)
    : config_(config) {
  AIMS_CHECK(num_shards >= 1);
  AIMS_CHECK(config_.vnodes_per_shard >= 1);
  points_.reserve(num_shards * config_.vnodes_per_shard);
  for (size_t i = 0; i < num_shards; ++i) {
    num_shards_ = i + 1;
    InsertShardPoints(i);
  }
}

uint64_t ShardRouter::Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void ShardRouter::InsertShardPoints(size_t shard) {
  for (size_t v = 0; v < config_.vnodes_per_shard; ++v) {
    RingPoint point;
    // Two mixing rounds decorrelate (shard, vnode) pairs; the seed keeps
    // independent rings distinct.
    point.hash = Mix64(Mix64(static_cast<uint64_t>(shard) ^ config_.hash_seed) +
                       static_cast<uint64_t>(v));
    point.shard = static_cast<uint32_t>(shard);
    auto it = std::lower_bound(points_.begin(), points_.end(), point.hash,
                               [](const RingPoint& p, uint64_t h) {
                                 return p.hash < h;
                               });
    points_.insert(it, point);
  }
}

size_t ShardRouter::SuccessorShard(uint64_t hash) const {
  auto it = std::lower_bound(points_.begin(), points_.end(), hash,
                             [](const RingPoint& p, uint64_t h) {
                               return p.hash < h;
                             });
  if (it == points_.end()) it = points_.begin();  // wrap around the ring
  return static_cast<size_t>(it->shard);
}

size_t ShardRouter::num_shards() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return num_shards_;
}

size_t ShardRouter::ShardForClient(ClientId client) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto pin = pins_.find(client);
  if (pin != pins_.end()) return pin->second;
  return SuccessorShard(Mix64(client ^ config_.hash_seed));
}

size_t ShardRouter::RingShardForClient(ClientId client) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return SuccessorShard(Mix64(client ^ config_.hash_seed));
}

void ShardRouter::SetPin(ClientId client, size_t shard) {
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    AIMS_CHECK(shard < num_shards_);
    pins_[client] = shard;
  }
  BumpEpoch();
}

void ShardRouter::ClearPin(ClientId client) {
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    pins_.erase(client);
  }
  BumpEpoch();
}

std::optional<size_t> ShardRouter::PinOf(ClientId client) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = pins_.find(client);
  if (it == pins_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<ClientId, size_t>> ShardRouter::Pins() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return {pins_.begin(), pins_.end()};
}

void ShardRouter::AddShard() {
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    size_t shard = num_shards_++;
    InsertShardPoints(shard);
  }
  BumpEpoch();
}

}  // namespace aims::server
