#include "server/server.h"

#include <condition_variable>
#include <utility>

#include "common/macros.h"

namespace aims::server {

AimsServer::AimsServer(ServerConfig config)
    : config_(config),
      metrics_(std::make_unique<MetricsRegistry>()),
      catalog_(std::make_unique<ShardedCatalog>(config.num_shards,
                                                config.system, metrics_.get())),
      pool_(std::make_unique<ThreadPool>(config.num_threads)),
      ingest_(std::make_unique<IngestService>(catalog_.get(), pool_.get(),
                                              config.admission,
                                              metrics_.get())),
      tracer_(std::make_unique<Tracer>(config.trace_capacity)),
      scheduler_(std::make_unique<QueryScheduler>(
          catalog_.get(), pool_.get(), config.scheduler, tracer_.get(),
          metrics_.get())),
      recognition_(std::make_unique<RecognitionService>(
          &vocabulary_, config.recognizer, metrics_.get())) {}

AimsServer::~AimsServer() { Shutdown(); }

Status AimsServer::AddVocabularyEntry(std::string label,
                                      linalg::Matrix segment) {
  if (recognition_->open_streams() > 0) {
    return Status::FailedPrecondition(
        "AddVocabularyEntry: vocabulary is immutable while recognition "
        "streams are open");
  }
  vocabulary_.Add(std::move(label), std::move(segment));
  return Status::OK();
}

Result<OpenSessionResponse> AimsServer::OpenSession(
    const OpenSessionRequest& request) {
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (sessions_.count(request.client) != 0) {
      return Status::AlreadyExists(
          "OpenSession: client already has an open session");
    }
  }
  if (request.enable_recognition) {
    // OpenStream enforces the non-empty-vocabulary precondition and the
    // one-stream-per-client invariant.
    AIMS_RETURN_NOT_OK(recognition_->OpenStream(request.client));
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_[request.client] =
        SessionState{/*recognition=*/request.enable_recognition};
  }
  OpenSessionResponse response;
  response.client = request.client;
  response.shard = catalog_->ShardForClient(request.client);
  return response;
}

Result<IngestRecordingResponse> AimsServer::IngestRecording(
    IngestRecordingRequest request) {
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (sessions_.count(request.client) == 0) {
      return Status::NotFound("IngestRecording: no open session for client");
    }
  }
  IngestRecordingResponse response;
  response.num_frames = request.recording.num_frames();
  response.num_channels = request.recording.num_channels();

  // Blocking convenience over the asynchronous pipeline: admission and
  // retry policy still apply, we just wait for the completion callback.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  Result<GlobalSessionId> outcome =
      Status::Internal("ingest did not complete");
  Status admitted = ingest_->Submit(
      request.client, std::move(request.name), std::move(request.recording),
      [&](const Result<GlobalSessionId>& result) {
        std::lock_guard<std::mutex> lock(done_mutex);
        outcome = result;
        done = true;
        done_cv.notify_all();
      });
  AIMS_RETURN_NOT_OK(admitted);
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
  AIMS_ASSIGN_OR_RETURN(response.session, outcome);
  return response;
}

Result<SubmitQueryResponse> AimsServer::SubmitQuery(
    const SubmitQueryRequest& request) {
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (sessions_.count(request.client) == 0) {
      return Status::NotFound("SubmitQuery: no open session for client");
    }
  }
  SubmitQueryResponse response;
  AIMS_ASSIGN_OR_RETURN(response.ticket, scheduler_->Submit(request.query));
  return response;
}

Result<StreamSamplesResponse> AimsServer::StreamSamples(
    StreamSamplesRequest request) {
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(request.client);
    if (it == sessions_.end()) {
      return Status::NotFound("StreamSamples: no open session for client");
    }
    if (!it->second.recognition) {
      return Status::FailedPrecondition(
          "StreamSamples: session was opened without recognition; set "
          "OpenSessionRequest::enable_recognition");
    }
  }
  StreamSamplesResponse response;
  for (const streams::Frame& frame : request.frames) {
    AIMS_ASSIGN_OR_RETURN(auto event,
                          recognition_->PushFrame(request.client, frame));
    ++response.frames_pushed;
    if (event.has_value()) response.events.push_back(std::move(*event));
  }
  return response;
}

Result<CloseSessionResponse> AimsServer::CloseSession(
    const CloseSessionRequest& request) {
  SessionState state;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(request.client);
    if (it == sessions_.end()) {
      return Status::NotFound("CloseSession: no open session for client");
    }
    state = it->second;
    sessions_.erase(it);
  }
  CloseSessionResponse response;
  if (state.recognition) {
    AIMS_ASSIGN_OR_RETURN(response.final_event,
                          recognition_->CloseStream(request.client));
  }
  return response;
}

void AimsServer::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // Order matters: admitted ingests and queries must finish while the pool
  // is still running; only then may the workers be joined. Services and
  // catalog are destroyed after the pool, so in-flight tasks never dangle.
  ingest_->Drain();
  scheduler_->Drain();
  pool_->Shutdown();
}

}  // namespace aims::server
