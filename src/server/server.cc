#include "server/server.h"

#include <utility>

namespace aims::server {

AimsServer::AimsServer(ServerConfig config)
    : config_(config),
      metrics_(std::make_unique<MetricsRegistry>()),
      catalog_(std::make_unique<ShardedCatalog>(config.num_shards,
                                                config.system, metrics_.get())),
      pool_(std::make_unique<ThreadPool>(config.num_threads)),
      ingest_(std::make_unique<IngestService>(catalog_.get(), pool_.get(),
                                              config.admission,
                                              metrics_.get())),
      recognition_(std::make_unique<RecognitionService>(
          &vocabulary_, config.recognizer, metrics_.get())) {}

AimsServer::~AimsServer() { Shutdown(); }

void AimsServer::AddVocabularyEntry(std::string label, linalg::Matrix segment) {
  vocabulary_.Add(std::move(label), std::move(segment));
}

void AimsServer::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // Order matters: admitted ingests must finish while the pool is still
  // running; only then may the workers be joined. Services and catalog are
  // destroyed after the pool, so in-flight tasks never dangle.
  ingest_->Drain();
  pool_->Shutdown();
}

}  // namespace aims::server
