#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/macros.h"
#include "obs/exporters.h"
#include "obs/json_util.h"

namespace aims::server {

namespace {

/// One tenant's attributed costs as a JSON object (the /tenants body).
std::string TenantUsageJson(ClientId client, const obs::TenantUsage& usage) {
  std::string out = "{\"tenant\":" + std::to_string(client);
  out += ",\"cpu_ns\":" + std::to_string(usage.cpu_ns);
  out += ",\"blocks_read\":" + std::to_string(usage.blocks_read);
  out += ",\"blocks_written\":" + std::to_string(usage.blocks_written);
  out += ",\"bytes_read\":" + std::to_string(usage.bytes_read);
  out += ",\"bytes_written\":" + std::to_string(usage.bytes_written);
  out += ",\"queue_ms\":" + obs::TrimmedDouble(usage.queue_ms);
  out += ",\"queries\":" + std::to_string(usage.queries);
  out += ",\"ingests\":" + std::to_string(usage.ingests);
  out += ",\"stream_batches\":" + std::to_string(usage.stream_batches);
  out += ",\"slow_queries\":" + std::to_string(usage.slow_queries);
  out += ",\"rejected\":" + std::to_string(usage.rejected);
  out += "}";
  return out;
}

/// Maps a typed-API failure onto the admin plane: the status message as a
/// JSON error body, NotFound as 404 and everything else as 503 (the admin
/// plane has no write paths, so failures are "not here" or "not now").
obs::AdminResponse AdminError(const Status& status) {
  obs::AdminResponse response;
  response.status = status.code() == StatusCode::kNotFound ? 404 : 503;
  response.body =
      "{\"error\":\"" + obs::JsonEscape(status.message()) + "\"}\n";
  return response;
}

}  // namespace

AimsServer::AimsServer(ServerConfig config)
    : config_(config),
      // Registry and tracer are always constructed (the accessors promise a
      // valid reference); the enable flags only decide whether the services
      // get a pointer, so disabling observability leaves the services'
      // null-checks as the entire instrumentation cost.
      metrics_(std::make_unique<MetricsRegistry>()),
      tracer_(std::make_unique<Tracer>(config.obs.trace_capacity)),
      cost_ledger_(std::make_unique<obs::CostLedger>()),
      // Slow-query logging needs both a threshold and a destination; with
      // either missing, the scheduler still counts slow queries but the
      // logger is never built.
      slow_log_stream_([&]() -> std::unique_ptr<std::ofstream> {
        if (config.obs.slow_query_threshold_ms <= 0.0 ||
            config.obs.slow_query_log_path.empty()) {
          return nullptr;
        }
        return std::make_unique<std::ofstream>(
            config.obs.slow_query_log_path, std::ios::out | std::ios::trunc);
      }()),
      slow_log_(slow_log_stream_ != nullptr
                    ? std::make_unique<obs::AsyncLogger>(
                          slow_log_stream_.get(), config.obs.slow_query_log)
                    : nullptr),
      // The black box. An unset bundle path defaults next to the durable
      // store (the natural "where the post-mortem lives" place); on the
      // in-memory backend it stays empty and the recorder renders bundles
      // without persisting them.
      recorder_([&]() -> std::unique_ptr<obs::FlightRecorder> {
        if (!config.obs.enable_flight_recorder) return nullptr;
        obs::FlightRecorderConfig fr = config.obs.flight_recorder;
        if (fr.bundle_path.empty() && !config.system.durability.path.empty()) {
          fr.bundle_path =
              config.system.durability.path + "/flightrecord.json";
        }
        return std::make_unique<obs::FlightRecorder>(fr);
      }()),
      catalog_(std::make_unique<ShardedCatalog>(
          config.num_shards, config.system,
          config.obs.enable_metrics ? metrics_.get() : nullptr)),
      migrator_(std::make_unique<DataMigrator>(catalog_.get())),
      pool_(std::make_unique<ThreadPool>(config.num_threads)),
      ingest_(std::make_unique<IngestService>(
          catalog_.get(), pool_.get(), config.admission,
          config.obs.enable_metrics ? metrics_.get() : nullptr,
          config.obs.enable_tracing ? tracer_.get() : nullptr,
          config.obs.enable_cost_ledger ? cost_ledger_.get() : nullptr)),
      scheduler_(std::make_unique<QueryScheduler>(
          catalog_.get(), pool_.get(), config.scheduler,
          config.obs.enable_tracing ? tracer_.get() : nullptr,
          config.obs.enable_metrics ? metrics_.get() : nullptr,
          config.obs.enable_cost_ledger ? cost_ledger_.get() : nullptr,
          slow_log_.get(), config.obs.slow_query_threshold_ms,
          recorder_.get())),
      recognition_(std::make_unique<RecognitionService>(
          &vocabulary_, config.recognizer,
          config.obs.enable_metrics ? metrics_.get() : nullptr)) {
  // Continuous aggregates: registry over the catalog, fed by the catalog's
  // ingest-commit hook, consulted by the scheduler before planning.
  aggregates_ = std::make_unique<ContinuousAggregateRegistry>(
      catalog_.get(), config.obs.enable_metrics ? metrics_.get() : nullptr);
  catalog_->SetIngestCommitHook(
      [this](GlobalSessionId session, ClientId client,
             const std::vector<core::StandingRangeUpdate>& updates) {
        aggregates_->OnIngestCommit(session, client, updates);
      });
  scheduler_->SetAggregateRegistry(aggregates_.get());

  obs::StatsReporterConfig reporter_config = config.obs.reporter;
  if (config.obs.reporter_interval_ms > 0.0) {
    reporter_config.interval_ms = config.obs.reporter_interval_ms;
  }
  reporter_ =
      std::make_unique<obs::StatsReporter>(metrics_.get(), reporter_config);

  // Metrics history: the store, the scraper feeding it, and (with
  // objectives configured) the SLO engine evaluated after every scrape.
  if (config.obs.enable_metrics_history) {
    history_ = std::make_unique<obs::MetricsTimeSeries>(config.obs.history);
    obs::MetricsScraperConfig scraper_config;
    if (config.obs.history_scrape_interval_ms > 0.0) {
      scraper_config.interval_ms = config.obs.history_scrape_interval_ms;
    }
    scraper_ = std::make_unique<obs::MetricsScraper>(
        metrics_.get(), history_.get(), scraper_config);
    if (!config.obs.slos.empty()) {
      slo_ = std::make_unique<obs::SloEngine>(
          history_.get(),
          config.obs.enable_metrics ? metrics_.get() : nullptr,
          config.obs.slos);
      scraper_->SetPostScrapeHook(
          [this](int64_t now_ms) { slo_->Evaluate(now_ms); });
      // A burning objective degrades the derived health signal with the
      // engine's reason — the SLO judges trajectories the reporter's
      // instantaneous checks cannot see.
      reporter_->SetHealthInput([this](obs::HealthSnapshot* snap) {
        for (const obs::SloStatus& s : slo_->Latest()) {
          if (!s.burning) continue;
          snap->reasons.push_back(s.reason);
          snap->level = std::max(snap->level, obs::HealthLevel::kDegraded);
        }
      });
    }
  }

  // Watchdog: always constructed (supervised sections register
  // unconditionally and tests drive CheckNow); the checker thread only
  // runs when a cadence was configured.
  obs::WatchdogConfig watchdog_config;
  if (config.obs.watchdog_interval_ms > 0.0) {
    watchdog_config.check_interval_ms = config.obs.watchdog_interval_ms;
  }
  watchdog_config.deadline_ms = config.obs.watchdog_deadline_ms;
  watchdog_ = std::make_unique<obs::Watchdog>(
      watchdog_config, config.obs.enable_metrics
                           ? metrics_->GetCounter("watchdog.stalls_total")
                           : nullptr);
  pool_->SetWatchdog(watchdog_->Register("thread_pool"));
  reporter_->SetWatchdogHandle(watchdog_->Register("stats_reporter"));
  catalog_->SetWalWatchdog(watchdog_->Register("wal_sync"));
  migrator_->SetWatchdog(watchdog_->Register("migrator"));
  if (scraper_ != nullptr) {
    scraper_->SetWatchdogHandle(watchdog_->Register("metrics_scraper"));
  }

  // Retention sweeper: built after the watchdog so it can register its
  // heartbeat; its thread starts below only when a cadence was configured.
  sweeper_ = std::make_unique<RetentionSweeper>(
      catalog_.get(), config.retention,
      config.obs.enable_metrics ? metrics_.get() : nullptr, recorder_.get(),
      watchdog_.get());

  if (recorder_ != nullptr) {
    // Every rendered bundle carries point-in-time WAL/cache/shard/watchdog
    // context next to the retained history.
    recorder_->SetContextProvider([this] {
      obs::FlightContext context;
      if (catalog_->durable()) {
        context.has_wal = true;
        context.wal = catalog_->TotalWalStats();
      }
      context.has_cache = true;
      context.cache = catalog_->TotalCacheStats();
      context.shards = catalog_->ShardStats();
      context.watchdog = watchdog_->Status();
      if (slo_ != nullptr) {
        context.slo = slo_->Latest();
        // Embed each burning series' recent window (capped so a bundle
        // stays bounded): the post-mortem sees the trajectory that
        // tripped the objective, not just the final burn rate.
        constexpr size_t kMaxEmbeddedSamples = 512;
        const int64_t now_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count();
        for (const obs::SloStatus& s : context.slo) {
          if (!s.burning) continue;
          obs::SloHistoryEntry entry;
          entry.objective = s.name;
          entry.series = s.series;
          entry.samples = history_->Query(
              s.series, now_ms - static_cast<int64_t>(s.slow_window_ms),
              now_ms);
          if (entry.samples.size() > kMaxEmbeddedSamples) {
            entry.samples.erase(entry.samples.begin(),
                                entry.samples.end() - kMaxEmbeddedSamples);
          }
          context.slo_history.push_back(std::move(entry));
        }
      }
      return context;
    });
    // Feeds: the tracer's evictions, the reporter's health snapshots, the
    // watchdog's stall episodes (the latter also trigger a dump).
    if (config.obs.enable_tracing) {
      tracer_->SetEvictionSink([recorder = recorder_.get()](
                                   const Trace& trace) {
        recorder->RecordEvictedTrace(trace);
      });
    }
    reporter_->SetSnapshotHook(
        [recorder = recorder_.get()](const obs::HealthSnapshot& snapshot) {
          recorder->RecordHealth(snapshot);
        });
    if (slo_ != nullptr) {
      // Every not-burning -> burning edge lands in the event ring; the
      // bundle's context (wired above) then embeds the burning series'
      // history window.
      slo_->SetBreachHook(
          [recorder = recorder_.get()](const obs::SloStatus& s) {
            recorder->RecordEvent(s.reason);
          });
    }
    watchdog_->SetStallCallback(
        [recorder = recorder_.get()](const obs::Watchdog::ThreadStatus& s) {
          (void)recorder->Dump("watchdog stall: " + s.name);
        });
    if (!recorder_->previous_bundle_path().empty()) {
      // Recovery-on-open: point at the previous incarnation's evidence
      // instead of silently clobbering it.
      std::fprintf(stderr,
                   "aims: previous flight-record bundle preserved at %s\n",
                   recorder_->previous_bundle_path().c_str());
    }
    if (config.obs.flight_fatal_signal_handler) {
      // Best-effort: a second server in the process (or a sanitizer that
      // owns these signals) simply goes without the crash hook.
      (void)recorder_->InstallFatalSignalHandler();
    }
    recorder_->Start();
  }

  if (config.obs.watchdog_interval_ms > 0.0) watchdog_->Start();
  if (config.retention.interval_ms > 0.0) sweeper_->Start();
  if (config.obs.reporter_interval_ms > 0.0) reporter_->Start();
  if (scraper_ != nullptr && config.obs.history_scrape_interval_ms > 0.0) {
    scraper_->Start();
  }

  if (config.obs.admin_port >= 0) {
    obs::AdminHttpConfig admin_config = config.obs.admin;
    admin_config.port = config.obs.admin_port;
    admin_ = std::make_unique<obs::AdminHttpServer>(admin_config);
    WireAdminRoutes();
    // A failed bind (port in use) degrades to "no admin plane", recorded
    // in admin_status_ — the data plane never pays for the operator port.
    admin_status_ = admin_->Start();
    if (!admin_status_.ok()) admin_.reset();
  }
}

AimsServer::~AimsServer() { Shutdown(); }

Status AimsServer::AddVocabularyEntry(std::string label,
                                      linalg::Matrix segment) {
  if (recognition_->open_streams() > 0) {
    return Status::FailedPrecondition(
        "AddVocabularyEntry: vocabulary is immutable while recognition "
        "streams are open");
  }
  vocabulary_.Add(std::move(label), std::move(segment));
  return Status::OK();
}

Result<OpenSessionResponse> AimsServer::OpenSession(
    const OpenSessionRequest& request) {
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (sessions_.count(request.client) != 0) {
      return Status::AlreadyExists(
          "OpenSession: client already has an open session");
    }
  }
  if (request.enable_recognition) {
    // OpenStream enforces the non-empty-vocabulary precondition and the
    // one-stream-per-client invariant.
    AIMS_RETURN_NOT_OK(recognition_->OpenStream(request.client));
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_[request.client] =
        SessionState{/*recognition=*/request.enable_recognition};
  }
  OpenSessionResponse response;
  response.client = request.client;
  // Placement-opaque by design: the response carries no shard index. The
  // router decides (and may later change) where this client's data lives.
  response.router_epoch = catalog_->router().epoch();
  return response;
}

Result<IngestRecordingResponse> AimsServer::IngestRecording(
    IngestRecordingRequest request) {
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (sessions_.count(request.client) == 0) {
      return Status::NotFound("IngestRecording: no open session for client");
    }
  }
  IngestRecordingResponse response;
  response.num_frames = request.recording.num_frames();
  response.num_channels = request.recording.num_channels();

  // Blocking convenience over the asynchronous pipeline: admission and
  // retry policy still apply, we just wait for the completion callback.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  Result<GlobalSessionId> outcome =
      Status::Internal("ingest did not complete");
  Status admitted = ingest_->Submit(
      request.client, std::move(request.name), std::move(request.recording),
      [&](const Result<GlobalSessionId>& result) {
        std::lock_guard<std::mutex> lock(done_mutex);
        outcome = result;
        done = true;
        done_cv.notify_all();
      });
  AIMS_RETURN_NOT_OK(admitted);
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
  AIMS_ASSIGN_OR_RETURN(response.session, outcome);
  return response;
}

Result<SubmitQueryResponse> AimsServer::SubmitQuery(
    const SubmitQueryRequest& request) {
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (sessions_.count(request.client) == 0) {
      return Status::NotFound("SubmitQuery: no open session for client");
    }
  }
  SubmitQueryResponse response;
  // The session check above makes the client id trustworthy, so it becomes
  // the ledger's attribution key for everything the query consumes.
  QueryRequest query = request.query;
  query.tenant = request.client;
  AIMS_ASSIGN_OR_RETURN(response.ticket, scheduler_->Submit(std::move(query)));
  return response;
}

Result<StreamSamplesResponse> AimsServer::StreamSamples(
    StreamSamplesRequest request) {
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(request.client);
    if (it == sessions_.end()) {
      return Status::NotFound("StreamSamples: no open session for client");
    }
    if (!it->second.recognition) {
      return Status::FailedPrecondition(
          "StreamSamples: session was opened without recognition; set "
          "OpenSessionRequest::enable_recognition");
    }
  }
  StreamSamplesResponse response;
  // One trace per batch: a root span with one recognizer_update child per
  // frame and a classification_event marker per recognized motion — the
  // online-query counterpart of the scheduler's query traces.
  std::optional<Trace> trace;
  if (config_.obs.enable_tracing) {
    trace.emplace(tracer_->NextRequestId());
    trace->set_label("stream_samples client=" + std::to_string(request.client) +
                     " frames=" + std::to_string(request.frames.size()));
    trace->BeginSpan("stream_samples");
  }
  Trace* trace_ptr = trace.has_value() ? &*trace : nullptr;
  obs::TenantLedger* tenant =
      config_.obs.enable_cost_ledger
          ? cost_ledger_->ForTenant(request.client)
          : nullptr;
  if (tenant != nullptr) tenant->CountStreamBatch();
  obs::ScopedCpuCharge cpu_charge(tenant);
  for (const streams::Frame& frame : request.frames) {
    auto event = recognition_->PushFrame(request.client, frame, trace_ptr);
    if (!event.ok()) {
      // Record what the batch did up to the failing frame, then fail.
      if (trace.has_value()) tracer_->Record(std::move(*trace));
      return event.status();
    }
    ++response.frames_pushed;
    if (event->has_value()) response.events.push_back(std::move(**event));
  }
  if (trace.has_value()) tracer_->Record(std::move(*trace));
  return response;
}

Result<GetHealthResponse> AimsServer::GetHealth(
    const GetHealthRequest& request) {
  GetHealthResponse response;
  response.health =
      request.force_refresh ? reporter_->SnapshotNow() : reporter_->Latest();
  response.reporter_running = reporter_->running();
  if (config_.obs.enable_cache_stats) {
    response.cache = catalog_->TotalCacheStats();
  }
  if (config_.obs.enable_wal_stats && catalog_->durable()) {
    response.wal = catalog_->TotalWalStats();
  }
  return response;
}

Result<GetTenantUsageResponse> AimsServer::GetTenantUsage(
    const GetTenantUsageRequest& request) {
  if (!config_.obs.enable_cost_ledger) {
    return Status::FailedPrecondition(
        "GetTenantUsage: cost ledger disabled "
        "(ObsConfig::enable_cost_ledger)");
  }
  GetTenantUsageResponse response;
  if (request.client.has_value()) {
    std::optional<obs::TenantUsage> usage =
        cost_ledger_->Usage(*request.client);
    if (!usage.has_value()) {
      return Status::NotFound(
          "GetTenantUsage: ledger has no charges for client");
    }
    response.tenants.push_back(TenantUsageEntry{*request.client, *usage});
    response.total = *usage;
    return response;
  }
  for (const auto& [client, usage] : cost_ledger_->Snapshot()) {
    response.tenants.push_back(TenantUsageEntry{client, usage});
    response.total.Accumulate(usage);
  }
  return response;
}

Result<QueryMetricsHistoryResponse> AimsServer::QueryMetricsHistory(
    const QueryMetricsHistoryRequest& request) {
  if (history_ == nullptr) {
    return Status::FailedPrecondition(
        "QueryMetricsHistory: metrics history disabled "
        "(ObsConfig::enable_metrics_history)");
  }
  obs::RangeQuery query;
  query.series = request.series;
  query.func = request.func;
  query.quantile = request.quantile;
  query.start_ms = request.start_ms;
  query.end_ms =
      request.end_ms != 0
          ? request.end_ms
          : std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count();
  query.step_ms = request.step_ms;
  QueryMetricsHistoryResponse response;
  response.series = request.series;
  response.func = request.func;
  AIMS_ASSIGN_OR_RETURN(response.points,
                        obs::EvaluateRangeQuery(*history_, query));
  return response;
}

Result<GetShardStatsResponse> AimsServer::GetShardStats(
    const GetShardStatsRequest& request) {
  (void)request;
  GetShardStatsResponse response;
  response.router_epoch = catalog_->router().epoch();
  response.shards = catalog_->ShardStats();
  return response;
}

Result<TriggerRebalanceResponse> AimsServer::TriggerRebalance(
    const TriggerRebalanceRequest& request) {
  TriggerRebalanceResponse response;

  // Build the plan: one explicit move, or planner-derived from the ledger.
  if (request.client.has_value() != request.target_shard.has_value()) {
    return Status::InvalidArgument(
        "TriggerRebalance: set both client and target_shard (explicit "
        "move) or neither (planner-driven)");
  }
  if (request.client.has_value()) {
    if (*request.target_shard >= catalog_->num_shards()) {
      return Status::InvalidArgument("TriggerRebalance: no such shard");
    }
    RebalanceMove move;
    move.client = *request.client;
    move.from_shard = catalog_->router().ShardForClient(*request.client);
    move.to_shard = *request.target_shard;
    if (move.from_shard != move.to_shard) response.plan.moves.push_back(move);
  } else {
    if (!config_.obs.enable_cost_ledger) {
      return Status::FailedPrecondition(
          "TriggerRebalance: planner mode needs the cost ledger "
          "(ObsConfig::enable_cost_ledger)");
    }
    RebalancePlanner planner;
    response.plan = planner.Plan(cost_ledger_->Snapshot(), catalog_->router(),
                                 catalog_->num_shards());
  }
  if (request.dry_run || response.plan.moves.empty()) return response;

  {
    std::lock_guard<std::mutex> lock(rebalance_mutex_);
    if (rebalance_.running) {
      return Status::AlreadyExists(
          "TriggerRebalance: a rebalance is already running");
    }
    if (shut_down_) {
      return Status::FailedPrecondition("TriggerRebalance: server shut down");
    }
    rebalance_ = RebalanceRun{};
    rebalance_.running = true;
    rebalance_.moves = response.plan.moves;
  }
  // Execute asynchronously: the moves run sequentially on the executor
  // (one migration at a time by design) while this call returns
  // immediately. Shutdown drains the pool, so the run always finishes or
  // fails before teardown.
  std::vector<RebalanceMove> moves = response.plan.moves;
  bool submitted = pool_->Submit([this, moves]() {
    for (const RebalanceMove& move : moves) {
      Status status = migrator_->MigrateTenant(move.client, move.to_shard);
      std::lock_guard<std::mutex> lock(rebalance_mutex_);
      if (!status.ok()) {
        rebalance_.error = status.message();
        rebalance_.running = false;
        return;
      }
      ++rebalance_.completed;
    }
    std::lock_guard<std::mutex> lock(rebalance_mutex_);
    rebalance_.running = false;
  });
  if (!submitted) {
    std::lock_guard<std::mutex> lock(rebalance_mutex_);
    rebalance_.running = false;
    return Status::FailedPrecondition(
        "TriggerRebalance: executor rejected the rebalance task");
  }
  response.started = true;
  return response;
}

Result<RebalanceStatusResponse> AimsServer::RebalanceStatus(
    const RebalanceStatusRequest& request) {
  (void)request;
  RebalanceStatusResponse response;
  {
    std::lock_guard<std::mutex> lock(rebalance_mutex_);
    response.running = rebalance_.running;
    response.moves = rebalance_.moves;
    response.completed_moves = rebalance_.completed;
    response.error = rebalance_.error;
  }
  response.migration = migrator_->status();
  response.router_epoch = catalog_->router().epoch();
  return response;
}

Result<DumpFlightRecordResponse> AimsServer::DumpFlightRecord(
    const DumpFlightRecordRequest& request) {
  if (recorder_ == nullptr) {
    return Status::FailedPrecondition(
        "DumpFlightRecord: flight recorder disabled "
        "(ObsConfig::enable_flight_recorder)");
  }
  DumpFlightRecordResponse response;
  if (request.write_file && !recorder_->bundle_path().empty()) {
    AIMS_ASSIGN_OR_RETURN(response.path, recorder_->Dump(request.reason));
  }
  response.bundle_json = recorder_->RenderBundle(request.reason);
  return response;
}

Result<AdminFaultResponse> AimsServer::AdminFault(
    const AdminFaultRequest& request) {
  return catalog_->ApplyFault(request);
}

Result<ClearCacheResponse> AimsServer::ClearCache(
    const ClearCacheRequest& request) {
  return catalog_->ClearCache(request);
}

Result<RegisterAggregateResponse> AimsServer::RegisterAggregate(
    const RegisterAggregateRequest& request) {
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (sessions_.count(request.client) == 0) {
      return Status::NotFound("RegisterAggregate: no open session for client");
    }
  }
  AggregateSpec spec;
  spec.client = request.client;
  spec.channel = request.channel;
  spec.first_frame = request.first_frame;
  spec.last_frame = request.last_frame;
  AIMS_ASSIGN_OR_RETURN(RegisteredAggregate registered,
                        aggregates_->Register(spec));
  RegisterAggregateResponse response;
  response.handle = registered.handle;
  response.sessions_backfilled = registered.sessions_backfilled;
  return response;
}

Result<UnregisterAggregateResponse> AimsServer::UnregisterAggregate(
    const UnregisterAggregateRequest& request) {
  AIMS_RETURN_NOT_OK(aggregates_->Unregister(request.handle));
  return UnregisterAggregateResponse{};
}

Result<SetRetentionPolicyResponse> AimsServer::SetRetentionPolicy(
    const SetRetentionPolicyRequest& request) {
  if (request.clear) {
    if (!request.client.has_value()) {
      return Status::InvalidArgument(
          "SetRetentionPolicy: clear requires a client (the default policy "
          "can be replaced, not cleared)");
    }
    sweeper_->ClearTenantPolicy(*request.client);
  } else if (request.client.has_value()) {
    sweeper_->SetTenantPolicy(*request.client, request.policy);
  } else {
    sweeper_->SetDefaultPolicy(request.policy);
  }
  return SetRetentionPolicyResponse{};
}

Result<TriggerRetentionSweepResponse> AimsServer::TriggerRetentionSweep(
    const TriggerRetentionSweepRequest& request) {
  TriggerRetentionSweepResponse response;
  AIMS_ASSIGN_OR_RETURN(response.stats, sweeper_->SweepNow(request.now_us));
  return response;
}

Result<CloseSessionResponse> AimsServer::CloseSession(
    const CloseSessionRequest& request) {
  SessionState state;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(request.client);
    if (it == sessions_.end()) {
      return Status::NotFound("CloseSession: no open session for client");
    }
    state = it->second;
    sessions_.erase(it);
  }
  CloseSessionResponse response;
  if (state.recognition) {
    AIMS_ASSIGN_OR_RETURN(response.final_event,
                          recognition_->CloseStream(request.client));
  }
  return response;
}

void AimsServer::WireAdminRoutes() {
  // /metrics: the extended Prometheus exposition, honoring the same
  // enable flags as the typed API — a disabled subsystem simply
  // contributes no families.
  admin_->Route("/metrics", [this](const obs::AdminRequest&) {
    obs::AdminResponse response;
    response.content_type = "text/plain; version=0.0.4";
    std::optional<obs::CacheStats> cache;
    std::optional<obs::WalStats> wal;
    if (config_.obs.enable_cache_stats) cache = catalog_->TotalCacheStats();
    if (config_.obs.enable_wal_stats && catalog_->durable()) {
      wal = catalog_->TotalWalStats();
    }
    std::vector<obs::ShardStatsEntry> shards = catalog_->ShardStats();
    std::vector<obs::SloStatus> slo;
    if (slo_ != nullptr) slo = slo_->Latest();
    response.body = obs::PrometheusExport(
        *metrics_, config_.obs.enable_tracing ? tracer_.get() : nullptr,
        config_.obs.enable_cost_ledger ? cost_ledger_.get() : nullptr,
        cache.has_value() ? &*cache : nullptr,
        wal.has_value() ? &*wal : nullptr, &shards,
        slo_ != nullptr ? &slo : nullptr);
    return response;
  });

  // /healthz: 200 while Ok/Degraded, 503 once Saturated — the load
  // balancer contract. "?refresh" (or any query naming it) forces an
  // on-demand evaluation; so does a reporter that has never snapshotted.
  admin_->Route("/healthz", [this](const obs::AdminRequest& request) {
    obs::AdminResponse response;
    obs::HealthSnapshot snapshot =
        request.query.find("refresh") != std::string::npos
            ? reporter_->SnapshotNow()
            : reporter_->Latest();
    if (snapshot.sequence == 0) snapshot = reporter_->SnapshotNow();
    if (snapshot.level == obs::HealthLevel::kSaturated) response.status = 503;
    response.body = obs::HealthSnapshotJson(snapshot) + "\n";
    return response;
  });

  // /shards: the GetShardStats surface as JSON.
  admin_->Route("/shards", [this](const obs::AdminRequest&) {
    obs::AdminResponse response;
    std::string body =
        "{\"router_epoch\":" + std::to_string(catalog_->router().epoch()) +
        ",\"shards\":[";
    bool first = true;
    for (const obs::ShardStatsEntry& s : catalog_->ShardStats()) {
      if (!first) body += ",";
      first = false;
      body += "{\"shard\":" + std::to_string(s.shard) +
              ",\"sessions\":" + std::to_string(s.sessions) +
              ",\"tenants\":" + std::to_string(s.tenants) +
              ",\"ingests\":" + std::to_string(s.ingests) +
              ",\"queries\":" + std::to_string(s.queries) +
              ",\"lock_wait_p50_ms\":" +
              obs::TrimmedDouble(s.lock_wait_p50_ms) +
              ",\"lock_wait_p99_ms\":" +
              obs::TrimmedDouble(s.lock_wait_p99_ms) +
              ",\"wal_lag_bytes\":" + std::to_string(s.wal_lag_bytes) +
              ",\"queue_depth\":" + std::to_string(s.queue_depth) + "}";
    }
    response.body = body + "]}\n";
    return response;
  });

  // /tenants and /tenants/<id>: the GetTenantUsage surface as JSON
  // (404 for an uncharged tenant, 503 while the ledger is disabled).
  auto tenants = [this](std::optional<ClientId> client) {
    GetTenantUsageRequest request;
    request.client = client;
    Result<GetTenantUsageResponse> result = GetTenantUsage(request);
    if (!result.ok()) return AdminError(result.status());
    obs::AdminResponse response;
    std::string body = "{\"tenants\":[";
    bool first = true;
    for (const TenantUsageEntry& entry : result->tenants) {
      if (!first) body += ",";
      first = false;
      body += TenantUsageJson(entry.client, entry.usage);
    }
    body += "],\"total\":";
    body += TenantUsageJson(0, result->total);
    response.body = body + "}\n";
    return response;
  };
  admin_->Route("/tenants", [tenants](const obs::AdminRequest&) {
    return tenants(std::nullopt);
  });
  admin_->RoutePrefix("/tenants/", [tenants](const obs::AdminRequest& req) {
    const std::string suffix = req.path.substr(sizeof("/tenants/") - 1);
    char* end = nullptr;
    unsigned long long id = std::strtoull(suffix.c_str(), &end, 10);
    if (suffix.empty() || end == nullptr || *end != '\0') {
      obs::AdminResponse response;
      response.status = 400;
      response.body = "{\"error\":\"bad tenant id\"}\n";
      return response;
    }
    return tenants(static_cast<ClientId>(id));
  });

  // /traces: the retained traces as Chrome trace_event JSON — load the
  // body straight into Perfetto.
  admin_->Route("/traces", [this](const obs::AdminRequest&) {
    obs::AdminResponse response;
    if (!config_.obs.enable_tracing) {
      response.status = 404;
      response.body = "{\"error\":\"tracing disabled\"}\n";
      return response;
    }
    response.body = obs::ChromeTraceExport(*tracer_);
    return response;
  });

  // /api/v1/query_range: the metrics-history surface in Prometheus's
  // range-query API shape, so existing dashboards/scripts can point a
  // Prometheus HTTP client at AIMS itself. Times are unix SECONDS (float
  // ok), the query is "<series>" or "<func>(<series>)" with the
  // obs::ParseRangeFunc vocabulary, and the answer is a one-series
  // matrix: {"status":"success","data":{"resultType":"matrix",...}}.
  admin_->Route("/api/v1/query_range", [this](const obs::AdminRequest& req) {
    obs::AdminResponse response;
    auto error = [&response](int status, const std::string& message) {
      response.status = status;
      response.body = "{\"status\":\"error\",\"errorType\":\"bad_data\","
                      "\"error\":\"" +
                      obs::JsonEscape(message) + "\"}\n";
      return response;
    };
    if (history_ == nullptr) {
      return error(404, "metrics history disabled");
    }
    const std::map<std::string, std::string> params =
        obs::ParseQueryParams(req.query);
    auto get = [&params](const char* key) -> const std::string* {
      auto it = params.find(key);
      return it == params.end() ? nullptr : &it->second;
    };
    const std::string* query_expr = get("query");
    const std::string* start = get("start");
    const std::string* end = get("end");
    if (query_expr == nullptr || query_expr->empty() || start == nullptr ||
        end == nullptr) {
      return error(400, "query, start, and end are required");
    }
    obs::RangeQuery query;
    // "<func>(<series>)" selects the aggregation; a bare series name
    // averages each window.
    std::string expr = *query_expr;
    const size_t paren = expr.find('(');
    if (paren != std::string::npos && expr.back() == ')') {
      if (!obs::ParseRangeFunc(expr.substr(0, paren), &query.func)) {
        return error(400, "unknown function: " + expr.substr(0, paren));
      }
      expr = expr.substr(paren + 1, expr.size() - paren - 2);
    }
    query.series = expr;
    // Unix seconds (fractional ok) -> ms. Strict: the whole string must be
    // one finite number ("nan"/"inf" would cast to int64 as UB), and the
    // magnitude must stay within the range-query timestamp bound — which
    // also keeps the double->int64 cast defined (the bound is far below
    // where the cast becomes UB).
    auto parse_ms = [](const std::string& text, int64_t* out) {
      char* parse_end = nullptr;
      const double seconds = std::strtod(text.c_str(), &parse_end);
      if (parse_end == text.c_str() || *parse_end != '\0' ||
          !std::isfinite(seconds)) {
        return false;
      }
      const double ms = seconds * 1000.0;
      if (ms < -static_cast<double>(obs::kMaxRangeQueryTimestampMs) ||
          ms > static_cast<double>(obs::kMaxRangeQueryTimestampMs)) {
        return false;
      }
      *out = static_cast<int64_t>(ms);
      return true;
    };
    if (!parse_ms(*start, &query.start_ms)) return error(400, "bad start");
    if (!parse_ms(*end, &query.end_ms)) return error(400, "bad end");
    if (const std::string* step = get("step")) {
      if (!parse_ms(*step, &query.step_ms) || query.step_ms <= 0) {
        return error(400, "bad step");
      }
    }
    if (const std::string* quantile = get("quantile")) {
      query.quantile = std::strtod(quantile->c_str(), nullptr);
    }
    Result<std::vector<obs::RangePoint>> points =
        obs::EvaluateRangeQuery(*history_, query);
    if (!points.ok()) return error(400, points.status().message());
    std::string body =
        "{\"status\":\"success\",\"data\":{\"resultType\":\"matrix\","
        "\"result\":[";
    if (!points->empty()) {
      body += "{\"metric\":{\"__name__\":\"" + obs::JsonEscape(query.series) +
              "\"},\"values\":[";
      bool first = true;
      for (const obs::RangePoint& point : *points) {
        if (!first) body += ',';
        first = false;
        body += "[" +
                obs::TrimmedDouble(static_cast<double>(point.t_ms) / 1000.0) +
                ",\"" + obs::TrimmedDouble(point.value) + "\"]";
      }
      body += "]}";
    }
    response.body = body + "]}}\n";
    return response;
  });

  // /debug/flightrecord: the black box rendered on demand (in-memory:
  // this is the only way to read it while the process lives).
  admin_->Route("/debug/flightrecord", [this](const obs::AdminRequest&) {
    obs::AdminResponse response;
    if (recorder_ == nullptr) {
      response.status = 404;
      response.body = "{\"error\":\"flight recorder disabled\"}\n";
      return response;
    }
    response.body = recorder_->RenderBundle("http request");
    return response;
  });
}

void AimsServer::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // Order matters: admitted ingests and queries must finish while the pool
  // is still running; only then may the workers be joined. Services and
  // catalog are destroyed after the pool, so in-flight tasks never dangle.
  // The admin listener goes first (its handlers read everything below),
  // then the watchdog (so winding-down components are never judged
  // stalled), then the reporter so its thread never reads the registry
  // while the rest of the teardown is in flight.
  if (admin_ != nullptr) admin_->Stop();
  // The sweeper stops while the watchdog is still alive (it disarms its
  // heartbeat handle), and before the catalog teardown its sweeps lock.
  if (sweeper_ != nullptr) sweeper_->Stop();
  if (watchdog_ != nullptr) watchdog_->Stop();
  // The scraper stops before the reporter: its post-scrape hook raises
  // health through the SLO engine, which the reporter reads.
  if (scraper_ != nullptr) scraper_->Stop();
  reporter_->Stop();
  ingest_->Drain();
  scheduler_->Drain();
  // All queries have published by now, so stopping the logger (join +
  // final flush) makes every slow-query record durable before teardown.
  if (slow_log_ != nullptr) slow_log_->Stop();
  // The recorder's shutdown bundle captures post-drain state; it stops
  // before the pool so the final persist sees the workers' last beats.
  if (recorder_ != nullptr) recorder_->Stop();
  pool_->Shutdown();
}

}  // namespace aims::server
