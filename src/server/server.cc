#include "server/server.h"

#include <condition_variable>
#include <utility>

#include "common/macros.h"

namespace aims::server {

AimsServer::AimsServer(ServerConfig config)
    : config_(config),
      // Registry and tracer are always constructed (the accessors promise a
      // valid reference); the enable flags only decide whether the services
      // get a pointer, so disabling observability leaves the services'
      // null-checks as the entire instrumentation cost.
      metrics_(std::make_unique<MetricsRegistry>()),
      tracer_(std::make_unique<Tracer>(config.obs.trace_capacity)),
      cost_ledger_(std::make_unique<obs::CostLedger>()),
      // Slow-query logging needs both a threshold and a destination; with
      // either missing, the scheduler still counts slow queries but the
      // logger is never built.
      slow_log_stream_([&]() -> std::unique_ptr<std::ofstream> {
        if (config.obs.slow_query_threshold_ms <= 0.0 ||
            config.obs.slow_query_log_path.empty()) {
          return nullptr;
        }
        return std::make_unique<std::ofstream>(
            config.obs.slow_query_log_path, std::ios::out | std::ios::trunc);
      }()),
      slow_log_(slow_log_stream_ != nullptr
                    ? std::make_unique<obs::AsyncLogger>(
                          slow_log_stream_.get(), config.obs.slow_query_log)
                    : nullptr),
      catalog_(std::make_unique<ShardedCatalog>(
          config.num_shards, config.system,
          config.obs.enable_metrics ? metrics_.get() : nullptr)),
      migrator_(std::make_unique<DataMigrator>(catalog_.get())),
      pool_(std::make_unique<ThreadPool>(config.num_threads)),
      ingest_(std::make_unique<IngestService>(
          catalog_.get(), pool_.get(), config.admission,
          config.obs.enable_metrics ? metrics_.get() : nullptr,
          config.obs.enable_tracing ? tracer_.get() : nullptr,
          config.obs.enable_cost_ledger ? cost_ledger_.get() : nullptr)),
      scheduler_(std::make_unique<QueryScheduler>(
          catalog_.get(), pool_.get(), config.scheduler,
          config.obs.enable_tracing ? tracer_.get() : nullptr,
          config.obs.enable_metrics ? metrics_.get() : nullptr,
          config.obs.enable_cost_ledger ? cost_ledger_.get() : nullptr,
          slow_log_.get(), config.obs.slow_query_threshold_ms)),
      recognition_(std::make_unique<RecognitionService>(
          &vocabulary_, config.recognizer,
          config.obs.enable_metrics ? metrics_.get() : nullptr)) {
  obs::StatsReporterConfig reporter_config = config.obs.reporter;
  if (config.obs.reporter_interval_ms > 0.0) {
    reporter_config.interval_ms = config.obs.reporter_interval_ms;
  }
  reporter_ =
      std::make_unique<obs::StatsReporter>(metrics_.get(), reporter_config);
  if (config.obs.reporter_interval_ms > 0.0) reporter_->Start();
}

AimsServer::~AimsServer() { Shutdown(); }

Status AimsServer::AddVocabularyEntry(std::string label,
                                      linalg::Matrix segment) {
  if (recognition_->open_streams() > 0) {
    return Status::FailedPrecondition(
        "AddVocabularyEntry: vocabulary is immutable while recognition "
        "streams are open");
  }
  vocabulary_.Add(std::move(label), std::move(segment));
  return Status::OK();
}

Result<OpenSessionResponse> AimsServer::OpenSession(
    const OpenSessionRequest& request) {
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (sessions_.count(request.client) != 0) {
      return Status::AlreadyExists(
          "OpenSession: client already has an open session");
    }
  }
  if (request.enable_recognition) {
    // OpenStream enforces the non-empty-vocabulary precondition and the
    // one-stream-per-client invariant.
    AIMS_RETURN_NOT_OK(recognition_->OpenStream(request.client));
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_[request.client] =
        SessionState{/*recognition=*/request.enable_recognition};
  }
  OpenSessionResponse response;
  response.client = request.client;
  // Placement-opaque by design: the response carries no shard index. The
  // router decides (and may later change) where this client's data lives.
  response.router_epoch = catalog_->router().epoch();
  return response;
}

Result<IngestRecordingResponse> AimsServer::IngestRecording(
    IngestRecordingRequest request) {
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (sessions_.count(request.client) == 0) {
      return Status::NotFound("IngestRecording: no open session for client");
    }
  }
  IngestRecordingResponse response;
  response.num_frames = request.recording.num_frames();
  response.num_channels = request.recording.num_channels();

  // Blocking convenience over the asynchronous pipeline: admission and
  // retry policy still apply, we just wait for the completion callback.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  Result<GlobalSessionId> outcome =
      Status::Internal("ingest did not complete");
  Status admitted = ingest_->Submit(
      request.client, std::move(request.name), std::move(request.recording),
      [&](const Result<GlobalSessionId>& result) {
        std::lock_guard<std::mutex> lock(done_mutex);
        outcome = result;
        done = true;
        done_cv.notify_all();
      });
  AIMS_RETURN_NOT_OK(admitted);
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
  AIMS_ASSIGN_OR_RETURN(response.session, outcome);
  return response;
}

Result<SubmitQueryResponse> AimsServer::SubmitQuery(
    const SubmitQueryRequest& request) {
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (sessions_.count(request.client) == 0) {
      return Status::NotFound("SubmitQuery: no open session for client");
    }
  }
  SubmitQueryResponse response;
  // The session check above makes the client id trustworthy, so it becomes
  // the ledger's attribution key for everything the query consumes.
  QueryRequest query = request.query;
  query.tenant = request.client;
  AIMS_ASSIGN_OR_RETURN(response.ticket, scheduler_->Submit(std::move(query)));
  return response;
}

Result<StreamSamplesResponse> AimsServer::StreamSamples(
    StreamSamplesRequest request) {
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(request.client);
    if (it == sessions_.end()) {
      return Status::NotFound("StreamSamples: no open session for client");
    }
    if (!it->second.recognition) {
      return Status::FailedPrecondition(
          "StreamSamples: session was opened without recognition; set "
          "OpenSessionRequest::enable_recognition");
    }
  }
  StreamSamplesResponse response;
  // One trace per batch: a root span with one recognizer_update child per
  // frame and a classification_event marker per recognized motion — the
  // online-query counterpart of the scheduler's query traces.
  std::optional<Trace> trace;
  if (config_.obs.enable_tracing) {
    trace.emplace(tracer_->NextRequestId());
    trace->set_label("stream_samples client=" + std::to_string(request.client) +
                     " frames=" + std::to_string(request.frames.size()));
    trace->BeginSpan("stream_samples");
  }
  Trace* trace_ptr = trace.has_value() ? &*trace : nullptr;
  obs::TenantLedger* tenant =
      config_.obs.enable_cost_ledger
          ? cost_ledger_->ForTenant(request.client)
          : nullptr;
  if (tenant != nullptr) tenant->CountStreamBatch();
  obs::ScopedCpuCharge cpu_charge(tenant);
  for (const streams::Frame& frame : request.frames) {
    auto event = recognition_->PushFrame(request.client, frame, trace_ptr);
    if (!event.ok()) {
      // Record what the batch did up to the failing frame, then fail.
      if (trace.has_value()) tracer_->Record(std::move(*trace));
      return event.status();
    }
    ++response.frames_pushed;
    if (event->has_value()) response.events.push_back(std::move(**event));
  }
  if (trace.has_value()) tracer_->Record(std::move(*trace));
  return response;
}

Result<GetHealthResponse> AimsServer::GetHealth(
    const GetHealthRequest& request) {
  GetHealthResponse response;
  response.health =
      request.force_refresh ? reporter_->SnapshotNow() : reporter_->Latest();
  response.reporter_running = reporter_->running();
  if (config_.obs.enable_cache_stats) {
    response.cache = catalog_->TotalCacheStats();
  }
  if (config_.obs.enable_wal_stats && catalog_->durable()) {
    response.wal = catalog_->TotalWalStats();
  }
  return response;
}

Result<GetTenantUsageResponse> AimsServer::GetTenantUsage(
    const GetTenantUsageRequest& request) {
  if (!config_.obs.enable_cost_ledger) {
    return Status::FailedPrecondition(
        "GetTenantUsage: cost ledger disabled "
        "(ObsConfig::enable_cost_ledger)");
  }
  GetTenantUsageResponse response;
  if (request.client.has_value()) {
    std::optional<obs::TenantUsage> usage =
        cost_ledger_->Usage(*request.client);
    if (!usage.has_value()) {
      return Status::NotFound(
          "GetTenantUsage: ledger has no charges for client");
    }
    response.tenants.push_back(TenantUsageEntry{*request.client, *usage});
    response.total = *usage;
    return response;
  }
  for (const auto& [client, usage] : cost_ledger_->Snapshot()) {
    response.tenants.push_back(TenantUsageEntry{client, usage});
    response.total.Accumulate(usage);
  }
  return response;
}

Result<GetShardStatsResponse> AimsServer::GetShardStats(
    const GetShardStatsRequest& request) {
  (void)request;
  GetShardStatsResponse response;
  response.router_epoch = catalog_->router().epoch();
  response.shards = catalog_->ShardStats();
  return response;
}

Result<TriggerRebalanceResponse> AimsServer::TriggerRebalance(
    const TriggerRebalanceRequest& request) {
  TriggerRebalanceResponse response;

  // Build the plan: one explicit move, or planner-derived from the ledger.
  if (request.client.has_value() != request.target_shard.has_value()) {
    return Status::InvalidArgument(
        "TriggerRebalance: set both client and target_shard (explicit "
        "move) or neither (planner-driven)");
  }
  if (request.client.has_value()) {
    if (*request.target_shard >= catalog_->num_shards()) {
      return Status::InvalidArgument("TriggerRebalance: no such shard");
    }
    RebalanceMove move;
    move.client = *request.client;
    move.from_shard = catalog_->router().ShardForClient(*request.client);
    move.to_shard = *request.target_shard;
    if (move.from_shard != move.to_shard) response.plan.moves.push_back(move);
  } else {
    if (!config_.obs.enable_cost_ledger) {
      return Status::FailedPrecondition(
          "TriggerRebalance: planner mode needs the cost ledger "
          "(ObsConfig::enable_cost_ledger)");
    }
    RebalancePlanner planner;
    response.plan = planner.Plan(cost_ledger_->Snapshot(), catalog_->router(),
                                 catalog_->num_shards());
  }
  if (request.dry_run || response.plan.moves.empty()) return response;

  {
    std::lock_guard<std::mutex> lock(rebalance_mutex_);
    if (rebalance_.running) {
      return Status::AlreadyExists(
          "TriggerRebalance: a rebalance is already running");
    }
    if (shut_down_) {
      return Status::FailedPrecondition("TriggerRebalance: server shut down");
    }
    rebalance_ = RebalanceRun{};
    rebalance_.running = true;
    rebalance_.moves = response.plan.moves;
  }
  // Execute asynchronously: the moves run sequentially on the executor
  // (one migration at a time by design) while this call returns
  // immediately. Shutdown drains the pool, so the run always finishes or
  // fails before teardown.
  std::vector<RebalanceMove> moves = response.plan.moves;
  bool submitted = pool_->Submit([this, moves]() {
    for (const RebalanceMove& move : moves) {
      Status status = migrator_->MigrateTenant(move.client, move.to_shard);
      std::lock_guard<std::mutex> lock(rebalance_mutex_);
      if (!status.ok()) {
        rebalance_.error = status.message();
        rebalance_.running = false;
        return;
      }
      ++rebalance_.completed;
    }
    std::lock_guard<std::mutex> lock(rebalance_mutex_);
    rebalance_.running = false;
  });
  if (!submitted) {
    std::lock_guard<std::mutex> lock(rebalance_mutex_);
    rebalance_.running = false;
    return Status::FailedPrecondition(
        "TriggerRebalance: executor rejected the rebalance task");
  }
  response.started = true;
  return response;
}

Result<RebalanceStatusResponse> AimsServer::RebalanceStatus(
    const RebalanceStatusRequest& request) {
  (void)request;
  RebalanceStatusResponse response;
  {
    std::lock_guard<std::mutex> lock(rebalance_mutex_);
    response.running = rebalance_.running;
    response.moves = rebalance_.moves;
    response.completed_moves = rebalance_.completed;
    response.error = rebalance_.error;
  }
  response.migration = migrator_->status();
  response.router_epoch = catalog_->router().epoch();
  return response;
}

Result<AdminFaultResponse> AimsServer::AdminFault(
    const AdminFaultRequest& request) {
  return catalog_->ApplyFault(request);
}

Result<ClearCacheResponse> AimsServer::ClearCache(
    const ClearCacheRequest& request) {
  return catalog_->ClearCache(request);
}

Result<CloseSessionResponse> AimsServer::CloseSession(
    const CloseSessionRequest& request) {
  SessionState state;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(request.client);
    if (it == sessions_.end()) {
      return Status::NotFound("CloseSession: no open session for client");
    }
    state = it->second;
    sessions_.erase(it);
  }
  CloseSessionResponse response;
  if (state.recognition) {
    AIMS_ASSIGN_OR_RETURN(response.final_event,
                          recognition_->CloseStream(request.client));
  }
  return response;
}

void AimsServer::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // Order matters: admitted ingests and queries must finish while the pool
  // is still running; only then may the workers be joined. Services and
  // catalog are destroyed after the pool, so in-flight tasks never dangle.
  // The reporter goes first so its thread never reads the registry while
  // the rest of the teardown is in flight.
  reporter_->Stop();
  ingest_->Drain();
  scheduler_->Drain();
  // All queries have published by now, so stopping the logger (join +
  // final flush) makes every slow-query record durable before teardown.
  if (slow_log_ != nullptr) slow_log_->Stop();
  pool_->Shutdown();
}

}  // namespace aims::server
