#pragma once

#include "obs/metrics.h"

/// \file metrics.h
/// \brief Compatibility shim: the metrics primitives moved to the
/// subsystem-neutral aims::obs layer (obs/metrics.h) so the kernels below
/// the server can record into them too. Server code and its tests keep
/// using the aims::server names unchanged.

namespace aims::server {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;

}  // namespace aims::server
