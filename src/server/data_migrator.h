#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/cost_ledger.h"
#include "obs/watchdog.h"
#include "server/shard_router.h"
#include "server/sharded_catalog.h"

/// \file data_migrator.h
/// \brief Online tenant rebalancing over the ShardedCatalog:
///
///   * DataMigrator — drives the live-migration protocol for one tenant:
///     pin + quiesce (BeginTenantMigration), per-session copy under the
///     source's shared lock with a dual-read window (MigrateSession),
///     atomic routing flip (CommitTenantMigration). Queries and ingests to
///     the tenant keep running throughout; on the durable backend every
///     step is journaled so a crash recovers to exactly one owner.
///
///   * RebalancePlanner — turns the cost ledger's per-tenant usage into
///     hot-tenant moves: compute per-shard load through the router's
///     placement, then greedily move the heaviest movable tenant off the
///     hottest shard onto the coolest until the imbalance ratio drops
///     under the trigger (or the move budget runs out). Pure function of
///     its inputs — the caller decides whether to execute the plan.

namespace aims::server {

/// \brief Progress of the migrator's current (or most recent) run.
struct MigrationStatus {
  enum class State : uint8_t { kIdle, kRunning, kDone, kFailed };
  State state = State::kIdle;
  ClientId client = 0;
  size_t target_shard = 0;
  size_t sessions_total = 0;
  size_t sessions_moved = 0;
  /// Failure detail when state == kFailed.
  std::string error;
};

/// \brief Live tenant migration driver. One migration runs at a time
/// (FailedPrecondition otherwise); status is observable concurrently.
class DataMigrator {
 public:
  explicit DataMigrator(ShardedCatalog* catalog);

  /// \brief Moves every session of \p client to \p target_shard while the
  /// tenant stays fully serveable. Blocking; run it on an executor for
  /// async rebalancing. No-op success when the tenant is already there.
  Status MigrateTenant(ClientId client, size_t target_shard);

  MigrationStatus status() const;

  /// \brief Heartbeat slot armed for the span of each MigrateTenant run
  /// and beaten after every migrated session, so a migration wedged on one
  /// session's copy (shard lock, WAL) is a watchdog stall. The handle must
  /// outlive the migrator; null (default) disables.
  void SetWatchdog(obs::Watchdog::Handle* handle) { watchdog_ = handle; }

 private:
  void SetStatus(const MigrationStatus& status);

  ShardedCatalog* catalog_;
  std::mutex run_mutex_;  ///< Held for a whole MigrateTenant run.
  mutable std::mutex status_mutex_;
  MigrationStatus status_;
  /// Set at wiring time, before migrations run.
  obs::Watchdog::Handle* watchdog_ = nullptr;
};

/// \brief One proposed tenant move.
struct RebalanceMove {
  ClientId client = 0;
  size_t from_shard = 0;
  size_t to_shard = 0;
  /// The tenant's modeled load (see RebalancePlannerConfig weights).
  double load = 0.0;
};

/// \brief A plan plus the load model it was derived from.
struct RebalancePlan {
  std::vector<RebalanceMove> moves;
  /// Modeled per-shard load before / after applying the moves.
  std::vector<double> shard_load_before;
  std::vector<double> shard_load_after;
  /// max/mean load ratio before and after (1.0 = perfectly even).
  double imbalance_before = 0.0;
  double imbalance_after = 0.0;
};

/// \brief Load-model weights and stopping rules of the planner.
struct RebalancePlannerConfig {
  /// Load units per CPU millisecond / block I/O / queue millisecond a
  /// tenant consumed (ledger dimensions; see obs::TenantUsage).
  double cpu_weight_per_ms = 1.0;
  double io_weight_per_block = 0.05;
  double queue_weight_per_ms = 0.25;
  /// Plan moves only while max shard load > trigger_ratio * mean load.
  double trigger_ratio = 1.25;
  /// Upper bound on proposed moves per plan (a migration is expensive;
  /// rebalancing converges over several small plans, not one huge one).
  size_t max_moves = 4;
};

/// \brief Greedy hot-tenant spreading from ledger usage.
class RebalancePlanner {
 public:
  explicit RebalancePlanner(RebalancePlannerConfig config = {});

  /// \brief Proposes moves given per-tenant \p usage (a CostLedger
  /// snapshot), current placement from \p router, and \p num_shards.
  RebalancePlan Plan(
      const std::vector<std::pair<obs::TenantId, obs::TenantUsage>>& usage,
      const ShardRouter& router, size_t num_shards) const;

  /// \brief The modeled load of one tenant's usage (exposed for tests).
  double TenantLoad(const obs::TenantUsage& usage) const;

  const RebalancePlannerConfig& config() const { return config_; }

 private:
  RebalancePlannerConfig config_;
};

}  // namespace aims::server
