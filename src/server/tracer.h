#pragma once

#include "obs/tracer.h"

/// \file tracer.h
/// \brief Compatibility shim: request tracing moved to the
/// subsystem-neutral aims::obs layer (obs/tracer.h) so ingest, query, and
/// recognition paths all record into one span model. Server code and its
/// tests keep using the aims::server names unchanged.

namespace aims::server {

using obs::Trace;
using obs::Tracer;
using obs::TraceSpan;

}  // namespace aims::server
