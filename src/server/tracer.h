#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

/// \file tracer.h
/// \brief Lightweight request tracing for the service runtime. Where the
/// MetricsRegistry aggregates (how many queries, what p99), a Trace
/// decomposes ONE request's latency into named spans — admission wait,
/// shard-lock wait, every block I/O, the refinement loop — so a slow
/// request is explainable, not just countable. Traces are built lock-free
/// by the worker that owns the request and handed to a bounded, thread-safe
/// Tracer that exports them as JSON next to the metrics dump.

namespace aims::server {

/// \brief One named interval of a request's life, in milliseconds relative
/// to the request's submission.
struct TraceSpan {
  std::string name;
  double start_ms = 0.0;
  /// Negative while the span is open; EndSpan/CloseOpenSpans stamps it.
  double end_ms = -1.0;
};

/// \brief The span timeline of one request. Not thread-safe: a trace is
/// mutated only by the thread currently driving its request.
class Trace {
 public:
  /// Starts the clock: all span times are relative to construction.
  Trace() : epoch_(std::chrono::steady_clock::now()) {}
  explicit Trace(uint64_t request_id) : Trace() { request_id_ = request_id; }

  uint64_t request_id() const { return request_id_; }
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  /// Milliseconds since construction.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// \brief Opens a span starting now; returns its index for EndSpan.
  size_t BeginSpan(std::string name) {
    spans_.push_back(TraceSpan{std::move(name), ElapsedMs(), -1.0});
    return spans_.size() - 1;
  }

  /// \brief Closes span \p index at the current time (idempotent).
  void EndSpan(size_t index) {
    if (index < spans_.size() && spans_[index].end_ms < 0.0) {
      spans_[index].end_ms = ElapsedMs();
    }
  }

  /// \brief Records a span with explicit bounds (e.g. an interval that
  /// started before the current thread picked the request up).
  void AddSpan(std::string name, double start_ms, double end_ms) {
    spans_.push_back(TraceSpan{std::move(name), start_ms, end_ms});
  }

  /// \brief Stamps every still-open span with the current time; call
  /// before publishing a trace whose request ended abnormally.
  void CloseOpenSpans() {
    for (TraceSpan& span : spans_) {
      if (span.end_ms < 0.0) span.end_ms = ElapsedMs();
    }
  }

  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// \brief One JSON object:
  /// {"request_id":7,"label":"...","spans":[{"name":...,"start_ms":...,
  /// "end_ms":...},...]}.
  std::string ToJson() const;

 private:
  uint64_t request_id_ = 0;
  std::string label_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceSpan> spans_;
};

/// \brief Bounded, thread-safe collection of finished traces. Keeps the
/// most recent `capacity` traces; older ones are dropped (and counted), so
/// tracing never grows without bound under sustained load.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 512) : capacity_(capacity) {}

  void Record(Trace trace);

  /// Retained traces, oldest first.
  std::vector<Trace> Snapshot() const;

  uint64_t total_recorded() const;
  uint64_t dropped() const;

  /// \brief {"total_recorded":N,"dropped":D,"traces":[...]} — the JSON
  /// companion to MetricsRegistry::DumpText.
  std::string DumpJson() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<Trace> traces_;
  uint64_t total_recorded_ = 0;
};

}  // namespace aims::server
