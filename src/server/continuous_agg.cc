#include "server/continuous_agg.h"

#include <utility>

#include "common/macros.h"

namespace aims::server {

ContinuousAggregateRegistry::ContinuousAggregateRegistry(
    ShardedCatalog* catalog, MetricsRegistry* metrics)
    : catalog_(catalog) {
  AIMS_CHECK(catalog != nullptr);
  if (metrics != nullptr) {
    registered_ = metrics->GetCounter("tslife.aggregate_registrations");
    updates_ = metrics->GetCounter("tslife.aggregate_updates");
    backfills_ = metrics->GetCounter("tslife.aggregate_backfills");
    hits_ = metrics->GetCounter("tslife.aggregate_hits");
    active_ = metrics->GetGauge("tslife.aggregates_active");
  }
}

std::vector<core::StandingRangeQuery>
ContinuousAggregateRegistry::StandingQueriesLocked() const {
  std::vector<core::StandingRangeQuery> queries;
  queries.reserve(registrations_.size());
  for (const auto& [handle, reg] : registrations_) {
    core::StandingRangeQuery q;
    q.handle = handle;
    q.channel = reg.spec.channel;
    q.first_frame = reg.spec.first_frame;
    q.last_frame = reg.spec.last_frame;
    queries.push_back(q);
  }
  return queries;
}

Result<RegisteredAggregate> ContinuousAggregateRegistry::Register(
    const AggregateSpec& spec) {
  if (spec.first_frame > spec.last_frame) {
    return Status::InvalidArgument(
        "ContinuousAggregateRegistry::Register: first_frame > last_frame");
  }
  uint64_t handle = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    handle = next_handle_++;
    registrations_[handle].spec = spec;
    // Push down BEFORE backfilling: every ingest from here on maintains
    // the new registration, so the backfill below only has to cover
    // sessions that already existed.
    catalog_->SetStandingQueries(StandingQueriesLocked());
  }

  // Backfill outside the registry lock: QueryRange takes shard shared
  // locks and may be slow; concurrent hook updates interleave safely
  // (same exact value for any session both paths touch).
  RegisteredAggregate out;
  out.handle = handle;
  for (const CatalogSessionEntry& entry : catalog_->ListSessions()) {
    if (entry.client != spec.client) continue;
    Result<core::RangeStatistics> stats = catalog_->QueryRange(
        entry.id, spec.channel, spec.first_frame, spec.last_frame);
    if (!stats.ok()) continue;  // range does not fit this session
    AggregateResult value;
    value.sum = stats->sum;
    value.mean = stats->mean;
    value.count = stats->count;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = registrations_.find(handle);
    if (it == registrations_.end()) break;  // unregistered mid-backfill
    it->second.values[entry.id] = value;
    ++out.sessions_backfilled;
    if (backfills_ != nullptr) backfills_->Increment();
  }
  if (registered_ != nullptr) registered_->Increment();
  if (active_ != nullptr) active_->Add(1);
  return out;
}

Status ContinuousAggregateRegistry::Unregister(uint64_t handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = registrations_.find(handle);
  if (it == registrations_.end()) {
    return Status::NotFound(
        "ContinuousAggregateRegistry::Unregister: unknown handle");
  }
  registrations_.erase(it);
  catalog_->SetStandingQueries(StandingQueriesLocked());
  if (active_ != nullptr) active_->Add(-1);
  return Status::OK();
}

void ContinuousAggregateRegistry::OnIngestCommit(
    GlobalSessionId session, ClientId client,
    const std::vector<core::StandingRangeUpdate>& updates) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const core::StandingRangeUpdate& update : updates) {
    auto it = registrations_.find(update.handle);
    if (it == registrations_.end()) continue;  // unregistered in flight
    if (it->second.spec.client != client) continue;
    AggregateResult value;
    value.sum = update.sum;
    value.mean = update.mean;
    value.count = update.count;
    it->second.values[session] = value;
    if (updates_ != nullptr) updates_->Increment();
  }
}

std::optional<AggregateResult> ContinuousAggregateRegistry::Lookup(
    ClientId client, GlobalSessionId session, size_t channel,
    size_t first_frame, size_t last_frame) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [handle, reg] : registrations_) {
    (void)handle;
    if (reg.spec.client != client || reg.spec.channel != channel ||
        reg.spec.first_frame != first_frame ||
        reg.spec.last_frame != last_frame) {
      continue;
    }
    auto it = reg.values.find(session);
    if (it == reg.values.end()) continue;
    if (hits_ != nullptr) hits_->Increment();
    return it->second;
  }
  return std::nullopt;
}

void ContinuousAggregateRegistry::ForgetSession(GlobalSessionId session) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [handle, reg] : registrations_) {
    (void)handle;
    reg.values.erase(session);
  }
}

size_t ContinuousAggregateRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return registrations_.size();
}

}  // namespace aims::server
