#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "common/status.h"
#include "core/aims.h"
#include "obs/cost_ledger.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "server/metrics.h"
#include "server/sharded_catalog.h"
#include "server/thread_pool.h"
#include "server/tracer.h"

/// \file query_scheduler.h
/// \brief Deadline-aware scheduling of progressive offline queries — the
/// service-level realization of the paper's central promise that range
/// statistics are answered approximately first and refined as more wavelet
/// coefficients arrive. A client submits a typed QueryRequest and gets a
/// QueryTicket back immediately; the query executes on the shared
/// ThreadPool via the block-granular progressive evaluator, and three
/// properties hold that a blocking run-to-completion API cannot offer:
///
///   * deadlines: a query whose deadline expires mid-evaluation returns
///     its best partial answer with the current guaranteed error bound
///     instead of failing — more deadline buys a tighter bound;
///   * cancellation: a cancelled query stops at the next block-I/O
///     boundary, releasing its executor slot and its shard read lock
///     promptly (a cancelled query that never started does zero I/O);
///   * priority admission: interactive and batch lanes with bounded
///     pending queues that reject (ResourceExhausted) rather than block,
///     and a promotion rule that keeps the batch lane starvation-free
///     under sustained interactive load.
///
/// Every request carries a Trace decomposing its latency into spans
/// (admission wait, shard lock, each block I/O, the refinement loop),
/// recorded into the server's Tracer on completion.

namespace aims::server {

class ContinuousAggregateRegistry;

/// \brief Admission lane of a query.
enum class QueryPriority {
  kInteractive,  ///< Latency-sensitive; dispatched first.
  kBatch,        ///< Throughput work; served by the promotion rule.
};

/// \brief Introspection mode of a query (EXPLAIN / EXPLAIN ANALYZE).
enum class ExplainMode {
  kNone,     ///< Execute normally; no plan attached.
  kExplain,  ///< Return the plan only — zero block I/O, no evaluation.
  kAnalyze,  ///< Execute AND attach plan + per-stage actuals, reconciled.
};

/// \brief A typed range-statistics query over one stored channel.
struct QueryRequest {
  GlobalSessionId session = 0;
  size_t channel = 0;
  size_t first_frame = 0;
  size_t last_frame = 0;
  QueryPriority priority = QueryPriority::kInteractive;
  /// Wall-clock budget measured from submission; 0 disables the deadline.
  /// On expiry the query returns its best partial answer, never an error.
  double deadline_ms = 0.0;
  /// Stop refining once the guaranteed sum error bound is at or below this
  /// value (0 = run to exactness). A query stopped this way is complete:
  /// it delivered the accuracy that was asked for.
  double target_error_bound = 0.0;
  /// EXPLAIN/ANALYZE: kExplain returns QueryOutcome::plan without touching
  /// a block; kAnalyze executes and attaches plan + breakdown, reconciled.
  ExplainMode explain = ExplainMode::kNone;
  /// Tenant charged for this query's costs (set by AimsServer::SubmitQuery
  /// from the requesting client; 0 when submitted directly to the
  /// scheduler without a tenant).
  ClientId tenant = 0;
};

/// \brief Terminal (and transient) states of a scheduled query.
enum class QueryState {
  kPending,          ///< Admitted, waiting for an executor slot.
  kRunning,          ///< Evaluating on a pool worker.
  kComplete,         ///< Exact, or reached the requested error bound.
  kPartialDeadline,  ///< Deadline expired; best partial answer returned.
  kCancelled,        ///< Cancelled before or during evaluation.
  kFailed,           ///< Evaluation failed; see QueryOutcome::status.
};

/// \brief Human-readable state name (e.g. "PartialDeadline").
const char* QueryStateName(QueryState state);

/// \brief The (possibly partial) answer of a scheduled query.
struct QueryAnswer {
  double sum = 0.0;
  double mean = 0.0;
  size_t count = 0;
  /// Guaranteed bound on |sum - exact sum|; 0 when exact.
  double error_bound = 0.0;
  /// Refinement steps taken (block fetches — cache hits included, so this
  /// matches the evaluation's trajectory length regardless of residency).
  size_t blocks_read = 0;
  /// Of blocks_read, fetches served by the block cache (no device I/O).
  size_t cache_hits = 0;
  /// Blocks a run-to-exactness evaluation would read.
  size_t blocks_needed = 0;
};

/// \brief Actual per-stage breakdown of one executed query — the ANALYZE
/// side, reconciled against the plan's prediction. Times come from the
/// same measurements the trace spans record.
struct QueryBreakdown {
  /// Submission to dispatch (time spent in the admission lane).
  double admission_wait_ms = 0.0;
  /// Waiting on the shard's shared lock.
  double shard_lock_wait_ms = 0.0;
  /// The whole progressive refinement loop (all block I/O included).
  double refinement_ms = 0.0;
  /// Dispatch to evaluation end (lock wait + refinement).
  double exec_ms = 0.0;
  /// Submission to completion.
  double total_ms = 0.0;
  /// Cold device reads — block fetches the cache could not serve (equal to
  /// blocks_fetched when caching is off). This is what the tenant's ledger
  /// is charged for.
  size_t blocks_read = 0;
  /// Total refinement steps (cold reads + cache hits).
  size_t blocks_fetched = 0;
  /// Of blocks_fetched, fetches served by the block cache.
  size_t cache_hits = 0;
  /// blocks_read * the catalog's block size — bytes moved off the device.
  size_t bytes_read = 0;
  /// The plan's predicted block count (0 when no plan was computed).
  size_t predicted_blocks = 0;
  /// The plan's predicted cold (device-read) block count.
  size_t predicted_cold_blocks = 0;
  /// True when a plan was computed, the query ran to completion,
  /// blocks_fetched == predicted_blocks, AND blocks_read ==
  /// predicted_cold_blocks — the cache-aware EXPLAIN/ANALYZE contract.
  bool reconciled = false;
  /// Guaranteed sum error bound after each refinement step.
  std::vector<double> error_bound_trajectory;
};

/// \brief Everything a finished query reports back.
struct QueryOutcome {
  QueryState state = QueryState::kPending;
  /// OK for kComplete and kPartialDeadline (a partial answer is a success);
  /// Cancelled for kCancelled; the evaluation error for kFailed, with the
  /// originating StatusCode preserved end to end.
  Status status;
  /// Valid whenever at least one refinement step ran (blocks_read > 0) and
  /// always for kComplete.
  QueryAnswer answer;
  /// Global dispatch sequence number (1-based); diagnostic, and the
  /// starvation-freedom tests' witness.
  uint64_t dispatch_index = 0;
  /// Span decomposition of this request's latency.
  Trace trace;
  /// The predicted plan (engaged for kExplain and kAnalyze requests).
  std::optional<core::QueryPlan> plan;
  /// Actual per-stage breakdown (engaged for every executed evaluation;
  /// absent for kExplain-only and for queries cancelled before dispatch).
  std::optional<QueryBreakdown> breakdown;
};

/// \brief One self-describing JSON record of a finished query: request
/// identity, state, the plan (null unless EXPLAIN/ANALYZE), and the
/// actuals (null unless executed). The slow-query log emits exactly this;
/// the EXPLAIN ANALYZE golden test pins its schema.
std::string QueryRecordJson(const QueryRequest& request,
                            const QueryOutcome& outcome);

/// \brief Shared handle to one submitted query. Cheap to copy (shared_ptr
/// wrapped), safe to poll/cancel/wait from any thread.
class QueryTicket {
 public:
  uint64_t id() const { return id_; }
  const QueryRequest& request() const { return request_; }
  QueryState state() const { return state_.load(std::memory_order_acquire); }
  bool done() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
  }

  /// \brief Requests cancellation (idempotent, never blocks). A pending
  /// query finishes kCancelled without touching the catalog; a running one
  /// stops at the next block-I/O boundary.
  void Cancel() { cancel_requested_.store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return cancel_requested_.load(std::memory_order_acquire);
  }

  /// \brief Blocks until the query reaches a terminal state.
  QueryOutcome Wait() const;

  /// \brief The outcome if the query already finished, else nullopt.
  std::optional<QueryOutcome> TryGet() const;

 private:
  friend class QueryScheduler;
  QueryTicket(uint64_t id, QueryRequest request)
      : id_(id), request_(std::move(request)), trace_(id) {}

  const uint64_t id_;
  const QueryRequest request_;
  /// Absolute deadline derived from deadline_ms at submission.
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::atomic<QueryState> state_{QueryState::kPending};
  std::atomic<bool> cancel_requested_{false};
  /// Built by the dispatching worker; epoch = submission time.
  Trace trace_;

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool done_ = false;
  QueryOutcome outcome_;
};

using QueryTicketPtr = std::shared_ptr<QueryTicket>;

/// \brief Admission and fairness policy.
struct SchedulerConfig {
  /// Bounded pending queues; a full lane rejects with ResourceExhausted.
  size_t max_pending_interactive = 64;
  size_t max_pending_batch = 256;
  /// Every Nth dispatch serves the batch lane first (0 disables the rule),
  /// so batch queries are dispatched within N slots of admission even
  /// under a saturating interactive stream.
  size_t batch_promotion_period = 4;
};

/// \brief Asynchronous executor of progressive queries over the catalog.
///
/// Thread-safe. Submit never blocks; results are delivered through the
/// ticket. Exposes (when given a registry):
///   scheduler.submitted / rejected / completed / partial_deadline /
///   cancelled / failed (counters), scheduler.pending (gauge with
///   high-water mark), scheduler.admission_wait_ms / exec_ms (histograms).
class QueryScheduler {
 public:
  /// \param catalog query target (not owned).
  /// \param pool shared executor (not owned).
  /// \param tracer optional span sink (may be null).
  /// \param metrics optional registry (may be null).
  /// \param ledger optional per-tenant cost ledger (may be null): each
  /// query charges its tenant's queue wait, evaluation time, and block
  /// reads.
  /// \param slow_log optional slow-query sink (may be null).
  /// \param slow_query_threshold_ms queries slower than this end to end
  /// are counted in scheduler.slow_queries and emitted (plan + actuals) to
  /// \p slow_log; 0 disables the slow-query path entirely.
  /// \param recorder optional flight recorder (may be null): slow-query
  /// records also land in its bounded ring, so the post-mortem bundle
  /// carries the most recent offenders even when the async log's sink is
  /// long gone.
  QueryScheduler(const ShardedCatalog* catalog, ThreadPool* pool,
                 SchedulerConfig config = {}, Tracer* tracer = nullptr,
                 MetricsRegistry* metrics = nullptr,
                 obs::CostLedger* ledger = nullptr,
                 obs::AsyncLogger* slow_log = nullptr,
                 double slow_query_threshold_ms = 0.0,
                 obs::FlightRecorder* recorder = nullptr);

  /// Waits for every admitted query to finish (the pool must still be
  /// running or already drained).
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// \brief Wires the continuous-aggregate registry (may be null to
  /// disable). Consulted at the top of every execution: a query whose
  /// (tenant, session, channel, range) exactly matches a maintained
  /// aggregate completes from the registered result with ZERO block I/O —
  /// EXPLAIN shows an aggregate_hit plan and ANALYZE reconciles trivially.
  /// Set before traffic.
  void SetAggregateRegistry(ContinuousAggregateRegistry* registry) {
    aggregates_ = registry;
  }

  /// \brief Admits a query. Returns the ticket, ResourceExhausted when the
  /// lane is full, FailedPrecondition when the executor is shutting down.
  /// Never blocks.
  Result<QueryTicketPtr> Submit(QueryRequest request);

  /// \brief Blocks until every admitted query has finished. Call before
  /// tearing down the catalog or the pool.
  void Drain();

  /// Admitted-but-unfinished count.
  size_t pending() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  const SchedulerConfig& config() const { return config_; }

 private:
  void RunOne();
  QueryTicketPtr PopNext();
  void Execute(const QueryTicketPtr& ticket);
  void Finish(const QueryTicketPtr& ticket, QueryOutcome outcome);

  const ShardedCatalog* catalog_;
  ThreadPool* pool_;
  ContinuousAggregateRegistry* aggregates_ = nullptr;
  SchedulerConfig config_;
  Tracer* tracer_;
  obs::CostLedger* ledger_;
  obs::AsyncLogger* slow_log_;
  double slow_query_threshold_ms_;
  obs::FlightRecorder* recorder_;

  mutable std::mutex queues_mutex_;
  std::deque<QueryTicketPtr> interactive_;
  std::deque<QueryTicketPtr> batch_;
  uint64_t pop_counter_ = 0;

  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> dispatch_counter_{0};
  /// Admitted queries not yet finished; the destructor blocks on zero.
  std::atomic<size_t> in_flight_{0};
  std::mutex drain_mutex_;
  std::condition_variable drained_cv_;

  Counter* submitted_ = nullptr;
  Counter* rejected_ = nullptr;
  Counter* completed_ = nullptr;
  Counter* partial_deadline_ = nullptr;
  Counter* cancelled_ = nullptr;
  Counter* failed_ = nullptr;
  Counter* slow_queries_ = nullptr;
  Gauge* pending_gauge_ = nullptr;
  Histogram* admission_wait_ms_ = nullptr;
  Histogram* exec_ms_ = nullptr;
};

}  // namespace aims::server
