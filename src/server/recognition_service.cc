#include "server/recognition_service.h"

#include <chrono>
#include <utility>

namespace aims::server {

RecognitionService::RecognitionService(
    const recognition::Vocabulary* vocabulary,
    recognition::StreamRecognizerConfig config, MetricsRegistry* metrics)
    : vocabulary_(vocabulary), measure_(/*rank=*/0), config_(config) {
  if (metrics != nullptr) {
    streams_opened_ = metrics->GetCounter("recognition.streams_opened");
    frames_ = metrics->GetCounter("recognition.frames");
    events_ = metrics->GetCounter("recognition.events");
    open_streams_ = metrics->GetGauge("recognition.open_streams");
    frame_latency_ms_ =
        metrics->GetHistogram("recognition.frame_latency_ms",
                              MetricsRegistry::DefaultLatencyBoundsMs());
  }
}

Status RecognitionService::OpenStream(ClientId client) {
  if (vocabulary_ == nullptr || vocabulary_->size() == 0) {
    return Status::FailedPrecondition(
        "RecognitionService: register a vocabulary first");
  }
  std::unique_lock<std::shared_mutex> lock(streams_mutex_);
  auto& slot = streams_[client];
  if (slot) {
    return Status::AlreadyExists("RecognitionService: stream already open");
  }
  slot = std::make_shared<ClientStream>(vocabulary_, &measure_, config_);
  if (streams_opened_ != nullptr) streams_opened_->Increment();
  if (open_streams_ != nullptr) open_streams_->AddTracked(1);
  return Status::OK();
}

Result<std::optional<recognition::RecognitionEvent>>
RecognitionService::PushFrame(ClientId client, const streams::Frame& frame,
                              Trace* trace) {
  std::shared_ptr<ClientStream> stream;
  {
    std::shared_lock<std::shared_mutex> lock(streams_mutex_);
    auto it = streams_.find(client);
    if (it == streams_.end()) {
      return Status::NotFound("RecognitionService: no open stream");
    }
    stream = it->second;
  }
  auto start = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(stream->mutex);
  size_t update_span = 0;
  if (trace != nullptr) update_span = trace->BeginSpan("recognizer_update");
  auto result = stream->recognizer.Push(frame);
  if (trace != nullptr) {
    trace->EndSpan(update_span);
    if (result.ok() && result->has_value()) {
      trace->AddMarker("classification_event");
    }
  }
  if (frames_ != nullptr) frames_->Increment();
  if (frame_latency_ms_ != nullptr) {
    frame_latency_ms_->Record(std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - start)
                                  .count());
  }
  if (result.ok() && result->has_value()) {
    if (events_ != nullptr) events_->Increment();
    stream->history.Push(**result);
  }
  return result;
}

Result<std::optional<recognition::RecognitionEvent>>
RecognitionService::CloseStream(ClientId client) {
  std::shared_ptr<ClientStream> stream;
  {
    std::unique_lock<std::shared_mutex> lock(streams_mutex_);
    auto it = streams_.find(client);
    if (it == streams_.end()) {
      return Status::NotFound("RecognitionService: no open stream");
    }
    stream = std::move(it->second);
    streams_.erase(it);
  }
  if (open_streams_ != nullptr) open_streams_->AddTracked(-1);
  // A PushFrame that resolved the stream before the erase may still be
  // running; it holds its own shared_ptr, so the flush below serializes
  // with it on the per-stream mutex and the object outlives both.
  std::lock_guard<std::mutex> lock(stream->mutex);
  auto result = stream->recognizer.Finish();
  if (result.ok() && result->has_value() && events_ != nullptr) {
    events_->Increment();
  }
  return result;
}

std::vector<recognition::RecognitionEvent> RecognitionService::RecentEvents(
    ClientId client) const {
  std::shared_lock<std::shared_mutex> lock(streams_mutex_);
  auto it = streams_.find(client);
  if (it == streams_.end()) return {};
  std::lock_guard<std::mutex> stream_lock(it->second->mutex);
  return it->second->history.Snapshot();
}

size_t RecognitionService::open_streams() const {
  std::shared_lock<std::shared_mutex> lock(streams_mutex_);
  return streams_.size();
}

}  // namespace aims::server
