#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "recognition/isolator.h"
#include "recognition/similarity.h"
#include "recognition/vocabulary.h"
#include "server/metrics.h"
#include "server/sharded_catalog.h"
#include "server/tracer.h"
#include "streams/ring_buffer.h"
#include "streams/sample.h"

/// \file recognition_service.h
/// \brief Multi-tenant online recognition: one live StreamRecognizer per
/// client, all sharing one immutable vocabulary and similarity measure, so
/// a classroom of gloved subjects runs simultaneous sign recognition
/// (Sec. 3.4) against the same template library. Per-client state is
/// guarded by a per-client mutex — different clients' frames never contend.

namespace aims::server {

/// \brief Per-client live recognizers over a shared vocabulary.
class RecognitionService {
 public:
  /// \param vocabulary shared template library (not owned, must outlive
  /// the service, and must not be mutated while streams are open).
  /// \param config recognizer tuning applied to every stream.
  /// \param metrics optional registry (may be null). Exposes:
  ///   recognition.streams_opened / frames / events (counters),
  ///   recognition.open_streams (gauge),
  ///   recognition.frame_latency_ms (histogram).
  explicit RecognitionService(
      const recognition::Vocabulary* vocabulary,
      recognition::StreamRecognizerConfig config = {},
      MetricsRegistry* metrics = nullptr);

  /// \brief Starts a live stream for \p client. Fails with
  /// FailedPrecondition when the vocabulary is empty, AlreadyExists when
  /// the client already has an open stream.
  Status OpenStream(ClientId client);

  /// \brief Feeds one live frame; returns an event when a motion was just
  /// isolated and recognized. Safe to call concurrently for different
  /// clients; calls for one client must come from one producer at a time
  /// (they are serialized by the per-client lock regardless). \p trace
  /// (optional) gains a "recognizer_update" span per frame plus a
  /// "classification_event" marker whenever a motion is recognized.
  Result<std::optional<recognition::RecognitionEvent>> PushFrame(
      ClientId client, const streams::Frame& frame, Trace* trace = nullptr);

  /// \brief Flushes and closes \p client's stream, returning the final
  /// event if the tail of the stream completed a motion.
  Result<std::optional<recognition::RecognitionEvent>> CloseStream(
      ClientId client);

  /// Most recent events of one client, oldest first (bounded history).
  std::vector<recognition::RecognitionEvent> RecentEvents(
      ClientId client) const;

  size_t open_streams() const;

 private:
  /// Events retained per client for RecentEvents.
  static constexpr size_t kEventHistory = 16;

  struct ClientStream {
    ClientStream(const recognition::Vocabulary* vocabulary,
                 const recognition::SimilarityMeasure* measure,
                 recognition::StreamRecognizerConfig config)
        : recognizer(vocabulary, measure, config), history(kEventHistory) {}
    mutable std::mutex mutex;
    recognition::StreamRecognizer recognizer;
    streams::RingBuffer<recognition::RecognitionEvent> history;
  };

  const recognition::Vocabulary* vocabulary_;
  recognition::WeightedSvdSimilarity measure_;
  recognition::StreamRecognizerConfig config_;

  mutable std::shared_mutex streams_mutex_;
  /// shared_ptr: a PushFrame that resolved a stream keeps it alive across
  /// a concurrent CloseStream (the closed stream just becomes detached).
  std::unordered_map<ClientId, std::shared_ptr<ClientStream>> streams_;

  Counter* streams_opened_ = nullptr;
  Counter* frames_ = nullptr;
  Counter* events_ = nullptr;
  Gauge* open_streams_ = nullptr;
  Histogram* frame_latency_ms_ = nullptr;
};

}  // namespace aims::server
