#include "server/query_scheduler.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "obs/json_util.h"
#include "server/continuous_agg.h"

namespace aims::server {

const char* QueryStateName(QueryState state) {
  switch (state) {
    case QueryState::kPending:
      return "Pending";
    case QueryState::kRunning:
      return "Running";
    case QueryState::kComplete:
      return "Complete";
    case QueryState::kPartialDeadline:
      return "PartialDeadline";
    case QueryState::kCancelled:
      return "Cancelled";
    case QueryState::kFailed:
      return "Failed";
  }
  return "Unknown";
}

std::string QueryRecordJson(const QueryRequest& request,
                            const QueryOutcome& outcome) {
  using obs::TrimmedDouble;
  std::string out = "{\"type\":\"query\"";
  out += ",\"request_id\":" + std::to_string(outcome.trace.request_id());
  out += ",\"tenant\":" + std::to_string(request.tenant);
  out += ",\"session\":" + std::to_string(request.session);
  out += ",\"channel\":" + std::to_string(request.channel);
  out += ",\"first_frame\":" + std::to_string(request.first_frame);
  out += ",\"last_frame\":" + std::to_string(request.last_frame);
  out += ",\"priority\":\"";
  out += request.priority == QueryPriority::kInteractive ? "interactive"
                                                         : "batch";
  out += "\",\"state\":\"";
  out += QueryStateName(outcome.state);
  out += "\"";
  const QueryAnswer& answer = outcome.answer;
  out += ",\"answer\":{\"sum\":" + TrimmedDouble(answer.sum);
  out += ",\"mean\":" + TrimmedDouble(answer.mean);
  out += ",\"count\":" + std::to_string(answer.count);
  out += ",\"error_bound\":" + TrimmedDouble(answer.error_bound);
  out += ",\"blocks_read\":" + std::to_string(answer.blocks_read);
  out += ",\"cache_hits\":" + std::to_string(answer.cache_hits);
  out += ",\"blocks_needed\":" + std::to_string(answer.blocks_needed) + "}";
  out += ",\"plan\":";
  out += outcome.plan.has_value() ? outcome.plan->ToJson() : "null";
  out += ",\"actuals\":";
  if (outcome.breakdown.has_value()) {
    const QueryBreakdown& b = *outcome.breakdown;
    out += "{\"admission_wait_ms\":" + TrimmedDouble(b.admission_wait_ms);
    out += ",\"shard_lock_wait_ms\":" + TrimmedDouble(b.shard_lock_wait_ms);
    out += ",\"refinement_ms\":" + TrimmedDouble(b.refinement_ms);
    out += ",\"exec_ms\":" + TrimmedDouble(b.exec_ms);
    out += ",\"total_ms\":" + TrimmedDouble(b.total_ms);
    out += ",\"blocks_read\":" + std::to_string(b.blocks_read);
    out += ",\"blocks_fetched\":" + std::to_string(b.blocks_fetched);
    out += ",\"cache_hits\":" + std::to_string(b.cache_hits);
    out += ",\"bytes_read\":" + std::to_string(b.bytes_read);
    out += ",\"predicted_blocks\":" + std::to_string(b.predicted_blocks);
    out += ",\"predicted_cold_blocks\":" +
           std::to_string(b.predicted_cold_blocks);
    out += ",\"reconciled\":";
    out += b.reconciled ? "true" : "false";
    out += ",\"error_bound_trajectory\":[";
    for (size_t i = 0; i < b.error_bound_trajectory.size(); ++i) {
      if (i > 0) out += ",";
      out += TrimmedDouble(b.error_bound_trajectory[i]);
    }
    out += "]}";
  } else {
    out += "null";
  }
  out += "}";
  return out;
}

QueryOutcome QueryTicket::Wait() const {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return done_; });
  return outcome_;
}

std::optional<QueryOutcome> QueryTicket::TryGet() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!done_) return std::nullopt;
  return outcome_;
}

QueryScheduler::QueryScheduler(const ShardedCatalog* catalog, ThreadPool* pool,
                               SchedulerConfig config, Tracer* tracer,
                               MetricsRegistry* metrics,
                               obs::CostLedger* ledger,
                               obs::AsyncLogger* slow_log,
                               double slow_query_threshold_ms,
                               obs::FlightRecorder* recorder)
    : catalog_(catalog),
      pool_(pool),
      config_(config),
      tracer_(tracer),
      ledger_(ledger),
      slow_log_(slow_log),
      slow_query_threshold_ms_(slow_query_threshold_ms),
      recorder_(recorder) {
  AIMS_CHECK(catalog != nullptr && pool != nullptr);
  if (metrics != nullptr) {
    submitted_ = metrics->GetCounter("scheduler.submitted");
    rejected_ = metrics->GetCounter("scheduler.rejected");
    completed_ = metrics->GetCounter("scheduler.completed");
    partial_deadline_ = metrics->GetCounter("scheduler.partial_deadline");
    cancelled_ = metrics->GetCounter("scheduler.cancelled");
    failed_ = metrics->GetCounter("scheduler.failed");
    slow_queries_ = metrics->GetCounter("scheduler.slow_queries");
    pending_gauge_ = metrics->GetGauge("scheduler.pending");
    admission_wait_ms_ = metrics->GetHistogram(
        "scheduler.admission_wait_ms",
        MetricsRegistry::DefaultLatencyBoundsMs());
    exec_ms_ = metrics->GetHistogram("scheduler.exec_ms",
                                     MetricsRegistry::DefaultLatencyBoundsMs());
  }
}

QueryScheduler::~QueryScheduler() { Drain(); }

Result<QueryTicketPtr> QueryScheduler::Submit(QueryRequest request) {
  // With a tracer attached, ticket ids come from the server-wide request-id
  // source, so a query's trace never collides with an ingest or stream
  // trace in the exported timeline. Without one, ids are scheduler-local.
  const uint64_t id = tracer_ != nullptr
                          ? tracer_->NextRequestId()
                          : next_id_.fetch_add(1, std::memory_order_relaxed);
  QueryTicketPtr ticket(new QueryTicket(id, std::move(request)));
  const QueryRequest& req = ticket->request_;
  if (req.deadline_ms > 0.0) {
    ticket->deadline_ =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(req.deadline_ms));
  }
  ticket->trace_.set_label(
      std::string(req.priority == QueryPriority::kInteractive ? "interactive"
                                                              : "batch") +
      " range_query session=" + std::to_string(req.session) +
      " channel=" + std::to_string(req.channel));

  const bool interactive = req.priority == QueryPriority::kInteractive;
  {
    std::lock_guard<std::mutex> lock(queues_mutex_);
    std::deque<QueryTicketPtr>& lane = interactive ? interactive_ : batch_;
    const size_t cap = interactive ? config_.max_pending_interactive
                                   : config_.max_pending_batch;
    if (lane.size() >= cap) {
      if (rejected_ != nullptr) rejected_->Increment();
      if (ledger_ != nullptr) ledger_->ForTenant(req.tenant)->CountRejected();
      return Status::ResourceExhausted(
          "QueryScheduler::Submit: pending lane full");
    }
    lane.push_back(ticket);
  }
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (pending_gauge_ != nullptr) pending_gauge_->AddTracked(1);

  if (!pool_->Submit([this] { RunOne(); })) {
    // Executor shutting down: retract the admission if the ticket is still
    // queued. If a concurrent worker already claimed it, its own task will
    // carry it to completion and the submission stands.
    std::lock_guard<std::mutex> lock(queues_mutex_);
    std::deque<QueryTicketPtr>& lane = interactive ? interactive_ : batch_;
    auto it = std::find(lane.begin(), lane.end(), ticket);
    if (it != lane.end()) {
      lane.erase(it);
      if (pending_gauge_ != nullptr) pending_gauge_->Add(-1);
      if (rejected_ != nullptr) rejected_->Increment();
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> drain_lock(drain_mutex_);
        drained_cv_.notify_all();
      }
      return Status::FailedPrecondition(
          "QueryScheduler::Submit: executor shutting down");
    }
  }
  if (submitted_ != nullptr) submitted_->Increment();
  return ticket;
}

QueryTicketPtr QueryScheduler::PopNext() {
  std::lock_guard<std::mutex> lock(queues_mutex_);
  ++pop_counter_;
  const bool prefer_batch = config_.batch_promotion_period > 0 &&
                            pop_counter_ % config_.batch_promotion_period == 0;
  auto pop = [](std::deque<QueryTicketPtr>& lane) -> QueryTicketPtr {
    if (lane.empty()) return nullptr;
    QueryTicketPtr ticket = std::move(lane.front());
    lane.pop_front();
    return ticket;
  };
  if (prefer_batch) {
    if (QueryTicketPtr ticket = pop(batch_)) return ticket;
    return pop(interactive_);
  }
  if (QueryTicketPtr ticket = pop(interactive_)) return ticket;
  return pop(batch_);
}

void QueryScheduler::RunOne() {
  QueryTicketPtr ticket = PopNext();
  if (ticket == nullptr) return;  // retracted by a failed Submit
  Execute(ticket);
}

void QueryScheduler::Execute(const QueryTicketPtr& ticket) {
  const QueryRequest& req = ticket->request_;
  Trace& trace = ticket->trace_;

  QueryOutcome outcome;
  outcome.dispatch_index =
      dispatch_counter_.fetch_add(1, std::memory_order_acq_rel) + 1;

  // Resolve the tenant's ledger once; every charge below is lock-free.
  obs::TenantLedger* tenant =
      ledger_ != nullptr ? ledger_->ForTenant(req.tenant) : nullptr;

  // Root span covering the request from submission; every stage below
  // nests under it, so the Chrome export shows one tree per query.
  trace.BeginSpanAt("query", 0.0);
  const double admission_ms = trace.ElapsedMs();
  trace.AddSpan("admission_wait", 0.0, admission_ms);
  if (admission_wait_ms_ != nullptr) admission_wait_ms_->Record(admission_ms);

  if (ticket->cancel_requested()) {
    // Cancelled while pending: release the executor slot without touching
    // the catalog at all.
    outcome.state = QueryState::kCancelled;
    outcome.status = Status::Cancelled("query cancelled before dispatch");
    Finish(ticket, std::move(outcome));
    return;
  }
  ticket->state_.store(QueryState::kRunning, std::memory_order_release);

  if (tenant != nullptr) {
    tenant->ChargeQueueMs(admission_ms);
    tenant->CountQuery();
  }
  // Always-on wall-clock charge for everything from dispatch to the end of
  // evaluation (the AIMS_PROFILE_SCOPE idea, promoted to the ledger).
  obs::ScopedCpuCharge cpu_charge(tenant);

  // Continuous-aggregate short circuit: a registered standing query whose
  // exact range (and tenant) this request matches is answered from the
  // incrementally maintained result — complete, exact, zero block I/O, no
  // shard lock. EXPLAIN sees an aggregate_hit plan (every predicted count
  // 0, empty schedule); ANALYZE reconciles trivially (0 fetched == 0
  // predicted).
  if (aggregates_ != nullptr) {
    std::optional<AggregateResult> hit =
        aggregates_->Lookup(req.tenant, req.session, req.channel,
                            req.first_frame, req.last_frame);
    if (hit.has_value()) {
      outcome.state = QueryState::kComplete;
      outcome.answer.sum = hit->sum;
      outcome.answer.mean = hit->mean;
      outcome.answer.count = hit->count;
      if (req.explain != ExplainMode::kNone) {
        core::QueryPlan plan;
        plan.session = req.session;
        plan.channel = req.channel;
        plan.first_frame = req.first_frame;
        plan.last_frame = req.last_frame;
        plan.aggregate_hit = true;
        outcome.plan = std::move(plan);
      }
      if (req.explain == ExplainMode::kAnalyze) {
        QueryBreakdown breakdown;
        breakdown.admission_wait_ms = admission_ms;
        breakdown.reconciled = true;
        outcome.breakdown = std::move(breakdown);
      }
      Finish(ticket, std::move(outcome));
      return;
    }
  }

  if (req.explain != ExplainMode::kNone) {
    // The plan is deterministic and block-I/O free; for kAnalyze it is
    // computed before execution so the breakdown can reconcile against it.
    Result<core::QueryPlan> plan = catalog_->PlanRangeQuery(
        req.session, req.channel, req.first_frame, req.last_frame);
    if (!plan.ok()) {
      outcome.state = QueryState::kFailed;
      outcome.status = plan.status();
      Finish(ticket, std::move(outcome));
      return;
    }
    outcome.plan = std::move(*plan);
    if (req.explain == ExplainMode::kExplain) {
      // EXPLAIN without ANALYZE: the plan IS the answer. No evaluation, no
      // device reads; blocks_needed still tells the client what a run
      // would cost.
      outcome.state = QueryState::kComplete;
      outcome.answer.count = req.last_frame - req.first_frame + 1;
      outcome.answer.blocks_needed = outcome.plan->predicted_blocks;
      Finish(ticket, std::move(outcome));
      return;
    }
  }

  const double exec_start_ms = trace.ElapsedMs();
  constexpr size_t kNoSpan = static_cast<size_t>(-1);
  size_t lock_span = trace.BeginSpan("shard_lock");
  size_t refine_span = kNoSpan;
  // The interval between observer callbacks is exactly one block fetch, so
  // each callback stamps the previous fetch as a closed block_io span.
  double io_start_ms = 0.0;
  double lock_acquired_ms = exec_start_ms;
  enum class StopReason { kNone, kCancel, kDeadline, kTarget };
  StopReason stop = StopReason::kNone;

  auto on_shard_locked = [&] {
    trace.EndSpan(lock_span);
    refine_span = trace.BeginSpan("refinement");
    io_start_ms = trace.ElapsedMs();
    lock_acquired_ms = io_start_ms;
  };
  // Per-step capture so the failure path knows how many fetches (and of
  // those, cache hits) happened before the error — the result object never
  // materializes on that path.
  size_t observed_fetches = 0;
  size_t observed_hits = 0;
  auto observer =
      [&](const core::ProgressiveRangeStep& step) -> core::StepControl {
    const double now_ms = trace.ElapsedMs();
    trace.AddSpan("block_io", io_start_ms, now_ms);
    io_start_ms = now_ms;
    observed_fetches = step.blocks_read;
    observed_hits = step.cache_hits;
    if (ticket->cancel_requested()) {
      stop = StopReason::kCancel;
      return core::StepControl::kStop;
    }
    if (ticket->deadline_.has_value() &&
        std::chrono::steady_clock::now() >= *ticket->deadline_) {
      stop = StopReason::kDeadline;
      return core::StepControl::kStop;
    }
    if (req.target_error_bound > 0.0 &&
        step.sum_error_bound <= req.target_error_bound) {
      stop = StopReason::kTarget;
      return core::StepControl::kStop;
    }
    return core::StepControl::kContinue;
  };

  Result<core::ProgressiveRangeResult> result = catalog_->QueryRangeProgressive(
      req.session, req.channel, req.first_frame, req.last_frame, observer,
      on_shard_locked);

  if (refine_span != kNoSpan) trace.EndSpan(refine_span);
  trace.CloseOpenSpans();
  const double exec_end_ms = trace.ElapsedMs();
  if (exec_ms_ != nullptr) exec_ms_->Record(exec_end_ms - exec_start_ms);

  if (!result.ok()) {
    // The originating StatusCode (NotFound, OutOfRange, IoError, ...)
    // rides through the outcome envelope unchanged.
    outcome.state = QueryState::kFailed;
    outcome.status = result.status();
    if (tenant != nullptr) {
      // The completed steps' cold reads hit the device and were charged
      // there; an IoError means one more read failed after seeking (the
      // device charges the failed access too), so bill it. Validation
      // failures (NotFound, OutOfRange) read nothing extra.
      size_t cold = observed_fetches - observed_hits;
      if (result.status().code() == StatusCode::kIoError) ++cold;
      if (cold > 0) {
        tenant->ChargeRead(cold, cold * catalog_->block_size_bytes());
      }
    }
    Finish(ticket, std::move(outcome));
    return;
  }

  const core::ProgressiveRangeResult& progressive = *result;
  QueryAnswer& answer = outcome.answer;
  answer.count = req.last_frame - req.first_frame + 1;
  answer.blocks_needed = progressive.total_blocks_needed;
  if (!progressive.steps.empty()) {
    const core::ProgressiveRangeStep& last = progressive.steps.back();
    answer.sum = last.sum_estimate;
    answer.mean = last.mean_estimate;
    answer.error_bound = last.sum_error_bound;
    answer.blocks_read = last.blocks_read;
    answer.cache_hits = last.cache_hits;
  }

  if (progressive.complete || stop == StopReason::kTarget) {
    outcome.state = QueryState::kComplete;
  } else if (stop == StopReason::kCancel) {
    outcome.state = QueryState::kCancelled;
    outcome.status = Status::Cancelled("query cancelled during evaluation");
  } else if (stop == StopReason::kDeadline) {
    // Deadline expiry is not an error: the partial answer plus its
    // guaranteed bound is the contract.
    outcome.state = QueryState::kPartialDeadline;
  } else {
    outcome.state = QueryState::kComplete;
  }

  // Per-stage breakdown for every executed evaluation: ANALYZE surfaces it
  // to the client, and the slow-query log needs the actuals either way.
  QueryBreakdown breakdown;
  breakdown.admission_wait_ms = admission_ms;
  breakdown.shard_lock_wait_ms = lock_acquired_ms - exec_start_ms;
  breakdown.refinement_ms = exec_end_ms - lock_acquired_ms;
  breakdown.exec_ms = exec_end_ms - exec_start_ms;
  // blocks_read is the COLD device-read count: total fetches minus the
  // fetches the block cache absorbed. With caching off they coincide.
  breakdown.blocks_fetched = answer.blocks_read;
  breakdown.cache_hits = answer.cache_hits;
  breakdown.blocks_read = answer.blocks_read - answer.cache_hits;
  breakdown.bytes_read = breakdown.blocks_read * catalog_->block_size_bytes();
  breakdown.error_bound_trajectory.reserve(progressive.steps.size());
  for (const core::ProgressiveRangeStep& step : progressive.steps) {
    breakdown.error_bound_trajectory.push_back(step.sum_error_bound);
  }
  if (outcome.plan.has_value()) {
    breakdown.predicted_blocks = outcome.plan->predicted_blocks;
    breakdown.predicted_cold_blocks = outcome.plan->predicted_cold_blocks;
    // A complete evaluation must touch exactly the planned blocks — the
    // plan and the execution walk the same deterministic schedule — and its
    // cold reads must match the plan's residency-based prediction exactly
    // (residency only grows under the shard lock, and only with blocks
    // from this very schedule).
    breakdown.reconciled =
        progressive.complete &&
        breakdown.blocks_fetched == breakdown.predicted_blocks &&
        breakdown.blocks_read == breakdown.predicted_cold_blocks;
  }
  outcome.breakdown = std::move(breakdown);

  if (tenant != nullptr) {
    // Hits cost CPU (already covered by the ScopedCpuCharge), not I/O:
    // only cold reads reach the tenant's I/O ledger.
    const size_t cold = answer.blocks_read - answer.cache_hits;
    tenant->ChargeRead(cold, cold * catalog_->block_size_bytes());
  }
  Finish(ticket, std::move(outcome));
}

void QueryScheduler::Finish(const QueryTicketPtr& ticket,
                            QueryOutcome outcome) {
  const double total_ms = ticket->trace_.ElapsedMs();
  if (outcome.breakdown.has_value()) outcome.breakdown->total_ms = total_ms;
  switch (outcome.state) {
    case QueryState::kComplete:
      if (completed_ != nullptr) completed_->Increment();
      break;
    case QueryState::kPartialDeadline:
      if (partial_deadline_ != nullptr) partial_deadline_->Increment();
      break;
    case QueryState::kCancelled:
      if (cancelled_ != nullptr) cancelled_->Increment();
      break;
    case QueryState::kFailed:
      if (failed_ != nullptr) failed_->Increment();
      break;
    default:
      break;
  }
  ticket->trace_.CloseOpenSpans();
  outcome.trace = ticket->trace_;
  if (tracer_ != nullptr) tracer_->Record(ticket->trace_);

  if (slow_query_threshold_ms_ > 0.0 && total_ms >= slow_query_threshold_ms_) {
    if (slow_queries_ != nullptr) slow_queries_->Increment();
    if (ledger_ != nullptr) {
      ledger_->ForTenant(ticket->request_.tenant)->CountSlowQuery();
    }
    if (slow_log_ != nullptr || recorder_ != nullptr) {
      std::string record = QueryRecordJson(ticket->request_, outcome);
      // The black box keeps its own bounded copy: it survives into the
      // post-mortem bundle after the log's sink is gone.
      if (recorder_ != nullptr) recorder_->RecordSlowQuery(record);
      // Log() never blocks: under overload the record is dropped and the
      // logger's drop counter ticks instead.
      if (slow_log_ != nullptr) slow_log_->Log(std::move(record));
    }
  }

  ticket->state_.store(outcome.state, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(ticket->mutex_);
    ticket->outcome_ = std::move(outcome);
    ticket->done_ = true;
  }
  ticket->cv_.notify_all();

  if (pending_gauge_ != nullptr) pending_gauge_->Add(-1);
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drained_cv_.notify_all();
  }
}

void QueryScheduler::Drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drained_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace aims::server
