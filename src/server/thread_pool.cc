#include "server/thread_pool.h"

#include <algorithm>
#include <utility>

namespace aims::server {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(num_threads, 1);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      // A second caller (e.g. the destructor after an explicit Shutdown)
      // must not re-join already-joined threads.
      return;
    }
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // A joined pool is idle, not stalled: hand the arm back.
  obs::Watchdog::Handle* handle =
      watchdog_.exchange(nullptr, std::memory_order_acq_rel);
  if (handle != nullptr) handle->Disarm();
}

void ThreadPool::SetWatchdog(obs::Watchdog::Handle* handle) {
  if (handle != nullptr) handle->Arm();
  obs::Watchdog::Handle* previous =
      watchdog_.exchange(handle, std::memory_order_acq_rel);
  if (previous != nullptr) previous->Disarm();
}

size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Bounded wait instead of an open-ended one so an IDLE worker still
      // heartbeats: only a pool where every worker is wedged goes quiet.
      while (queue_.empty() && !shutting_down_) {
        cv_.wait_for(lock, std::chrono::milliseconds(500));
        BeatWatchdog();
      }
      if (queue_.empty()) return;  // Shutting down and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    BeatWatchdog();
    task();
    BeatWatchdog();
  }
}

}  // namespace aims::server
