#include "server/thread_pool.h"

#include <algorithm>
#include <utility>

namespace aims::server {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(num_threads, 1);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      // A second caller (e.g. the destructor after an explicit Shutdown)
      // must not re-join already-joined threads.
      return;
    }
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return !queue_.empty() || shutting_down_; });
      if (queue_.empty()) return;  // Shutting down and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace aims::server
