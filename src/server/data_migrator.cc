#include "server/data_migrator.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/macros.h"

namespace aims::server {

DataMigrator::DataMigrator(ShardedCatalog* catalog) : catalog_(catalog) {
  AIMS_CHECK(catalog_ != nullptr);
}

MigrationStatus DataMigrator::status() const {
  std::lock_guard<std::mutex> lock(status_mutex_);
  return status_;
}

void DataMigrator::SetStatus(const MigrationStatus& status) {
  std::lock_guard<std::mutex> lock(status_mutex_);
  status_ = status;
}

Status DataMigrator::MigrateTenant(ClientId client, size_t target_shard) {
  std::unique_lock<std::mutex> run(run_mutex_, std::try_to_lock);
  if (!run.owns_lock()) {
    return Status::FailedPrecondition(
        "DataMigrator: a migration is already in progress");
  }
  // Armed for the whole run: a migration is episodic supervised work — a
  // copy wedged on one session must trip the watchdog, an idle migrator
  // must not.
  obs::Watchdog::Scope supervised(watchdog_);
  MigrationStatus progress;
  progress.state = MigrationStatus::State::kRunning;
  progress.client = client;
  progress.target_shard = target_shard;
  SetStatus(progress);

  auto fail = [&](const Status& status) {
    catalog_->AbortTenantMigration(client);
    progress.state = MigrationStatus::State::kFailed;
    progress.error = status.message();
    SetStatus(progress);
    return status;
  };

  // Pin + journal + quiesce, then the stable list of sessions to copy.
  Result<std::vector<GlobalSessionId>> to_move =
      catalog_->BeginTenantMigration(client, target_shard);
  if (!to_move.ok()) {
    progress.state = MigrationStatus::State::kFailed;
    progress.error = to_move.status().message();
    SetStatus(progress);
    return to_move.status();
  }
  progress.sessions_total = to_move->size();
  SetStatus(progress);

  // Copy one session at a time: each copy runs under the source's shared
  // lock (queries keep flowing) and flips that session into its dual-read
  // window the moment its target copy is durable.
  for (GlobalSessionId id : *to_move) {
    Status moved = catalog_->MigrateSession(id, target_shard);
    if (!moved.ok()) return fail(moved);
    ++progress.sessions_moved;
    SetStatus(progress);
    if (watchdog_ != nullptr) watchdog_->Beat();
  }

  // Atomic routing flip + durable pin; the tenant now lives wholly on the
  // target.
  Status committed = catalog_->CommitTenantMigration(client, target_shard);
  if (!committed.ok()) return fail(committed);
  progress.state = MigrationStatus::State::kDone;
  SetStatus(progress);
  return Status::OK();
}

RebalancePlanner::RebalancePlanner(RebalancePlannerConfig config)
    : config_(config) {}

double RebalancePlanner::TenantLoad(const obs::TenantUsage& usage) const {
  double cpu_ms = static_cast<double>(usage.cpu_ns) / 1e6;
  double blocks =
      static_cast<double>(usage.blocks_read + usage.blocks_written);
  return cpu_ms * config_.cpu_weight_per_ms +
         blocks * config_.io_weight_per_block +
         usage.queue_ms * config_.queue_weight_per_ms;
}

RebalancePlan RebalancePlanner::Plan(
    const std::vector<std::pair<obs::TenantId, obs::TenantUsage>>& usage,
    const ShardRouter& router, size_t num_shards) const {
  RebalancePlan plan;
  if (num_shards == 0) return plan;

  struct Tenant {
    ClientId client = 0;
    size_t shard = 0;
    double load = 0.0;
  };
  std::vector<Tenant> tenants;
  tenants.reserve(usage.size());
  std::vector<double> shard_load(num_shards, 0.0);
  for (const auto& [client, tenant_usage] : usage) {
    Tenant t;
    t.client = client;
    t.shard = router.ShardForClient(client);
    if (t.shard >= num_shards) continue;  // defensive
    t.load = TenantLoad(tenant_usage);
    shard_load[t.shard] += t.load;
    tenants.push_back(t);
  }
  plan.shard_load_before = shard_load;

  double total =
      std::accumulate(shard_load.begin(), shard_load.end(), 0.0);
  double mean = total / static_cast<double>(num_shards);
  auto imbalance = [&](const std::vector<double>& loads) {
    if (mean <= 0.0) return 1.0;
    return *std::max_element(loads.begin(), loads.end()) / mean;
  };
  plan.imbalance_before = imbalance(shard_load);

  // Greedy: while the hottest shard is over trigger, move its heaviest
  // tenant that actually shrinks the gap to the coolest shard. A tenant
  // heavier than HALF the hot/cool gap would leave the pair at least as
  // spread as before (or just swap which shard is hot and ping-pong), so
  // it is skipped in favor of the next one down.
  while (plan.moves.size() < config_.max_moves && mean > 0.0) {
    size_t hottest = static_cast<size_t>(
        std::max_element(shard_load.begin(), shard_load.end()) -
        shard_load.begin());
    size_t coolest = static_cast<size_t>(
        std::min_element(shard_load.begin(), shard_load.end()) -
        shard_load.begin());
    if (shard_load[hottest] <= config_.trigger_ratio * mean) break;
    double gap = shard_load[hottest] - shard_load[coolest];

    Tenant* best = nullptr;
    for (Tenant& t : tenants) {
      if (t.shard != hottest || t.load <= 0.0 || t.load > gap / 2.0) continue;
      if (best == nullptr || t.load > best->load) best = &t;
    }
    if (best == nullptr) break;  // only immovable (too-heavy) tenants left

    RebalanceMove move;
    move.client = best->client;
    move.from_shard = hottest;
    move.to_shard = coolest;
    move.load = best->load;
    plan.moves.push_back(move);
    shard_load[hottest] -= best->load;
    shard_load[coolest] += best->load;
    best->shard = coolest;
  }

  plan.shard_load_after = shard_load;
  plan.imbalance_after = imbalance(shard_load);
  return plan;
}

}  // namespace aims::server
