#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/watchdog.h"

/// \file thread_pool.h
/// \brief Fixed-size task executor for the service runtime. The paper's
/// acquisition design already uses dedicated threads (Sec. 3.1's double
/// buffering); the server generalizes that to a shared pool so M clients'
/// ingest and recognition work multiplex over a bounded number of OS
/// threads instead of a thread per client.

namespace aims::server {

/// \brief A fixed set of worker threads draining a FIFO task queue.
///
/// The queue itself is unbounded: admission control (bounded queues,
/// reject-when-full) is the job of the services that feed the pool, which
/// know what a task represents and can account a drop meaningfully.
class ThreadPool {
 public:
  /// Spawns \p num_threads workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues a task. Returns false (task not enqueued) after
  /// Shutdown has begun.
  bool Submit(std::function<void()> task);

  /// \brief Stops accepting tasks, runs everything already queued to
  /// completion, and joins the workers. Idempotent; called by the
  /// destructor if not called explicitly.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks enqueued but not yet started (diagnostic).
  size_t queued() const;

  /// \brief Shared heartbeat slot for the whole pool: arms it, and every
  /// worker beats it when it wakes and around each task. One wedged task
  /// does not trip the deadline while its siblings still make progress —
  /// only a pool with NO worker beating (all stuck or deadlocked) reads
  /// as a stall. The handle must outlive the pool; null detaches.
  void SetWatchdog(obs::Watchdog::Handle* handle);

 private:
  void WorkerLoop();
  void BeatWatchdog() {
    obs::Watchdog::Handle* handle =
        watchdog_.load(std::memory_order_acquire);
    if (handle != nullptr) handle->Beat();
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;
  std::atomic<obs::Watchdog::Handle*> watchdog_{nullptr};
};

}  // namespace aims::server
