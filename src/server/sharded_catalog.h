#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/aims.h"
#include "obs/cache_stats.h"
#include "obs/shard_stats.h"
#include "obs/tracer.h"
#include "obs/wal_stats.h"
#include "server/metrics.h"
#include "server/shard_router.h"
#include "storage/wal.h"

/// \file sharded_catalog.h
/// \brief Horizontal partitioning of the session catalog across N
/// independent AimsSystem instances ("shards"), each guarded by a
/// reader/writer lock — now behind a *placement-opaque* routing layer:
///
///   * Placement comes from the ShardRouter's consistent-hash ring (plus
///     tenant pins), never from `client % N` — shard count can change
///     without rehashing the world.
///   * `GlobalSessionId`s are opaque: router epoch in the high 16 bits, a
///     monotone session counter in the low 48. No shard index is encoded,
///     so an id stays valid when the DataMigrator moves its session.
///   * A route table maps every id to its current {shard, local id}, with
///     a dual-read window during migration: reads try the migration
///     target first and fall back to the source copy.
///   * On the durable backend, the route table is backed by a routing
///     journal — a second WriteAheadLog (`routes.wal`, same record
///     framing as the shard WALs) replayed at open, so a crash mid-
///     migration recovers every session to exactly one owner.
///
/// The original concurrency properties are unchanged: ingest takes one
/// shard's exclusive lock, the whole off-line query path runs under shared
/// locks on AimsSystem's const read path, so ingests to different shards
/// proceed concurrently and queries never block other queries.

namespace aims::server {

/// \brief System-wide session id, minted by the catalog: routing epoch in
/// the high 16 bits (provenance only — never used for placement), a
/// monotone counter in the low 48. Opaque to clients; 0 is never minted.
using GlobalSessionId = uint64_t;

/// \brief One catalog entry as reported by ListSessions: the opaque id,
/// the owning tenant, and the core-level session metadata. Deliberately
/// carries no shard index.
struct CatalogSessionEntry {
  GlobalSessionId id = 0;
  ClientId client = 0;
  core::SessionInfo info;
};

/// \brief Typed fault-injection/admin request against one shard's block
/// device — the façade replacement for the removed raw device accessor.
/// The underlying setters are atomic, so this is safe while the shard
/// serves traffic.
struct AdminFaultRequest {
  size_t shard = 0;
  /// Arm the next N device reads / writes to fail with IoError (0 leaves
  /// the corresponding fault state unchanged; see clear_faults).
  size_t fail_next_reads = 0;
  size_t fail_next_writes = 0;
  /// Disarm any pending injected faults without touching the counters.
  bool clear_faults = false;
  /// Zero the device I/O counters AND clear any pending faults.
  bool reset_counters = false;
};

struct AdminFaultResponse {
  size_t shard = 0;
};

/// \brief Typed cache-clear request — the façade replacement for the
/// removed raw cache accessor. Clearing is internally synchronized.
struct ClearCacheRequest {
  /// A specific shard, or nullopt for every shard.
  std::optional<size_t> shard;
};

struct ClearCacheResponse {
  /// Shards whose cache was actually cleared (0 when caching is off).
  size_t shards_cleared = 0;
};

/// \brief N AimsSystem shards behind reader/writer locks, addressed
/// through the consistent-hash router and the opaque route table.
class ShardedCatalog {
 public:
  /// \param num_shards shard count (at least 1); every shard gets its own
  /// block device and catalog built from \p config.
  /// \param metrics optional registry for latency histograms and
  /// operation counters (may be null).
  /// \param router_config consistent-hash ring tuning.
  explicit ShardedCatalog(size_t num_shards, core::AimsConfig config = {},
                          MetricsRegistry* metrics = nullptr,
                          ShardRouterConfig router_config = {});
  ~ShardedCatalog();

  size_t num_shards() const { return shards_.size(); }

  /// \brief First failure among the shards' durable-store opens or the
  /// routing-journal open (always OK on the in-memory backend). A catalog
  /// whose recovery failed refuses mutating calls with this status.
  Status init_status() const;

  /// \brief Whether the shards run on the durable backend. When
  /// AimsConfig::durability.path is set, each shard gets its own store
  /// under `<path>/shard_<i>` and the catalog keeps its routing journal at
  /// `<path>/routes.wal`.
  bool durable() const;

  /// \brief The placement authority (ring + pins + epoch). Admin surface:
  /// clients never need it, but the migrator, planner, and tests do.
  const ShardRouter& router() const { return *router_; }
  ShardRouter* mutable_router() { return router_.get(); }

  // ---- Write path (exclusive lock on one shard) -------------------------

  /// \brief Device I/O one ingest performed, measured under the shard's
  /// exclusive lock (writes are serialized per shard, so the counter delta
  /// is exactly this ingest's) — the cost-attribution input for charging
  /// the acting tenant's CostLedger.
  struct IngestIoStats {
    size_t blocks_written = 0;
    size_t bytes_written = 0;
  };

  /// \brief Ingests a recording into the shard the router places \p client
  /// on. \p trace (optional) gains a "shard_lock" span covering the
  /// exclusive-lock wait plus the per-channel transform/write spans
  /// recorded by the system. \p io_stats (optional) receives the ingest's
  /// exact block-write I/O — filled even when the ingest fails partway, so
  /// a write fault's device I/O still reaches the tenant's cost ledger.
  ///
  /// On the durable backend this runs the staged protocol: stage + WAL
  /// append under the exclusive lock, wait for the commit sync with the
  /// lock released (trace span "wal_sync") so concurrent ingests share one
  /// group-commit fsync, then re-lock ("shard_apply_lock") for page
  /// write-back. The ingest is acknowledged only after its commit record —
  /// AND its route-journal entry — are on stable storage, which is what
  /// makes "acknowledged" imply "survives a crash with its route intact".
  Result<GlobalSessionId> Ingest(ClientId client, const std::string& name,
                                 const streams::Recording& recording,
                                 obs::Trace* trace = nullptr,
                                 IngestIoStats* io_stats = nullptr);

  // ---- Continuous aggregates (server push-down / commit hook) -----------

  /// \brief Runs after every acknowledged Ingest (route registered, no
  /// shard lock held) with the standing-query results the core maintained
  /// for the new session. The continuous-aggregate registry wires itself
  /// here. Set before traffic; not fired for migration copies.
  using IngestCommitHook =
      std::function<void(GlobalSessionId, ClientId,
                         const std::vector<core::StandingRangeUpdate>&)>;
  void SetIngestCommitHook(IngestCommitHook hook) {
    ingest_hook_ = std::move(hook);
  }

  /// \brief Replaces every shard's standing-query set (one exclusive lock
  /// per shard, taken in shard order) — the registry's push-down.
  void SetStandingQueries(const std::vector<core::StandingRangeQuery>& queries);

  // ---- Read path (shared lock on one shard) -----------------------------

  Result<core::SessionInfo> GetSession(GlobalSessionId id) const;
  Result<std::vector<double>> ReadChannel(GlobalSessionId id,
                                          size_t channel) const;
  Result<core::RangeStatistics> QueryRange(GlobalSessionId id, size_t channel,
                                           size_t first_frame,
                                           size_t last_frame) const;

  /// \brief Progressive range query under the shard's shared lock.
  /// \p observer runs after every block I/O (still under the lock — keep it
  /// cheap) and may stop the evaluation early; stopping releases the
  /// shard's read lock as soon as the current block completes, which is
  /// what makes scheduler-level cancellation prompt. \p on_shard_locked
  /// (optional) fires once the shared lock has been acquired, so callers
  /// can separate lock-wait time from evaluation time in traces.
  Result<core::ProgressiveRangeResult> QueryRangeProgressive(
      GlobalSessionId id, size_t channel, size_t first_frame,
      size_t last_frame, const core::ProgressiveObserver& observer = {},
      const std::function<void()>& on_shard_locked = {}) const;

  /// \brief EXPLAIN under the shard's shared lock: the deterministic plan
  /// a progressive evaluation of this range would follow, with zero block
  /// I/O. The returned plan's `session` field carries the global id.
  Result<core::QueryPlan> PlanRangeQuery(GlobalSessionId id, size_t channel,
                                         size_t first_frame,
                                         size_t last_frame) const;

  /// All sessions across all shards, in id (= ingest) order.
  std::vector<CatalogSessionEntry> ListSessions() const;

  // ---- Raw-sample lifecycle (storage/tslife.h) --------------------------

  /// \brief Segment metadata of one session (dual-read aware, like the
  /// other reads).
  Result<std::vector<storage::tslife::SegmentMeta>> ListSegments(
      GlobalSessionId id) const;

  /// \brief Decodes one channel's raw-segment samples, time-ascending.
  Result<std::vector<gorilla::Sample>> ReadRawSamples(GlobalSessionId id,
                                                      size_t channel) const;

  /// \brief Sealed-segment bytes summed over shards (the
  /// aims_tslife_segment_bytes gauge's source).
  size_t TotalSegmentBytes() const;

  /// \brief Per-tenant retention tiers: the default policy plus overrides
  /// for specific clients.
  struct TenantRetentionPolicies {
    storage::tslife::RetentionPolicy default_policy;
    std::unordered_map<ClientId, storage::tslife::RetentionPolicy> overrides;
  };

  /// \brief One retention sweep over every shard (exclusive lock per
  /// shard, one WAL record group per shard on the durable backend).
  /// Sessions of an override client sweep under that client's policy;
  /// everything else — including unrouted leftovers like migrated-away
  /// source copies — sweeps under the default. \p now_us is the sweep's
  /// clock (ages are measured against data time, so tests inject it).
  Result<storage::tslife::SweepStats> SweepRetention(
      const TenantRetentionPolicies& policies, int64_t now_us);

  size_t total_sessions() const;
  /// Device read counter summed over shards.
  size_t total_blocks_read() const;
  /// Device write counter summed over shards.
  size_t total_blocks_written() const;
  /// Block size every shard's device was built with (bytes moved per
  /// block I/O — the ledger's bytes-from-blocks conversion factor).
  size_t block_size_bytes() const { return config_.block_size_bytes; }

  /// \brief Block-cache counters summed across shards (all zero when the
  /// config disabled caching) — the aims_cache_* Prometheus family and the
  /// GetHealth cache section.
  obs::CacheStats TotalCacheStats() const;

  /// \brief WAL counters summed across shards (zero-valued struct on the
  /// in-memory backend) — the aims_wal_* Prometheus family and the
  /// GetHealth durability section. max_commits_per_sync aggregates as the
  /// max over shards (it is a high-water mark, not a total). Includes the
  /// routing journal's own counters.
  obs::WalStats TotalWalStats() const;

  // ---- Shard health ------------------------------------------------------

  /// \brief Per-shard health probes: session/tenant placement, lock-wait
  /// quantiles, WAL lag, queue depth. Feeds GetShardStats and the
  /// `aims_shard_*` Prometheus family, and refreshes the
  /// "catalog.shard_lock_p99_us" gauge the StatsReporter watches.
  std::vector<obs::ShardStatsEntry> ShardStats() const;

  /// \brief Arms every shard WAL's (and the routing journal's) group-
  /// commit sync sections on one shared heartbeat slot: concurrent sync
  /// leaders each open a scope, so the handle stays armed while ANY fsync
  /// is in flight and a wedged device shows up as a watchdog stall. No-op
  /// on the in-memory backend. Wire before traffic; the handle must
  /// outlive the catalog.
  void SetWalWatchdog(obs::Watchdog::Handle* handle);

  // ---- Typed admin surface ----------------------------------------------

  /// \brief Fault injection / counter reset against one shard's device.
  /// InvalidArgument on a bad shard index.
  Result<AdminFaultResponse> ApplyFault(const AdminFaultRequest& request);

  /// \brief Clears one shard's (or every shard's) block cache.
  Result<ClearCacheResponse> ClearCache(const ClearCacheRequest& request);

  // ---- Live migration (called by the DataMigrator) -----------------------

  /// \brief Starts moving \p client to \p target_shard: pins the tenant so
  /// new ingests land on the target, journals the migration-begin record,
  /// waits for in-flight ingests that resolved placement before the pin to
  /// drain (they are acknowledged, never dropped), then returns the ids of
  /// the tenant's sessions not yet on the target. On error the pin is
  /// rolled back.
  Result<std::vector<GlobalSessionId>> BeginTenantMigration(
      ClientId client, size_t target_shard);

  /// \brief Copies one session to \p target_shard and flips its route into
  /// the dual-read window (primary = target, fallback = source). The copy
  /// is materialized under the source's *shared* lock — concurrent queries
  /// keep running — and the owner flip is journaled only after the target
  /// copy is durable, so a crash leaves exactly one owner. The copy
  /// bypasses catalog metrics and carries no tenant attribution: migration
  /// is an infrastructure move, not tenant activity.
  Status MigrateSession(GlobalSessionId id, size_t target_shard);

  /// \brief Ends the dual-read window for every session of \p client
  /// (atomic routing flip to target-only), journals the commit record
  /// (which also makes the pin durable), and bumps the routing epoch.
  Status CommitTenantMigration(ClientId client, size_t target_shard);

  /// \brief Abandons an in-progress migration: already-moved sessions stay
  /// on the target (their copies are durable there), dual-read windows are
  /// closed, and the pin is dropped so future ingests fall back to the
  /// ring.
  void AbortTenantMigration(ClientId client);

  // ---- Deprecated raw accessors (one-PR shim) ----------------------------

  /// \deprecated Use ApplyFault — the typed admin surface. Kept one PR so
  /// out-of-tree callers can migrate; will be removed.
  storage::BlockDevice* mutable_shard_device(size_t shard);

  /// \deprecated Use ClearCache — the typed admin surface. Kept one PR so
  /// out-of-tree callers can migrate; will be removed.
  storage::BlockCache* mutable_shard_cache(size_t shard);

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    core::AimsSystem system;
    /// Last published WAL lag of this shard (bytes), updated after every
    /// ApplyDurable so the "storage.wal_lag_bytes" gauge can be recomputed
    /// without taking every other shard's lock.
    std::atomic<uint64_t> wal_lag{0};
    /// Health probes: operation counters, lock-queue depth, and the
    /// lock-wait histogram (standalone — not registry-owned, so per-shard
    /// series never pollute the registry's flat namespace). Mutable: the
    /// const read path records into them too.
    mutable std::atomic<uint64_t> ingests{0};
    mutable std::atomic<uint64_t> queries{0};
    mutable std::atomic<int64_t> active_ops{0};
    mutable obs::Histogram lock_wait_ms;
    Shard(const core::AimsConfig& config, std::vector<double> bounds)
        : system(config), lock_wait_ms(std::move(bounds)) {}
  };

  /// \brief Current placement of one session. `dual` marks the migration
  /// dual-read window: primary is the target copy, fallback the source.
  struct Route {
    ClientId client = 0;
    uint32_t shard = 0;
    core::SessionId local = 0;
    bool dual = false;
    uint32_t fallback_shard = 0;
    core::SessionId fallback_local = 0;
  };

  /// RAII in-flight-ingest marker: BeginTenantMigration waits for these to
  /// drain after pinning, so its session enumeration is complete.
  class IngestGate;

  Result<Route> FindRoute(GlobalSessionId id) const;

  /// Mints the next opaque id: current router epoch (high 16) | counter.
  GlobalSessionId MintSessionId();

  /// Runs \p fn under \p shard's shared lock with lock-wait timing and
  /// queue-depth accounting.
  template <typename Fn>
  auto ReadOnShard(const Shard& shard, Fn&& fn) const;

  /// In-memory ingest: one exclusive-lock section, I/O attributed by the
  /// device write-counter delta. \p updates (optional, threaded through to
  /// the system) receives the standing-query results of the new session.
  Result<core::SessionId> IngestInMemory(
      Shard& shard, const std::string& name,
      const streams::Recording& recording, obs::Trace* trace,
      IngestIoStats* io_stats, std::vector<core::StandingRangeUpdate>* updates);
  /// Durable ingest via the staged protocol: stage + WAL-append under the
  /// exclusive lock, wait for the (group-)commit sync with the lock
  /// released, then re-lock to write the pages back — concurrent ingests
  /// into the same shard share one fsync instead of serializing syncs.
  Result<core::SessionId> IngestDurable(
      Shard& shard, const std::string& name,
      const streams::Recording& recording, obs::Trace* trace,
      IngestIoStats* io_stats, std::vector<core::StandingRangeUpdate>* updates);
  /// Shard-level ingest dispatch (no routing, no metrics) — the normal
  /// ingest path and the migrator's copy step share it. The migrator
  /// passes a null \p updates: a migration copy is not tenant activity and
  /// must not fire the continuous-aggregate hook.
  Result<core::SessionId> IngestOnShard(
      Shard& shard, const std::string& name,
      const streams::Recording& recording, obs::Trace* trace,
      IngestIoStats* io_stats,
      std::vector<core::StandingRangeUpdate>* updates = nullptr);

  /// Re-publishes the catalog-wide WAL-lag gauge from the per-shard
  /// atomics (no-op without a metrics registry or on the mem backend).
  void PublishWalLag();
  /// Re-publishes the max-over-shards lock-wait p99 gauge.
  void PublishShardHealth();

  /// Inserts a freshly minted route (and its by-client index entry).
  void RegisterRoute(GlobalSessionId id, ClientId client, size_t shard,
                     core::SessionId local);

  // ---- Routing journal (durable backend only) ---------------------------

  /// Appends one record as its own committed journal transaction; the
  /// append is durable when this returns OK. No-op in-memory.
  Status JournalAppend(const std::vector<uint8_t>& blob);
  Status JournalRouteAdd(GlobalSessionId id, ClientId client, size_t shard,
                         core::SessionId local);
  Status JournalMigrationBegin(ClientId client, size_t target_shard);
  Status JournalRouteMove(GlobalSessionId id, size_t target_shard,
                          core::SessionId target_local);
  Status JournalMigrationCommit(ClientId client, size_t target_shard);

  /// Opens `<path>/routes.wal`, replays it into the route table (validated
  /// against what shard recovery actually restored), adopts orphaned shard
  /// sessions that never got a durable route (their ingests were never
  /// acknowledged), and rewrites the journal as one compact snapshot
  /// transaction. Sets init error state on failure.
  Status OpenAndReplayJournal(const std::string& base_path);

  core::AimsConfig config_;
  std::unique_ptr<ShardRouter> router_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Route table + by-client index, guarded by routes_mutex_.
  mutable std::shared_mutex routes_mutex_;
  std::unordered_map<GlobalSessionId, Route> routes_;
  std::unordered_map<ClientId, std::vector<GlobalSessionId>> client_sessions_;
  std::atomic<uint64_t> next_session_counter_{1};

  /// In-flight ingest gate (see IngestGate).
  mutable std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  std::unordered_map<ClientId, size_t> inflight_;

  /// Routing journal; null on the in-memory backend.
  std::unique_ptr<storage::durable::WriteAheadLog> journal_;
  Status journal_status_;

  /// Continuous-aggregate commit hook (set before traffic; may be empty).
  IngestCommitHook ingest_hook_;

  Counter* ingest_count_ = nullptr;
  Counter* query_count_ = nullptr;
  Counter* blocks_read_ = nullptr;
  Gauge* wal_lag_gauge_ = nullptr;
  Gauge* shard_lock_p99_gauge_ = nullptr;
  Histogram* ingest_latency_ms_ = nullptr;
  Histogram* query_latency_ms_ = nullptr;
};

}  // namespace aims::server
