#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/aims.h"
#include "obs/cache_stats.h"
#include "obs/tracer.h"
#include "obs/wal_stats.h"
#include "server/metrics.h"

/// \file sharded_catalog.h
/// \brief Horizontal partitioning of the session catalog across N
/// independent AimsSystem instances ("shards"), each guarded by a
/// reader/writer lock. Ingest takes one shard's exclusive lock; the whole
/// off-line query path (catalog lookups, channel reads, wavelet-domain
/// range queries) runs under shared locks on AimsSystem's const read path.
/// Two properties follow:
///
///   * ingests to different shards proceed concurrently, and
///   * queries never block other queries — only an ingest into the *same*
///     shard serializes with them,
///
/// which is what lets throughput scale with shards/cores (CPU-bound) or
/// with overlapped block-I/O waits (disk-bound; see
/// DiskCostModel::simulate_io_wait) instead of serializing every operation
/// behind one global lock.

namespace aims::server {

/// \brief Identifier of one tenant (client) of the service runtime.
using ClientId = uint64_t;

/// \brief System-wide session id: shard index in the high 32 bits, the
/// shard-local core::SessionId in the low 32.
using GlobalSessionId = uint64_t;

/// \brief N AimsSystem shards behind reader/writer locks.
class ShardedCatalog {
 public:
  /// \param num_shards shard count (at least 1); every shard gets its own
  /// block device and catalog built from \p config.
  /// \param metrics optional registry for latency histograms and
  /// operation counters (may be null).
  explicit ShardedCatalog(size_t num_shards, core::AimsConfig config = {},
                          MetricsRegistry* metrics = nullptr);

  size_t num_shards() const { return shards_.size(); }

  /// \brief First failure among the shards' durable-store opens (always OK
  /// on the in-memory backend). A shard whose recovery failed refuses
  /// every mutating call with this status; callers that want fail-fast
  /// semantics check here right after construction.
  Status init_status() const;

  /// \brief Whether the shards run on the durable backend. When
  /// AimsConfig::durability.path is set, each shard gets its own store
  /// under `<path>/shard_<i>` so per-shard WALs never contend on one file.
  bool durable() const;

  /// Deterministic tenant placement: clients map to shards round-robin by
  /// id, so a session's shard never depends on arrival order.
  size_t ShardForClient(ClientId client) const {
    return static_cast<size_t>(client % shards_.size());
  }

  static GlobalSessionId MakeGlobalId(size_t shard, core::SessionId local) {
    return (static_cast<GlobalSessionId>(shard) << 32) |
           static_cast<GlobalSessionId>(local);
  }
  static size_t ShardOf(GlobalSessionId id) {
    return static_cast<size_t>(id >> 32);
  }
  static core::SessionId LocalId(GlobalSessionId id) {
    return static_cast<core::SessionId>(id & 0xffffffffu);
  }

  // ---- Write path (exclusive lock on one shard) -------------------------

  /// \brief Device I/O one ingest performed, measured under the shard's
  /// exclusive lock (writes are serialized per shard, so the counter delta
  /// is exactly this ingest's) — the cost-attribution input for charging
  /// the acting tenant's CostLedger.
  struct IngestIoStats {
    size_t blocks_written = 0;
    size_t bytes_written = 0;
  };

  /// \brief Ingests a recording into \p client's shard. \p trace
  /// (optional) gains a "shard_lock" span covering the exclusive-lock wait
  /// plus the per-channel transform/write spans recorded by the system.
  /// \p io_stats (optional) receives the ingest's exact block-write I/O —
  /// filled even when the ingest fails partway, so a write fault's device
  /// I/O still reaches the tenant's cost ledger.
  ///
  /// On the durable backend this runs the staged protocol: stage + WAL
  /// append under the exclusive lock, wait for the commit sync with the
  /// lock released (trace span "wal_sync") so concurrent ingests share one
  /// group-commit fsync, then re-lock ("shard_apply_lock") for page
  /// write-back. The ingest is acknowledged only after its commit record
  /// is on stable storage.
  Result<GlobalSessionId> Ingest(ClientId client, const std::string& name,
                                 const streams::Recording& recording,
                                 obs::Trace* trace = nullptr,
                                 IngestIoStats* io_stats = nullptr);

  // ---- Read path (shared lock on one shard) -----------------------------

  Result<core::SessionInfo> GetSession(GlobalSessionId id) const;
  Result<std::vector<double>> ReadChannel(GlobalSessionId id,
                                          size_t channel) const;
  Result<core::RangeStatistics> QueryRange(GlobalSessionId id, size_t channel,
                                           size_t first_frame,
                                           size_t last_frame) const;

  /// \brief Progressive range query under the shard's shared lock.
  /// \p observer runs after every block I/O (still under the lock — keep it
  /// cheap) and may stop the evaluation early; stopping releases the
  /// shard's read lock as soon as the current block completes, which is
  /// what makes scheduler-level cancellation prompt. \p on_shard_locked
  /// (optional) fires once the shared lock has been acquired, so callers
  /// can separate lock-wait time from evaluation time in traces.
  Result<core::ProgressiveRangeResult> QueryRangeProgressive(
      GlobalSessionId id, size_t channel, size_t first_frame,
      size_t last_frame, const core::ProgressiveObserver& observer = {},
      const std::function<void()>& on_shard_locked = {}) const;

  /// \brief EXPLAIN under the shard's shared lock: the deterministic plan
  /// a progressive evaluation of this range would follow, with zero block
  /// I/O. The returned plan's `session` field carries the global id.
  Result<core::QueryPlan> PlanRangeQuery(GlobalSessionId id, size_t channel,
                                         size_t first_frame,
                                         size_t last_frame) const;

  /// All sessions across all shards (shard order, then local order).
  std::vector<core::SessionInfo> ListSessions() const;

  size_t total_sessions() const;
  /// Device read counter summed over shards.
  size_t total_blocks_read() const;
  /// Device write counter summed over shards.
  size_t total_blocks_written() const;
  /// Block size every shard's device was built with (bytes moved per
  /// block I/O — the ledger's bytes-from-blocks conversion factor).
  size_t block_size_bytes() const { return config_.block_size_bytes; }

  /// \brief Block-cache counters summed across shards (all zero when the
  /// config disabled caching) — the aims_cache_* Prometheus family and the
  /// GetHealth cache section.
  obs::CacheStats TotalCacheStats() const;

  /// \brief WAL counters summed across shards (zero-valued struct on the
  /// in-memory backend) — the aims_wal_* Prometheus family and the
  /// GetHealth durability section. max_commits_per_sync aggregates as the
  /// max over shards (it is a high-water mark, not a total).
  obs::WalStats TotalWalStats() const;

  /// \brief Test/admin access to one shard's block device (fault
  /// injection, counter resets). The fault-injection setters are atomic,
  /// so this is safe to call while the shard is serving traffic.
  storage::BlockDevice* mutable_shard_device(size_t shard);

  /// \brief Test/admin access to one shard's block cache, or nullptr when
  /// caching is disabled. Clear() is internally synchronized; use it (e.g.
  /// benches forcing a cold start) rather than mutating entries.
  storage::BlockCache* mutable_shard_cache(size_t shard);

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    core::AimsSystem system;
    /// Last published WAL lag of this shard (bytes), updated after every
    /// ApplyDurable so the "storage.wal_lag_bytes" gauge can be recomputed
    /// without taking every other shard's lock.
    std::atomic<uint64_t> wal_lag{0};
    explicit Shard(const core::AimsConfig& config) : system(config) {}
  };

  const Shard* ShardFor(GlobalSessionId id) const;

  /// In-memory ingest: one exclusive-lock section, I/O attributed by the
  /// device write-counter delta.
  Result<core::SessionId> IngestInMemory(Shard& shard, const std::string& name,
                                         const streams::Recording& recording,
                                         obs::Trace* trace,
                                         IngestIoStats* io_stats);
  /// Durable ingest via the staged protocol: stage + WAL-append under the
  /// exclusive lock, wait for the (group-)commit sync with the lock
  /// released, then re-lock to write the pages back — concurrent ingests
  /// into the same shard share one fsync instead of serializing syncs.
  Result<core::SessionId> IngestDurable(Shard& shard, const std::string& name,
                                        const streams::Recording& recording,
                                        obs::Trace* trace,
                                        IngestIoStats* io_stats);
  /// Re-publishes the catalog-wide WAL-lag gauge from the per-shard
  /// atomics (no-op without a metrics registry or on the mem backend).
  void PublishWalLag();

  core::AimsConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Counter* ingest_count_ = nullptr;
  Counter* query_count_ = nullptr;
  Counter* blocks_read_ = nullptr;
  Gauge* wal_lag_gauge_ = nullptr;
  Histogram* ingest_latency_ms_ = nullptr;
  Histogram* query_latency_ms_ = nullptr;
};

}  // namespace aims::server
