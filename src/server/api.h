#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/cache_stats.h"
#include "obs/cost_ledger.h"
#include "obs/shard_stats.h"
#include "obs/stats_reporter.h"
#include "obs/timeseries.h"
#include "obs/wal_stats.h"
#include "recognition/isolator.h"
#include "server/data_migrator.h"
#include "server/query_scheduler.h"
#include "server/sharded_catalog.h"
#include "streams/sample.h"

/// \file api.h
/// \brief The typed request/response envelopes of the AimsServer façade —
/// the narrow waist every client goes through. Each operation takes one
/// *Request struct and returns Result<*Response>: inputs and outputs are
/// named fields (extensible without signature churn), and every failure
/// travels as a Status whose StatusCode round-trips unchanged from the
/// subsystem that produced it (catalog NotFound stays NotFound at the
/// client). The raw subsystem accessors on AimsServer remain available for
/// tests and benches, but application code is expected to speak this API.

namespace aims::server {

/// \brief Registers a client with the server. A session must be open
/// before the client can ingest, query, or stream.
struct OpenSessionRequest {
  ClientId client = 0;
  /// Also opens a live recognition stream for this client (requires a
  /// non-empty vocabulary); StreamSamples then becomes available.
  bool enable_recognition = false;
};

struct OpenSessionResponse {
  ClientId client = 0;
  /// Routing generation at open time — provenance/debugging only.
  /// Placement is deliberately NOT exposed: which physical shard a
  /// client's recordings land on is the router's concern and can change
  /// (live rebalancing) without the client noticing.
  uint64_t router_epoch = 0;
};

/// \brief Stores one fully materialized recording (blocking convenience
/// over the asynchronous ingest pipeline: admission, queueing, and retry
/// policy all still apply).
struct IngestRecordingRequest {
  ClientId client = 0;
  std::string name;
  streams::Recording recording;
};

struct IngestRecordingResponse {
  GlobalSessionId session = 0;
  size_t num_frames = 0;
  size_t num_channels = 0;
};

/// \brief Submits a progressive range query to the scheduler.
struct SubmitQueryRequest {
  ClientId client = 0;
  QueryRequest query;
};

struct SubmitQueryResponse {
  /// Live handle: poll, Cancel(), or Wait() for the QueryOutcome.
  QueryTicketPtr ticket;
};

/// \brief Feeds live frames to the client's recognition stream.
struct StreamSamplesRequest {
  ClientId client = 0;
  std::vector<streams::Frame> frames;
};

struct StreamSamplesResponse {
  /// Motions recognized while consuming this batch, in stream order.
  std::vector<recognition::RecognitionEvent> events;
  size_t frames_pushed = 0;
};

/// \brief Asks the server how it is doing: counter rates, queue
/// saturation, latency-vs-target — the StatsReporter's derived health
/// signal (see obs/stats_reporter.h). Needs no open session: health is a
/// property of the server, not of one tenant.
struct GetHealthRequest {
  /// Re-evaluate the registry right now instead of returning the
  /// background thread's most recent periodic snapshot.
  bool force_refresh = false;
};

struct GetHealthResponse {
  obs::HealthSnapshot health;
  /// Whether the periodic reporter thread is running (false means the
  /// snapshot was computed on demand).
  bool reporter_running = false;
  /// Catalog-wide block-cache counters (summed over shards). All zero when
  /// caching is disabled or ObsConfig::enable_cache_stats is off.
  obs::CacheStats cache;
  /// Catalog-wide WAL counters (summed over shards; the group-commit
  /// batch high-water mark is a max). All zero on the in-memory backend
  /// or when ObsConfig::enable_wal_stats is off.
  obs::WalStats wal;
};

/// \brief Asks the server what each tenant has consumed: CPU time, block
/// I/O, queue occupancy, and operation counts, attributed by the
/// CostLedger every ingest/query/stream path charges (see
/// obs/cost_ledger.h). Needs no open session: usage outlives sessions.
struct GetTenantUsageRequest {
  /// A specific tenant, or nullopt for every tenant the ledger has seen.
  std::optional<ClientId> client;
};

struct TenantUsageEntry {
  ClientId client = 0;
  obs::TenantUsage usage;
};

struct GetTenantUsageResponse {
  /// Per-tenant usage in ascending client order (one entry when the
  /// request named a specific client).
  std::vector<TenantUsageEntry> tenants;
  /// Sum over \c tenants — the server-wide attributed total.
  obs::TenantUsage total;
};

/// \brief Range-queries the server's self-hosted metrics history: "what
/// did <series> look like over [start, end] at <step> resolution under
/// <func>?" — the typed twin of `GET /api/v1/query_range` on the admin
/// plane. Needs no open session. The history store retains a bounded
/// window (ObsConfig::history), so points older than retention are gone;
/// absence of history is an empty answer, not an error. The range is
/// bounded like Prometheus: more than obs::kMaxRangeQueryPoints step
/// windows, or a timestamp/step beyond obs::kMaxRangeQueryTimestampMs,
/// is InvalidArgument — so pick a start near now, not 0.
struct QueryMetricsHistoryRequest {
  /// Stored series name, e.g. "catalog.ingest_count" or
  /// "scheduler.exec_ms.p99" (histograms are stored as derived
  /// .p50/.p95/.p99/.count series).
  std::string series;
  /// Aggregation per step window: avg/min/max/last/rate/delta/quantile
  /// (see obs::RangeFunc).
  obs::RangeFunc func = obs::RangeFunc::kAvg;
  /// Quantile for kQuantile, in [0,1].
  double quantile = 0.99;
  /// Window, in the scraper's clock (unix ms). end_ms 0 means "now".
  int64_t start_ms = 0;
  int64_t end_ms = 0;
  /// Step stride; each point t_i aggregates (t_i - step, t_i].
  int64_t step_ms = 1000;
};

struct QueryMetricsHistoryResponse {
  std::string series;
  obs::RangeFunc func = obs::RangeFunc::kAvg;
  /// Evaluated points, time-ascending; windows with no samples are
  /// omitted (Prometheus matrix semantics).
  std::vector<obs::RangePoint> points;
};

/// \brief Asks the server for its per-shard health probes: placement
/// counts, lock-wait quantiles, WAL lag, queue depth — the admin-facing
/// view of the routing layer. Shard indices appear here (and only here):
/// this is the operator surface, not the client surface.
struct GetShardStatsRequest {};

struct GetShardStatsResponse {
  /// Current routing generation (bumped by pins / topology changes /
  /// committed migrations).
  uint64_t router_epoch = 0;
  /// One entry per shard, in shard order.
  std::vector<obs::ShardStatsEntry> shards;
};

/// \brief Asks the server to rebalance tenant placement. Two modes:
///   * explicit move — both \c client and \c target_shard set: migrate
///     exactly that tenant there;
///   * planner-driven — neither set: derive hot-tenant moves from the cost
///     ledger's per-tenant load (FailedPrecondition when the ledger is
///     disabled).
/// The returned plan describes what will run; with \c dry_run the plan is
/// returned without executing. Execution is asynchronous — poll
/// RebalanceStatus. AlreadyExists when a rebalance is still running.
struct TriggerRebalanceRequest {
  std::optional<ClientId> client;
  std::optional<size_t> target_shard;
  bool dry_run = false;
};

struct TriggerRebalanceResponse {
  RebalancePlan plan;
  /// False for dry runs and empty plans.
  bool started = false;
};

/// \brief Polls the progress of the asynchronous rebalance.
struct RebalanceStatusRequest {};

struct RebalanceStatusResponse {
  bool running = false;
  /// Moves of the current (or most recent) rebalance and how many have
  /// completed.
  std::vector<RebalanceMove> moves;
  size_t completed_moves = 0;
  /// The migrator's per-tenant progress for the move in flight.
  MigrationStatus migration;
  /// First failure of the run, if any (the run stops at it).
  std::string error;
  uint64_t router_epoch = 0;
};

// AdminFaultRequest/Response and ClearCacheRequest/Response — the typed
// fault-injection and cache-admin envelopes — are defined next to the
// catalog (sharded_catalog.h) and re-exported through this header; they
// are part of the same façade surface.

/// \brief Asks the server's flight recorder to capture a bundle now.
///
/// The typed twin of `GET /debug/flightrecord` on the admin plane: the
/// recorder snapshots its ring buffers (health history, evicted traces,
/// slow queries, events) plus live WAL/cache/shard/watchdog context.
struct DumpFlightRecordRequest {
  /// Free-text reason stamped into the bundle (shows up in post-mortems).
  std::string reason = "api request";
  /// When true and the recorder has a bundle path, also persist the
  /// bundle to disk; when false the bundle is only rendered in-memory.
  bool write_file = true;
};

struct DumpFlightRecordResponse {
  /// Path the bundle was written to; empty for in-memory-only dumps.
  std::string path;
  /// The rendered bundle JSON.
  std::string bundle_json;
};

/// \brief Registers a continuous aggregate: a standing range query over
/// \c channel / [\c first_frame, \c last_frame] whose exact result is
/// incrementally maintained for every session the client ingests (and
/// backfilled for the sessions it already stored). A later SubmitQuery
/// matching the range exactly answers from the maintained result with
/// zero block I/O — EXPLAIN shows an aggregate_hit plan. NotFound without
/// an open session; InvalidArgument on an inverted range.
struct RegisterAggregateRequest {
  ClientId client = 0;
  size_t channel = 0;
  size_t first_frame = 0;
  size_t last_frame = 0;
};

struct RegisterAggregateResponse {
  /// Registry handle (pass to UnregisterAggregate).
  uint64_t handle = 0;
  /// Already-stored sessions whose result was computed at registration.
  size_t sessions_backfilled = 0;
};

/// \brief Drops one continuous aggregate. NotFound on an unknown handle.
struct UnregisterAggregateRequest {
  uint64_t handle = 0;
};

struct UnregisterAggregateResponse {};

/// \brief Sets the retention policy the background sweeper applies: the
/// server default (client unset) or one tenant's override. With \c clear
/// set, drops the named tenant's override instead (InvalidArgument when
/// clearing without a client).
struct SetRetentionPolicyRequest {
  /// A specific tenant's override, or nullopt for the server default.
  std::optional<ClientId> client;
  storage::tslife::RetentionPolicy policy;
  bool clear = false;
};

struct SetRetentionPolicyResponse {};

/// \brief Runs one retention sweep right now on the caller's thread (the
/// background cadence, if configured, keeps running independently).
/// \c now_us 0 sweeps against the wall clock; tests inject a time.
struct TriggerRetentionSweepRequest {
  int64_t now_us = 0;
};

struct TriggerRetentionSweepResponse {
  storage::tslife::SweepStats stats;
};

/// \brief Closes the client's session (and recognition stream, if open).
struct CloseSessionRequest {
  ClientId client = 0;
};

struct CloseSessionResponse {
  /// Final recognition event if the stream tail completed a motion.
  std::optional<recognition::RecognitionEvent> final_event;
};

}  // namespace aims::server
