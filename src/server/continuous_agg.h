#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/aims.h"
#include "server/metrics.h"
#include "server/sharded_catalog.h"

/// \file continuous_agg.h
/// \brief Continuous aggregates: standing progressive range queries whose
/// ProPolyne results are maintained incrementally at ingest commit time.
/// A dashboard registers its range once; from then on every ingest
/// evaluates the range against the in-memory wavelet coefficients (see
/// core::StandingRangeQuery / propolyne::IncrementalRangeSum) and the
/// registry retains one exact result per (registration, session). A later
/// range query that matches a registration exactly is answered from here
/// with ZERO block I/O — the scheduler consults Lookup before planning.
///
/// The registry owns handles and per-client scoping; the core systems own
/// evaluation. Registration pushes the standing-query set down to every
/// shard (exclusive locks, like the ingests that read it) and backfills
/// the client's existing sessions with one exact QueryRange each — block
/// I/O once at registration, never again.

namespace aims::server {

/// \brief What one dashboard registers: a fixed range over a fixed
/// channel, scoped to the registering client's sessions.
struct AggregateSpec {
  ClientId client = 0;
  size_t channel = 0;
  size_t first_frame = 0;
  size_t last_frame = 0;
};

/// \brief One maintained exact result (sum/mean over the spec's range in
/// one session).
struct AggregateResult {
  double sum = 0.0;
  double mean = 0.0;
  size_t count = 0;
};

/// \brief Outcome of Register: the handle plus how many already-stored
/// sessions were backfilled.
struct RegisteredAggregate {
  uint64_t handle = 0;
  size_t sessions_backfilled = 0;
};

/// \brief Handle table + maintained results of every continuous aggregate.
///
/// Thread-safe. Register/Unregister take per-shard exclusive locks (the
/// push-down) and must not be called from under a shard lock;
/// OnIngestCommit runs from the catalog's ingest path with no shard lock
/// held, so the lock order registry-after-shards never cycles.
class ContinuousAggregateRegistry {
 public:
  /// \param catalog target of push-downs and backfills (not owned).
  /// \param metrics optional registry for the aims_tslife_aggregate_*
  /// family (may be null).
  explicit ContinuousAggregateRegistry(ShardedCatalog* catalog,
                                       MetricsRegistry* metrics = nullptr);

  /// \brief Registers \p spec: assigns a handle, pushes the updated
  /// standing-query set to every shard (so ingests from this point on
  /// maintain it), then backfills the client's existing sessions with one
  /// exact QueryRange each. Sessions the range does not fit (too short,
  /// no such channel) are skipped, not errors. InvalidArgument on an
  /// inverted range. An ingest racing the registration may be both
  /// backfilled and hook-updated; both write the same exact value.
  Result<RegisteredAggregate> Register(const AggregateSpec& spec);

  /// \brief Drops one registration and pushes the shrunken set down.
  /// NotFound for an unknown handle.
  Status Unregister(uint64_t handle);

  /// \brief Ingest-commit hook (wire via
  /// ShardedCatalog::SetIngestCommitHook): folds the core's maintained
  /// updates into the registry. Updates for registrations whose client is
  /// not the ingesting client are ignored — the core evaluates every
  /// standing query against every ingest, the scoping lives here.
  void OnIngestCommit(GlobalSessionId session, ClientId client,
                      const std::vector<core::StandingRangeUpdate>& updates);

  /// \brief The scheduler's consult: an exact-match maintained result for
  /// this (client, session, channel, range), or nullopt. A hit means the
  /// answer below is exact and cost zero block I/O.
  std::optional<AggregateResult> Lookup(ClientId client,
                                        GlobalSessionId session,
                                        size_t channel, size_t first_frame,
                                        size_t last_frame) const;

  /// \brief Forgets one session's maintained results (a dropped or
  /// migrated-away session must not serve stale hits).
  void ForgetSession(GlobalSessionId session);

  size_t size() const;

 private:
  struct Registration {
    AggregateSpec spec;
    /// Maintained exact results, keyed by the catalog's global id.
    std::unordered_map<GlobalSessionId, AggregateResult> values;
  };

  /// The core-facing projection of the handle table (callers hold mutex_).
  std::vector<core::StandingRangeQuery> StandingQueriesLocked() const;

  ShardedCatalog* catalog_;

  mutable std::mutex mutex_;
  std::map<uint64_t, Registration> registrations_;
  uint64_t next_handle_ = 1;

  Counter* registered_ = nullptr;
  Counter* updates_ = nullptr;
  Counter* backfills_ = nullptr;
  Counter* hits_ = nullptr;
  Gauge* active_ = nullptr;
};

}  // namespace aims::server
