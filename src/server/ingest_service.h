#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include <optional>

#include "common/status.h"
#include "obs/cost_ledger.h"
#include "server/metrics.h"
#include "server/tracer.h"
#include "server/sharded_catalog.h"
#include "server/thread_pool.h"
#include "streams/double_buffer.h"
#include "streams/sample.h"

/// \file ingest_service.h
/// \brief Multi-tenant ingest admission: each client gets a bounded queue
/// (the acquisition pipeline's DoubleBuffer, reused as-is) drained by the
/// shared thread pool into the sharded catalog. The backpressure contract
/// mirrors Sec. 3.1's sensor handler: the producer is NEVER blocked — when
/// a queue is full the submission is rejected with ResourceExhausted and
/// counted, exactly like the acquisition pipeline counts drops when the
/// consumer falls behind. Memory stays bounded no matter how far a
/// producer outruns the service.

namespace aims::server {

/// \brief Admission and retry policy for ingest submissions.
struct IngestAdmissionPolicy {
  /// Per-client bounded queue capacity (recordings awaiting ingest).
  /// A full queue rejects new submissions with ResourceExhausted.
  size_t queue_capacity = 8;
  /// Total in-flight recordings across all clients; 0 disables the global
  /// cap. Exceeding it rejects with ResourceExhausted before the
  /// per-client queue is consulted.
  size_t max_pending_total = 0;
  /// Ingest attempts per recording (>= 1). Transient storage failures
  /// (IoError) are retried up to this many attempts; other errors are
  /// reported immediately.
  size_t max_attempts = 1;
};

/// \brief Asynchronous, admission-controlled ingest over a ShardedCatalog.
class IngestService {
 public:
  /// Completion callback: the new global session id, or the error that
  /// ended the final attempt. Runs on a pool worker thread.
  using Callback = std::function<void(const Result<GlobalSessionId>&)>;

  /// \param catalog destination catalog (not owned).
  /// \param pool executor draining the queues (not owned).
  /// \param metrics optional registry (may be null). Exposes:
  ///   ingest.submitted / admitted / rejected_queue / rejected_capacity /
  ///   completed / failed / retries (counters),
  ///   ingest.queue_depth (gauge with high-water mark),
  ///   ingest.e2e_latency_ms (submit-to-completion histogram).
  /// \param tracer optional span sink (may be null). Every admitted
  /// submission then carries a Trace — admission, queue_wait, shard_lock,
  /// and the per-channel transform/block_write spans — recorded when the
  /// ingest finishes.
  /// \param ledger optional per-tenant cost ledger (may be null). Each
  /// ingest charges its client's ledger: queue wait, processing CPU time,
  /// exact blocks/bytes written, plus ingest/rejection counts.
  IngestService(ShardedCatalog* catalog, ThreadPool* pool,
                IngestAdmissionPolicy policy = {},
                MetricsRegistry* metrics = nullptr,
                Tracer* tracer = nullptr,
                obs::CostLedger* ledger = nullptr);

  /// Waits for every scheduled drain task to finish (the pool must still
  /// be running or already drained), so no worker can touch a destroyed
  /// service.
  ~IngestService();

  /// \brief Submits a recording for asynchronous ingest. Never blocks:
  /// returns OK when admitted, ResourceExhausted when the client queue or
  /// the global cap is full, FailedPrecondition when the pool is shutting
  /// down. \p on_done (optional) fires once the ingest finishes.
  Status Submit(ClientId client, std::string name,
                streams::Recording recording, Callback on_done = nullptr);

  /// \brief Blocks until every admitted submission has completed. Call
  /// before tearing down the catalog or the pool.
  void Drain();

  /// Admitted-but-not-completed count.
  size_t pending() const { return pending_.load(std::memory_order_relaxed); }

 private:
  struct PendingItem {
    std::string name;
    streams::Recording recording;
    Callback on_done;
    std::chrono::steady_clock::time_point enqueued;
    /// End-to-end trace (engaged only when the service has a tracer).
    std::optional<Trace> trace;
    /// Index of the open "queue_wait" span inside *trace.
    size_t queue_span = 0;
  };

  struct ClientState {
    explicit ClientState(ClientId id, size_t capacity)
        : client(id), queue(capacity) {}
    const ClientId client;
    streams::DoubleBuffer<PendingItem> queue;
    /// Serializes drainers so each client's recordings ingest in FIFO
    /// order even when several pool workers pick up its tasks.
    std::mutex drain_mutex;
  };

  ClientState* GetOrCreateClient(ClientId client);
  void DrainClient(ClientState* state);
  void ProcessItem(ClientState* state, PendingItem item);

  ShardedCatalog* catalog_;
  ThreadPool* pool_;
  IngestAdmissionPolicy policy_;
  Tracer* tracer_;
  obs::CostLedger* ledger_;

  mutable std::shared_mutex clients_mutex_;
  std::unordered_map<ClientId, std::unique_ptr<ClientState>> clients_;

  std::atomic<size_t> pending_{0};
  /// Drain tasks scheduled on the pool that have not yet returned; the
  /// destructor blocks until this reaches zero.
  std::atomic<size_t> tasks_in_flight_{0};
  std::mutex drain_wait_mutex_;
  std::condition_variable drained_cv_;

  Counter* submitted_ = nullptr;
  Counter* admitted_ = nullptr;
  Counter* rejected_queue_ = nullptr;
  Counter* rejected_capacity_ = nullptr;
  Counter* completed_ = nullptr;
  Counter* failed_ = nullptr;
  Counter* retries_ = nullptr;
  Gauge* queue_depth_ = nullptr;
  Histogram* e2e_latency_ms_ = nullptr;
};

}  // namespace aims::server
