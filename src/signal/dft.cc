#include "signal/dft.h"

#include <cmath>

#include "common/macros.h"
#include "signal/dwt.h"

namespace aims::signal {

Status Fft(std::vector<std::complex<double>>* data, bool inverse) {
  const size_t n = data->size();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("Fft: length must be a power of two");
  }
  auto& a = *data;
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    double angle = 2.0 * M_PI / static_cast<double>(len) * (inverse ? 1 : -1);
    std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        std::complex<double> u = a[i + k];
        std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
  return Status::OK();
}

namespace {
size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

std::vector<std::complex<double>> RealFft(const std::vector<double>& signal) {
  size_t n = NextPowerOfTwo(std::max<size_t>(signal.size(), 1));
  std::vector<std::complex<double>> data(n, {0.0, 0.0});
  for (size_t i = 0; i < signal.size(); ++i) data[i] = {signal[i], 0.0};
  AIMS_CHECK(Fft(&data).ok());
  return data;
}

std::vector<double> PowerSpectrum(const std::vector<double>& signal) {
  std::vector<std::complex<double>> spectrum = RealFft(signal);
  size_t half = spectrum.size() / 2;
  std::vector<double> power(half + 1);
  for (size_t k = 0; k <= half; ++k) power[k] = std::norm(spectrum[k]);
  return power;
}

std::vector<double> Autocorrelation(const std::vector<double>& signal,
                                    size_t max_lag) {
  const size_t n = signal.size();
  if (n == 0) return {};
  max_lag = std::min(max_lag, n - 1);
  // Zero-pad to at least 2n to avoid circular wrap-around.
  size_t padded = NextPowerOfTwo(2 * n);
  std::vector<std::complex<double>> data(padded, {0.0, 0.0});
  double mean = 0.0;
  for (double x : signal) mean += x;
  mean /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) data[i] = {signal[i] - mean, 0.0};
  AIMS_CHECK(Fft(&data).ok());
  for (auto& x : data) x = std::norm(x);
  AIMS_CHECK(Fft(&data, /*inverse=*/true).ok());
  std::vector<double> out(max_lag + 1);
  double r0 = data[0].real();
  if (r0 <= 0.0) r0 = 1.0;
  for (size_t k = 0; k <= max_lag; ++k) out[k] = data[k].real() / r0;
  return out;
}

std::vector<double> DftFeatures(const std::vector<double>& signal, size_t k) {
  std::vector<std::complex<double>> spectrum = RealFft(signal);
  std::vector<double> features(k, 0.0);
  double norm = 1.0 / std::sqrt(static_cast<double>(spectrum.size()));
  for (size_t i = 0; i < k && i < spectrum.size(); ++i) {
    features[i] = std::abs(spectrum[i]) * norm;
  }
  return features;
}

}  // namespace aims::signal
