#include "signal/dwt.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "obs/profile.h"

namespace aims::signal {

bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

int MaxLevels(size_t n) {
  int levels = 0;
  while (n > 1 && n % 2 == 0) {
    n /= 2;
    ++levels;
  }
  return levels;
}

void DwtStep(const WaveletFilter& filter, const std::vector<double>& input,
             std::vector<double>* scaling, std::vector<double>* detail) {
  const size_t n = input.size();
  AIMS_CHECK(n % 2 == 0 && n > 0);
  const size_t half = n / 2;
  const auto& h = filter.lowpass();
  const auto& g = filter.highpass();
  const size_t len = filter.length();
  scaling->assign(half, 0.0);
  detail->assign(half, 0.0);
  for (size_t j = 0; j < half; ++j) {
    double s = 0.0, d = 0.0;
    for (size_t t = 0; t < len; ++t) {
      double x = input[(2 * j + t) % n];
      s += h[t] * x;
      d += g[t] * x;
    }
    (*scaling)[j] = s;
    (*detail)[j] = d;
  }
}

void IdwtStep(const WaveletFilter& filter, const std::vector<double>& scaling,
              const std::vector<double>& detail, std::vector<double>* output) {
  const size_t half = scaling.size();
  AIMS_CHECK(detail.size() == half && half > 0);
  const size_t n = 2 * half;
  const auto& h = filter.lowpass();
  const auto& g = filter.highpass();
  const size_t len = filter.length();
  output->assign(n, 0.0);
  // Transpose of the analysis operator (orthonormal => inverse).
  for (size_t j = 0; j < half; ++j) {
    for (size_t t = 0; t < len; ++t) {
      size_t i = (2 * j + t) % n;
      (*output)[i] += h[t] * scaling[j] + g[t] * detail[j];
    }
  }
}

Result<std::vector<double>> ForwardDwt(const WaveletFilter& filter,
                                       const std::vector<double>& signal,
                                       int levels) {
  const size_t n = signal.size();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("ForwardDwt: length must be a power of two");
  }
  int max_levels = MaxLevels(n);
  if (levels < 0) levels = max_levels;
  if (levels > max_levels) {
    return Status::InvalidArgument("ForwardDwt: too many levels requested");
  }
  AIMS_PROFILE_SCOPE("signal.forward_dwt");
  std::vector<double> out = signal;
  std::vector<double> current(signal);
  std::vector<double> s, d;
  size_t span = n;
  for (int l = 0; l < levels; ++l) {
    DwtStep(filter, current, &s, &d);
    span /= 2;
    for (size_t k = 0; k < span; ++k) {
      out[k] = s[k];
      out[span + k] = d[k];
    }
    current = s;
  }
  return out;
}

Result<std::vector<double>> InverseDwt(const WaveletFilter& filter,
                                       const std::vector<double>& coeffs,
                                       int levels) {
  const size_t n = coeffs.size();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("InverseDwt: length must be a power of two");
  }
  int max_levels = MaxLevels(n);
  if (levels < 0) levels = max_levels;
  if (levels > max_levels) {
    return Status::InvalidArgument("InverseDwt: too many levels requested");
  }
  AIMS_PROFILE_SCOPE("signal.inverse_dwt");
  std::vector<double> out = coeffs;
  size_t span = n >> levels;
  std::vector<double> s, d, merged;
  for (int l = levels; l >= 1; --l) {
    s.assign(out.begin(), out.begin() + static_cast<ptrdiff_t>(span));
    d.assign(out.begin() + static_cast<ptrdiff_t>(span),
             out.begin() + static_cast<ptrdiff_t>(2 * span));
    IdwtStep(filter, s, d, &merged);
    for (size_t k = 0; k < 2 * span; ++k) out[k] = merged[k];
    span *= 2;
  }
  return out;
}

size_t DetailIndex(size_t n, int level, size_t k) {
  AIMS_CHECK(level >= 1);
  size_t base = n >> level;
  AIMS_CHECK(k < base);
  return base + k;
}

size_t ScalingIndex(size_t n, int levels, size_t k) {
  size_t base = n >> levels;
  AIMS_CHECK(k < base);
  (void)n;
  return k;
}

TensorDwt::TensorDwt(WaveletFilter filter, std::vector<size_t> shape)
    : filters_(shape.size(), filter), shape_(std::move(shape)) {
  // Delegate the shared validation manually (a delegating constructor
  // would leave the evaluation order of `shape.size()` vs `move(shape)`
  // unspecified).
  total_size_ = 1;
  for (size_t e : shape_) {
    AIMS_CHECK(IsPowerOfTwo(e));
    total_size_ *= e;
  }
}

TensorDwt::TensorDwt(std::vector<WaveletFilter> filters,
                     std::vector<size_t> shape)
    : filters_(std::move(filters)), shape_(std::move(shape)) {
  AIMS_CHECK(filters_.size() == shape_.size());
  total_size_ = 1;
  for (size_t e : shape_) {
    AIMS_CHECK(IsPowerOfTwo(e));
    total_size_ *= e;
  }
}

const WaveletFilter& TensorDwt::filter(size_t axis) const {
  AIMS_CHECK(axis < filters_.size());
  return filters_[axis];
}

size_t TensorDwt::FlatIndex(const std::vector<size_t>& idx) const {
  AIMS_CHECK(idx.size() == shape_.size());
  size_t flat = 0;
  for (size_t d = 0; d < shape_.size(); ++d) {
    AIMS_CHECK(idx[d] < shape_[d]);
    flat = flat * shape_[d] + idx[d];
  }
  return flat;
}

Status TensorDwt::TransformAxis(std::vector<double>* data, size_t axis,
                                Direction dir) const {
  const size_t extent = shape_[axis];
  // Row-major: stride of `axis` is the product of trailing extents.
  size_t stride = 1;
  for (size_t d = axis + 1; d < shape_.size(); ++d) stride *= shape_[d];
  const size_t num_lines = total_size_ / extent;
  std::vector<double> line(extent);
  for (size_t li = 0; li < num_lines; ++li) {
    // Decompose line index into (outer, inner) around the axis.
    size_t outer = li / stride;
    size_t inner = li % stride;
    size_t base = outer * extent * stride + inner;
    for (size_t k = 0; k < extent; ++k) line[k] = (*data)[base + k * stride];
    Result<std::vector<double>> res =
        dir == Direction::kForward ? ForwardDwt(filters_[axis], line)
                                   : InverseDwt(filters_[axis], line);
    AIMS_RETURN_NOT_OK(res.status());
    const std::vector<double>& t = res.ValueOrDie();
    for (size_t k = 0; k < extent; ++k) (*data)[base + k * stride] = t[k];
  }
  return Status::OK();
}

Status TensorDwt::Forward(std::vector<double>* data) const {
  if (data->size() != total_size_) {
    return Status::InvalidArgument("TensorDwt::Forward: size mismatch");
  }
  for (size_t axis = 0; axis < shape_.size(); ++axis) {
    AIMS_RETURN_NOT_OK(TransformAxis(data, axis, Direction::kForward));
  }
  return Status::OK();
}

Status TensorDwt::Inverse(std::vector<double>* data) const {
  if (data->size() != total_size_) {
    return Status::InvalidArgument("TensorDwt::Inverse: size mismatch");
  }
  for (size_t axis = 0; axis < shape_.size(); ++axis) {
    AIMS_RETURN_NOT_OK(TransformAxis(data, axis, Direction::kInverse));
  }
  return Status::OK();
}

void StreamingHaarDwt::Push(double sample, std::vector<Emitted>* out) {
  ++samples_seen_;
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  double carry = sample;
  for (size_t level = 0;; ++level) {
    if (pending_.size() <= level) {
      pending_.push_back(0.0);
      has_pending_.push_back(false);
      emitted_per_level_.push_back(0);
    }
    if (!has_pending_[level]) {
      pending_[level] = carry;
      has_pending_[level] = true;
      return;
    }
    // Pair completed at this level: emit the detail, carry the scaling up.
    double a = pending_[level];
    double b = carry;
    has_pending_[level] = false;
    double detail = (a - b) * inv_sqrt2;
    out->push_back(Emitted{static_cast<int>(level) + 1,
                           emitted_per_level_[level], detail, false});
    ++emitted_per_level_[level];
    carry = (a + b) * inv_sqrt2;
  }
}

StreamingDwt::StreamingDwt(WaveletFilter filter, int max_levels)
    : filter_(std::move(filter)), max_levels_(max_levels) {
  AIMS_CHECK(max_levels >= 1);
  levels_.resize(static_cast<size_t>(max_levels));
}

void StreamingDwt::Push(double sample, std::vector<Emitted>* out) {
  ++samples_seen_;
  PushToLevel(0, sample, out);
}

void StreamingDwt::PushToLevel(int level, double value,
                               std::vector<Emitted>* out) {
  LevelState& state = levels_[static_cast<size_t>(level)];
  state.window.push_back(value);
  const size_t L = filter_.length();
  // Output j consumes inputs [2j, 2j + L). Emit every output whose window
  // just completed.
  while (true) {
    size_t next_in = state.first_index + state.window.size();  // exclusive
    size_t needed_end = 2 * state.next_output + L;
    if (next_in < needed_end) break;
    size_t base = 2 * state.next_output - state.first_index;
    double s = 0.0, d = 0.0;
    for (size_t t = 0; t < L; ++t) {
      double x = state.window[base + t];
      s += filter_.lowpass()[t] * x;
      d += filter_.highpass()[t] * x;
    }
    bool coarsest = level + 1 == max_levels_;
    out->push_back(Emitted{level + 1, state.next_output, d,
                           /*is_scaling=*/false});
    if (coarsest) {
      out->push_back(Emitted{level + 1, state.next_output, s,
                             /*is_scaling=*/true});
    } else {
      PushToLevel(level + 1, s, out);
    }
    ++state.next_output;
    // Drop inputs no later outputs can reach (window start advances by 2).
    size_t keep_from = 2 * state.next_output;
    if (keep_from > state.first_index) {
      size_t drop = keep_from - state.first_index;
      drop = std::min(drop, state.window.size());
      state.window.erase(state.window.begin(),
                         state.window.begin() + static_cast<ptrdiff_t>(drop));
      state.first_index += drop;
    }
  }
}

void LinearDwtReference(const WaveletFilter& filter,
                        const std::vector<double>& signal, int levels,
                        std::vector<std::vector<double>>* details,
                        std::vector<double>* coarsest_scaling) {
  const auto& h = filter.lowpass();
  const auto& g = filter.highpass();
  const size_t L = filter.length();
  details->assign(static_cast<size_t>(levels), {});
  std::vector<double> current = signal;
  for (int l = 0; l < levels; ++l) {
    std::vector<double> s, d;
    for (size_t j = 0; 2 * j + L <= current.size(); ++j) {
      double sv = 0.0, dv = 0.0;
      for (size_t t = 0; t < L; ++t) {
        sv += h[t] * current[2 * j + t];
        dv += g[t] * current[2 * j + t];
      }
      s.push_back(sv);
      d.push_back(dv);
    }
    (*details)[static_cast<size_t>(l)] = std::move(d);
    current = std::move(s);
  }
  *coarsest_scaling = std::move(current);
}

void StreamingHaarDwt::Finish(std::vector<Emitted>* out) {
  // For a power-of-two stream only the topmost pending slot is set: the
  // global scaling coefficient. Emit every pending scaling value from
  // coarsest down so partial streams are still fully described.
  for (size_t level = pending_.size(); level-- > 0;) {
    if (has_pending_[level]) {
      out->push_back(Emitted{static_cast<int>(level) + 1, 0, pending_[level],
                             /*is_scaling=*/true});
      has_pending_[level] = false;
    }
  }
}

}  // namespace aims::signal
