#include "signal/dwpt.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "signal/dwt.h"

namespace aims::signal {

double InformationCost(const std::vector<double>& coeffs, BasisCost cost,
                       double threshold) {
  switch (cost) {
    case BasisCost::kShannonEntropy: {
      double energy = 0.0;
      for (double c : coeffs) energy += c * c;
      if (energy <= 1e-300) return 0.0;
      double h = 0.0;
      for (double c : coeffs) {
        double p = c * c / energy;
        if (p > 1e-300) h -= p * std::log(p);
      }
      return h;
    }
    case BasisCost::kLogEnergy: {
      double s = 0.0;
      for (double c : coeffs) {
        double c2 = c * c;
        s += std::log(std::max(c2, 1e-300));
      }
      return s;
    }
    case BasisCost::kThresholdCount: {
      double count = 0.0;
      for (double c : coeffs) {
        if (std::fabs(c) > threshold) count += 1.0;
      }
      return count;
    }
    case BasisCost::kL1Norm: {
      double s = 0.0;
      for (double c : coeffs) s += std::fabs(c);
      return s;
    }
  }
  return 0.0;
}

Result<WaveletPacketTree> WaveletPacketTree::Build(
    const WaveletFilter& filter, const std::vector<double>& signal,
    int max_depth) {
  const size_t n = signal.size();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument(
        "WaveletPacketTree: length must be a power of two");
  }
  int limit = MaxLevels(n);
  int depth = (max_depth < 0) ? limit : std::min(max_depth, limit);
  WaveletPacketTree tree(filter, n, depth);
  // Row-by-row storage: level l has 2^l nodes.
  size_t total_nodes = (size_t{2} << depth) - 1;  // 2^(depth+1) - 1
  tree.nodes_.resize(total_nodes);
  tree.nodes_[0] = signal;
  for (int level = 0; level < depth; ++level) {
    size_t blocks = size_t{1} << level;
    for (size_t b = 0; b < blocks; ++b) {
      const std::vector<double>& parent =
          tree.nodes_[tree.NodeSlot({level, b})];
      std::vector<double> low, high;
      DwtStep(filter, parent, &low, &high);
      tree.nodes_[tree.NodeSlot({level + 1, 2 * b})] = std::move(low);
      tree.nodes_[tree.NodeSlot({level + 1, 2 * b + 1})] = std::move(high);
    }
  }
  return tree;
}

size_t WaveletPacketTree::NodeSlot(const PacketNode& node) const {
  AIMS_CHECK(node.level >= 0 && node.level <= depth_);
  size_t blocks = size_t{1} << node.level;
  AIMS_CHECK(node.block < blocks);
  return (blocks - 1) + node.block;
}

const std::vector<double>& WaveletPacketTree::NodeCoefficients(
    const PacketNode& node) const {
  return nodes_[NodeSlot(node)];
}

double WaveletPacketTree::NodeCost(const PacketNode& node, BasisCost cost,
                                   double threshold) const {
  return InformationCost(nodes_[NodeSlot(node)], cost, threshold);
}

std::vector<PacketNode> WaveletPacketTree::BestBasis(BasisCost cost,
                                                     double threshold) const {
  // Bottom-up DP: best[slot] = min(own cost, sum of children's best costs).
  size_t total_nodes = nodes_.size();
  std::vector<double> best(total_nodes);
  std::vector<bool> keep_self(total_nodes, true);
  for (int level = depth_; level >= 0; --level) {
    size_t blocks = size_t{1} << level;
    for (size_t b = 0; b < blocks; ++b) {
      PacketNode node{level, b};
      size_t slot = NodeSlot(node);
      double own = NodeCost(node, cost, threshold);
      if (level == depth_) {
        best[slot] = own;
        continue;
      }
      double children = best[NodeSlot({level + 1, 2 * b})] +
                        best[NodeSlot({level + 1, 2 * b + 1})];
      if (own <= children) {
        best[slot] = own;
        keep_self[slot] = true;
      } else {
        best[slot] = children;
        keep_self[slot] = false;
      }
    }
  }
  // Walk down from the root collecting kept nodes.
  std::vector<PacketNode> basis;
  std::vector<PacketNode> stack = {{0, 0}};
  while (!stack.empty()) {
    PacketNode node = stack.back();
    stack.pop_back();
    if (keep_self[NodeSlot(node)] || node.level == depth_) {
      basis.push_back(node);
    } else {
      stack.push_back({node.level + 1, 2 * node.block});
      stack.push_back({node.level + 1, 2 * node.block + 1});
    }
  }
  std::sort(basis.begin(), basis.end(),
            [](const PacketNode& a, const PacketNode& b) {
              // Order by position of the subband in the final layout.
              double a_pos = static_cast<double>(a.block) /
                             static_cast<double>(size_t{1} << a.level);
              double b_pos = static_cast<double>(b.block) /
                             static_cast<double>(size_t{1} << b.level);
              return a_pos < b_pos;
            });
  return basis;
}

std::vector<PacketNode> WaveletPacketTree::DwtBasis() const {
  std::vector<PacketNode> basis;
  // DWT keeps the highpass node at every level plus the deepest lowpass.
  for (int level = 1; level <= depth_; ++level) {
    basis.push_back({level, 1});
  }
  basis.push_back({depth_, 0});
  std::sort(basis.begin(), basis.end(),
            [](const PacketNode& a, const PacketNode& b) {
              double a_pos = static_cast<double>(a.block) /
                             static_cast<double>(size_t{1} << a.level);
              double b_pos = static_cast<double>(b.block) /
                             static_cast<double>(size_t{1} << b.level);
              return a_pos < b_pos;
            });
  return basis;
}

std::vector<PacketNode> WaveletPacketTree::StandardBasis() const {
  return {{0, 0}};
}

std::vector<double> WaveletPacketTree::BasisCoefficients(
    const std::vector<PacketNode>& basis) const {
  std::vector<double> out;
  out.reserve(n_);
  for (const PacketNode& node : basis) {
    const std::vector<double>& c = nodes_[NodeSlot(node)];
    out.insert(out.end(), c.begin(), c.end());
  }
  return out;
}

double WaveletPacketTree::CostOf(const std::vector<PacketNode>& basis,
                                 BasisCost cost, double threshold) const {
  double total = 0.0;
  for (const PacketNode& node : basis) {
    total += NodeCost(node, cost, threshold);
  }
  return total;
}

bool WaveletPacketTree::IsValidBasis(
    const std::vector<PacketNode>& basis) const {
  // A valid basis covers [0,1) exactly once with dyadic subbands.
  size_t covered = 0;
  std::vector<std::pair<size_t, size_t>> spans;  // in units of 1/2^depth
  for (const PacketNode& node : basis) {
    if (node.level < 0 || node.level > depth_) return false;
    if (node.block >= (size_t{1} << node.level)) return false;
    size_t unit = size_t{1} << (depth_ - node.level);
    spans.emplace_back(node.block * unit, (node.block + 1) * unit);
    covered += unit;
  }
  if (covered != (size_t{1} << depth_)) return false;
  std::sort(spans.begin(), spans.end());
  size_t cursor = 0;
  for (const auto& [lo, hi] : spans) {
    if (lo != cursor) return false;
    cursor = hi;
  }
  return cursor == (size_t{1} << depth_);
}

Result<std::vector<double>> WaveletPacketTree::Reconstruct(
    const std::vector<PacketNode>& basis,
    const std::vector<double>& coeffs) const {
  if (!IsValidBasis(basis)) {
    return Status::InvalidArgument("Reconstruct: invalid basis cover");
  }
  if (coeffs.size() != n_) {
    return Status::InvalidArgument("Reconstruct: coefficient count mismatch");
  }
  // Place each node's coefficients, then merge bottom-up with IdwtStep.
  // scratch maps (level, block) -> reconstructed-so-far coefficients.
  std::vector<std::vector<double>> scratch(nodes_.size());
  size_t offset = 0;
  for (const PacketNode& node : basis) {
    size_t len = n_ >> node.level;
    scratch[NodeSlot(node)] =
        std::vector<double>(coeffs.begin() + static_cast<ptrdiff_t>(offset),
                            coeffs.begin() + static_cast<ptrdiff_t>(offset + len));
    offset += len;
  }
  for (int level = depth_; level >= 1; --level) {
    size_t blocks = size_t{1} << level;
    for (size_t b = 0; b + 1 < blocks + 1; b += 2) {
      auto& low = scratch[NodeSlot({level, b})];
      auto& high = scratch[NodeSlot({level, b + 1})];
      if (low.empty() && high.empty()) continue;
      AIMS_CHECK(!low.empty() && !high.empty());
      std::vector<double> merged;
      IdwtStep(filter_, low, high, &merged);
      scratch[NodeSlot({level - 1, b / 2})] = std::move(merged);
      low.clear();
      high.clear();
    }
  }
  return scratch[0];
}

}  // namespace aims::signal
