#include "signal/resample.h"

#include <cmath>

#include "common/macros.h"

namespace aims::signal {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

Result<FirFilter> FirFilter::DesignLowPass(double cutoff, size_t taps) {
  if (cutoff <= 0.0 || cutoff >= 1.0) {
    return Status::InvalidArgument("DesignLowPass: cutoff must be in (0,1)");
  }
  if (taps < 3) {
    return Status::InvalidArgument("DesignLowPass: need at least 3 taps");
  }
  if (taps % 2 == 0) ++taps;
  std::vector<double> h(taps);
  const double center = static_cast<double>(taps - 1) / 2.0;
  double sum = 0.0;
  for (size_t i = 0; i < taps; ++i) {
    double m = static_cast<double>(i) - center;
    // Ideal low-pass impulse response sin(pi fc m)/(pi m), fc in Nyquist
    // units, with the singularity at m = 0 handled by the limit fc.
    double ideal = m == 0.0 ? cutoff : std::sin(kPi * cutoff * m) / (kPi * m);
    // Hamming window.
    double window =
        0.54 - 0.46 * std::cos(2.0 * kPi * static_cast<double>(i) /
                               static_cast<double>(taps - 1));
    h[i] = ideal * window;
    sum += h[i];
  }
  // Normalize to unit DC gain so constants pass through exactly.
  AIMS_CHECK(sum > 0.0);
  for (double& v : h) v /= sum;
  return FirFilter(std::move(h));
}

std::vector<double> FirFilter::Apply(const std::vector<double>& signal) const {
  const size_t n = signal.size();
  const size_t taps = coefficients_.size();
  const size_t half = taps / 2;
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  auto reflect = [&](long long idx) -> double {
    // Symmetric reflection keeps edges flat instead of decaying to zero.
    while (idx < 0 || idx >= static_cast<long long>(n)) {
      if (idx < 0) idx = -idx - 1;
      if (idx >= static_cast<long long>(n)) {
        idx = 2 * static_cast<long long>(n) - idx - 1;
      }
    }
    return signal[static_cast<size_t>(idx)];
  };
  for (size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (size_t t = 0; t < taps; ++t) {
      long long idx = static_cast<long long>(i) + static_cast<long long>(t) -
                      static_cast<long long>(half);
      acc += coefficients_[t] * reflect(idx);
    }
    out[i] = acc;
  }
  return out;
}

Result<std::vector<double>> DecimateAntiAliased(
    const std::vector<double>& signal, size_t factor, size_t taps) {
  if (factor == 0) {
    return Status::InvalidArgument("DecimateAntiAliased: zero factor");
  }
  if (factor == 1) return signal;
  AIMS_ASSIGN_OR_RETURN(
      FirFilter lp,
      FirFilter::DesignLowPass(1.0 / static_cast<double>(factor), taps));
  std::vector<double> filtered = lp.Apply(signal);
  return DecimateNaive(filtered, factor);
}

std::vector<double> DecimateNaive(const std::vector<double>& signal,
                                  size_t factor) {
  AIMS_CHECK(factor >= 1);
  std::vector<double> out;
  out.reserve(signal.size() / factor + 1);
  for (size_t i = 0; i < signal.size(); i += factor) {
    out.push_back(signal[i]);
  }
  return out;
}

}  // namespace aims::signal
