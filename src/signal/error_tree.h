#pragma once

#include <cstddef>
#include <vector>

/// \file error_tree.h
/// \brief The Haar wavelet *error tree* (Sec. 3.2.1): the dependency
/// structure between wavelet coefficients and reconstructed data values.
///
/// For a length-n = 2^J Haar transform in the pyramid layout of dwt.h, the
/// error tree has the overall scaling coefficient (flat index 0) as root,
/// the coarsest detail (flat index 1) below it, and detail (level l, k)'s
/// children are details (level l-1, 2k) and (level l-1, 2k+1). Reconstructing
/// data value i requires exactly the root plus the J details on the
/// root-to-leaf path above position i — so if a coefficient is needed, *all
/// of its ancestors are needed too*. This is the access-pattern locality the
/// storage subsystem exploits, and the reason the expected number of useful
/// items on a retrieved block is bounded by 1 + lg B.

namespace aims::signal {

/// \brief Static view of the Haar error tree for a signal of length n
/// (power of two).
class HaarErrorTree {
 public:
  explicit HaarErrorTree(size_t n);

  size_t n() const { return n_; }
  int levels() const { return levels_; }

  /// Flat coefficient indices needed to reconstruct data value \p i:
  /// the root scaling coefficient plus the detail path. Size = 1 + lg n.
  std::vector<size_t> PointQuerySupport(size_t i) const;

  /// Flat indices of the nonzero Haar coefficients of the range-sum query
  /// vector 1_{[lo,hi]}: the root plus details whose support straddles a
  /// range boundary. Size is O(lg n).
  std::vector<size_t> RangeSumSupport(size_t lo, size_t hi) const;

  /// Coefficients needed to reconstruct every value in [lo, hi] (a range
  /// *scan*): union of the point supports.
  std::vector<size_t> RangeScanSupport(size_t lo, size_t hi) const;

  /// Parent of a flat coefficient index in the error tree; 0 is the root
  /// (returns 0 for the root itself and for index 1 whose parent is the
  /// root).
  size_t Parent(size_t flat_index) const;

  /// Children of a flat index (empty at the finest level; the root has the
  /// single child 1).
  std::vector<size_t> Children(size_t flat_index) const;

  /// Detail level (1 = finest) of a flat index; 0 for the root scaling.
  int LevelOf(size_t flat_index) const;

  /// Support interval [first, last] of data positions influenced by the
  /// coefficient at \p flat_index.
  std::pair<size_t, size_t> SupportOf(size_t flat_index) const;

 private:
  size_t n_;
  int levels_;
};

}  // namespace aims::signal
