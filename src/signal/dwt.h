#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "signal/wavelet_filter.h"

/// \file dwt.h
/// \brief Periodic discrete wavelet transform (1-D and tensor-product N-D).
///
/// Coefficient layout for a full J-level transform of n = 2^J samples:
///   index 0            : coarsest scaling coefficient s_J
///   index 1            : coarsest detail d_J
///   indices [2,4)      : details d_{J-1}
///   ...
///   indices [n/2, n)   : finest details d_1
/// i.e. details of level l (1 = finest) occupy [n/2^l, n/2^(l-1)).
/// A partial transform of depth L keeps s_L in the first n/2^L slots.

namespace aims::signal {

/// \brief Number of complete transform levels for a length (log2 when the
/// length is a power of two).
int MaxLevels(size_t n);

/// \brief True iff n is a power of two (and nonzero).
bool IsPowerOfTwo(size_t n);

/// \brief One analysis step: splits \p input (even length) into scaling and
/// detail halves using periodic convolution.
void DwtStep(const WaveletFilter& filter, const std::vector<double>& input,
             std::vector<double>* scaling, std::vector<double>* detail);

/// \brief One synthesis step, the exact inverse of DwtStep.
void IdwtStep(const WaveletFilter& filter, const std::vector<double>& scaling,
              const std::vector<double>& detail, std::vector<double>* output);

/// \brief Full (or depth-limited) forward DWT.
///
/// \param levels number of levels to apply; -1 means as many as possible.
/// Fails if the signal length is not a power of two.
Result<std::vector<double>> ForwardDwt(const WaveletFilter& filter,
                                       const std::vector<double>& signal,
                                       int levels = -1);

/// \brief Inverse of ForwardDwt with the same filter and depth.
Result<std::vector<double>> InverseDwt(const WaveletFilter& filter,
                                       const std::vector<double>& coeffs,
                                       int levels = -1);

/// \brief Flat index of detail coefficient \p k at \p level (1 = finest) in
/// the pyramid layout, for a signal of length \p n.
size_t DetailIndex(size_t n, int level, size_t k);

/// \brief Flat index of scaling coefficient \p k at the coarsest level of a
/// depth-\p levels transform.
size_t ScalingIndex(size_t n, int levels, size_t k);

/// \brief Tensor-product multidimensional DWT over a dense row-major array.
///
/// Applies the full 1-D transform independently along each axis (the
/// "standard" tensor construction ProPolyne uses). Each axis may use its
/// own filter — the "each dimension transformed through a different basis"
/// setting of Sec. 3.3.1. All extents must be powers of two.
class TensorDwt {
 public:
  /// \param shape extent of each dimension (row-major storage).
  TensorDwt(WaveletFilter filter, std::vector<size_t> shape);

  /// Per-axis filters; `filters.size()` must equal `shape.size()`.
  TensorDwt(std::vector<WaveletFilter> filters, std::vector<size_t> shape);

  /// Filter used on \p axis.
  const WaveletFilter& filter(size_t axis) const;

  /// Transforms \p data in place; data.size() must equal the shape product.
  Status Forward(std::vector<double>* data) const;
  /// Inverts Forward.
  Status Inverse(std::vector<double>* data) const;

  const std::vector<size_t>& shape() const { return shape_; }
  size_t total_size() const { return total_size_; }

  /// Flattens a multidimensional index (row-major).
  size_t FlatIndex(const std::vector<size_t>& idx) const;

 private:
  enum class Direction { kForward, kInverse };
  Status TransformAxis(std::vector<double>* data, size_t axis,
                       Direction dir) const;

  std::vector<WaveletFilter> filters_;  // one per axis
  std::vector<size_t> shape_;
  size_t total_size_;
};

/// \brief Incremental ("append-only") 1-D Haar transformer for continuous
/// data streams.
///
/// Samples are pushed one at a time; wavelet coefficients are emitted as
/// soon as their support is complete, so a level-l detail appears 2^l
/// samples after its support opens. This is the low-cost incremental-update
/// property the paper relies on for storing immersidata as wavelets
/// (amortized O(1) work per sample).
class StreamingHaarDwt {
 public:
  StreamingHaarDwt() = default;

  /// \brief A coefficient emitted by Push.
  struct Emitted {
    int level;     ///< 1 = finest detail level.
    size_t index;  ///< Position within its level.
    double value;
    bool is_scaling;  ///< True for carried scaling values (only at Finish).
  };

  /// Pushes one sample; appends completed detail coefficients to \p out.
  void Push(double sample, std::vector<Emitted>* out);

  /// Flushes the pending scaling values (the coarsest summaries). After
  /// Finish, the emitted set matches ForwardDwt(haar) of the pushed signal
  /// when its length is a power of two.
  void Finish(std::vector<Emitted>* out);

  size_t samples_seen() const { return samples_seen_; }

 private:
  // pending_[l] holds the unpaired scaling value at level l, if any.
  std::vector<double> pending_;
  std::vector<bool> has_pending_;
  std::vector<size_t> emitted_per_level_;
  size_t samples_seen_ = 0;
};

/// \brief Incremental 1-D DWT for *any* orthonormal filter over an
/// append-only stream, treating the signal as unbounded (linear, not
/// periodic, convolution). A level-l coefficient is emitted as soon as the
/// last sample of its analysis window arrives, so the per-sample work is
/// amortized O(L) per level — the paper's "complexity of wavelet
/// transformation for incremental update (append) is low".
///
/// Emitted coefficients agree exactly with the non-periodic (valid-region)
/// cascade; for Haar, whose windows never wrap, they also equal the
/// periodic ForwardDwt output.
class StreamingDwt {
 public:
  /// \param max_levels cascade depth (1 = finest details only).
  StreamingDwt(WaveletFilter filter, int max_levels);

  struct Emitted {
    int level;     ///< 1 = finest detail level.
    size_t index;  ///< Output position within its level.
    double value;
    bool is_scaling;  ///< True for the coarsest-level scaling outputs.
  };

  /// Pushes one sample; appends every coefficient whose window completed.
  void Push(double sample, std::vector<Emitted>* out);

  size_t samples_seen() const { return samples_seen_; }
  const WaveletFilter& filter() const { return filter_; }
  int max_levels() const { return max_levels_; }

 private:
  void PushToLevel(int level, double value, std::vector<Emitted>* out);

  WaveletFilter filter_;
  int max_levels_;
  /// Per level: sliding window of the most recent scaling inputs plus the
  /// absolute index of the first retained input.
  struct LevelState {
    std::vector<double> window;
    size_t first_index = 0;   ///< Absolute index of window.front().
    size_t next_output = 0;   ///< Next output position j.
  };
  std::vector<LevelState> levels_;
  size_t samples_seen_ = 0;
};

/// \brief Reference for StreamingDwt: the valid-region (non-periodic)
/// cascade of \p signal. Returns per-level detail vectors (index 0 =
/// finest) and the coarsest scaling vector.
void LinearDwtReference(const WaveletFilter& filter,
                        const std::vector<double>& signal, int levels,
                        std::vector<std::vector<double>>* details,
                        std::vector<double>* coarsest_scaling);

}  // namespace aims::signal
