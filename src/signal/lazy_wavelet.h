#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/status.h"
#include "signal/polynomial.h"
#include "signal/wavelet_filter.h"

/// \file lazy_wavelet.h
/// \brief The *lazy wavelet transform* (Schmidt & Shahabi, EDBT'02; paper
/// Sec. 3.3): computes the DWT of the query vector
///
///     q[i] = p(i) * 1_{[lo, hi]}(i),  i in [0, n)
///
/// in polylogarithmic time, without materializing q. ProPolyne evaluates a
/// polynomial range-sum as the dot product of this sparse query transform
/// with the stored data transform (Parseval).
///
/// Why it is sparse: one analysis level maps an interior stretch where the
/// scaling coefficients equal a polynomial to (a) detail coefficients that
/// vanish exactly — the highpass filter annihilates polynomials of degree
/// below its vanishing-moment count — and (b) scaling coefficients that are
/// again a polynomial. Only O(filter length) outputs per level, near the
/// range boundaries, need explicit evaluation. Hence O((deg + L)^2 * lg n)
/// work and O(L * lg n) nonzero coefficients.

namespace aims::signal {

/// \brief Sparse coefficient vector in the pyramid layout of dwt.h.
struct SparseCoefficients {
  /// (flat index, value) pairs, sorted by flat index, deduplicated.
  std::vector<std::pair<size_t, double>> entries;

  size_t size() const { return entries.size(); }

  /// Dot product with a dense vector.
  double Dot(const std::vector<double>& dense) const;

  /// Entries reordered by decreasing |value| (for progressive evaluation).
  std::vector<std::pair<size_t, double>> ByMagnitude() const;

  /// Sum of squared values.
  double EnergySquared() const;
};

/// \brief Computes the full-depth DWT of q[i] = p(i)*1_{[lo,hi]}(i).
///
/// Requires: n a power of two, lo <= hi < n, and
/// p.degree() < filter.vanishing_moments() (otherwise the transform is not
/// sparse and the call fails rather than silently producing O(n) output).
Result<SparseCoefficients> LazyWaveletTransform(const WaveletFilter& filter,
                                                size_t n, size_t lo, size_t hi,
                                                const Polynomial& poly);

/// \brief Reference implementation: materializes q densely and runs
/// ForwardDwt, then sparsifies. O(n); used by tests and as a fallback.
Result<SparseCoefficients> DenseQueryTransform(const WaveletFilter& filter,
                                               size_t n, size_t lo, size_t hi,
                                               const Polynomial& poly,
                                               double tol = 1e-9);

}  // namespace aims::signal
