#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "signal/wavelet_filter.h"

/// \file denoise.h
/// \brief Wavelet-domain denoising for acquisition (Sec. 3.1): immersidata
/// "needs to be cleaned from noise (filtered) and be abstracted for
/// analysis (transformed)". Since AIMS stores wavelet coefficients anyway,
/// cleaning is a thresholding pass over the detail coefficients —
/// Donoho-Johnstone shrinkage with the universal threshold
/// sigma * sqrt(2 ln n), sigma estimated robustly from the finest-scale
/// details (median absolute deviation / 0.6745).

namespace aims::signal {

/// \brief Thresholding rule.
enum class ThresholdRule {
  kHard,  ///< Zero below the threshold, keep above.
  kSoft,  ///< Zero below; shrink the rest toward zero by the threshold.
};

/// \brief Tuning for Denoise.
///
/// Hard thresholding is the default: on band-limited sensor signals, whose
/// energy is spread across a dyadic band of moderate coefficients, soft
/// shrinkage biases every kept coefficient by the threshold and typically
/// loses more signal than it removes noise (measured in the denoise tests);
/// it remains available for its smoothness.
struct DenoiseOptions {
  ThresholdRule rule = ThresholdRule::kHard;
  /// Multiplies the universal threshold (1 = VisuShrink).
  double threshold_scale = 1.0;
  /// Coarsest detail levels this many and above are never touched (they
  /// carry the signal's gross shape).
  int protect_levels = 2;
};

/// \brief Robust noise-sigma estimate from the finest-scale detail
/// coefficients: MAD / 0.6745. \p coeffs is a pyramid-layout transform of
/// length n (power of two).
double EstimateNoiseSigma(const std::vector<double>& coeffs);

/// \brief Thresholds the detail coefficients of a pyramid-layout transform
/// in place; returns the number of coefficients zeroed.
size_t ThresholdCoefficients(std::vector<double>* coeffs, double threshold,
                             const DenoiseOptions& options);

/// \brief Denoises a signal (power-of-two length): forward DWT, universal
/// threshold on details, inverse DWT.
Result<std::vector<double>> Denoise(const WaveletFilter& filter,
                                    const std::vector<double>& signal,
                                    const DenoiseOptions& options = {});

}  // namespace aims::signal
