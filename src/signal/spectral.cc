#include "signal/spectral.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/stats.h"
#include "signal/dft.h"

namespace aims::signal {

namespace {

double MaxFreqFromSpectrum(const std::vector<double>& signal,
                           double sample_rate_hz, double energy_fraction) {
  std::vector<double> power = PowerSpectrum(signal);
  if (power.size() <= 1) return 0.0;
  // Exclude DC: a sensor sitting at a constant offset has no bandwidth.
  double total = 0.0;
  for (size_t k = 1; k < power.size(); ++k) total += power[k];
  if (total <= 1e-12) return 0.0;
  double target = energy_fraction * total;
  double acc = 0.0;
  size_t padded = 2 * (power.size() - 1);
  for (size_t k = 1; k < power.size(); ++k) {
    acc += power[k];
    if (acc >= target) {
      return static_cast<double>(k) * sample_rate_hz /
             static_cast<double>(padded);
    }
  }
  return sample_rate_hz / 2.0;
}

double MaxFreqFromAutocorrelation(const std::vector<double>& signal,
                                  double sample_rate_hz) {
  if (signal.size() < 4) return 0.0;
  RunningStats stats;
  for (double x : signal) stats.Add(x);
  if (stats.variance() < 1e-12) return 0.0;  // constant: no bandwidth
  std::vector<double> r = Autocorrelation(signal, signal.size() / 2);
  // First zero crossing of the autocorrelation approximates a quarter period
  // of the dominant oscillation.
  for (size_t k = 1; k < r.size(); ++k) {
    if (r[k] <= 0.0) {
      double quarter_period = static_cast<double>(k) / sample_rate_hz;
      return 1.0 / (4.0 * quarter_period);
    }
  }
  return 0.0;  // Never decorrelates: effectively DC.
}

double MaxFreqFromMse(const std::vector<double>& signal, double sample_rate_hz,
                      double mse_threshold) {
  if (signal.size() < 4) return sample_rate_hz / 2.0;
  // Search decimation factors from coarse to fine; pick the coarsest rate
  // whose linear-interpolation reconstruction stays under the threshold.
  size_t best_decimation = 1;
  for (size_t dec = signal.size() / 2; dec >= 2; dec /= 2) {
    std::vector<double> rec = DecimateAndInterpolate(signal, dec);
    if (NormalizedMse(signal, rec) <= mse_threshold) {
      best_decimation = dec;
      break;
    }
  }
  if (best_decimation == 1) {
    // Refine linearly among small factors.
    for (size_t dec = 16; dec >= 2; --dec) {
      if (dec >= signal.size()) continue;
      std::vector<double> rec = DecimateAndInterpolate(signal, dec);
      if (NormalizedMse(signal, rec) <= mse_threshold) {
        best_decimation = dec;
        break;
      }
    }
  }
  double effective_rate = sample_rate_hz / static_cast<double>(best_decimation);
  return effective_rate / 2.0;
}

}  // namespace

double EstimateMaxFrequency(const std::vector<double>& signal,
                            double sample_rate_hz,
                            const SpectralOptions& options) {
  AIMS_CHECK(sample_rate_hz > 0.0);
  if (signal.size() < 2) return 0.0;
  {
    RunningStats stats;
    for (double x : signal) stats.Add(x);
    if (stats.variance() < options.noise_floor_variance) return 0.0;
  }
  switch (options.method) {
    case MaxFrequencyMethod::kSpectrumEnergy:
      return MaxFreqFromSpectrum(signal, sample_rate_hz,
                                 options.energy_fraction);
    case MaxFrequencyMethod::kAutocorrelation:
      return MaxFreqFromAutocorrelation(signal, sample_rate_hz);
    case MaxFrequencyMethod::kMinSquareError:
      return MaxFreqFromMse(signal, sample_rate_hz, options.mse_threshold);
  }
  return 0.0;
}

double EstimateNyquistRate(const std::vector<double>& signal,
                           double sample_rate_hz,
                           const SpectralOptions& options, double min_rate_hz) {
  double fmax = EstimateMaxFrequency(signal, sample_rate_hz, options);
  double rate = 2.0 * fmax;
  return std::clamp(rate, min_rate_hz, sample_rate_hz);
}

std::vector<double> DecimateAndInterpolate(const std::vector<double>& signal,
                                           size_t decimation) {
  AIMS_CHECK(decimation >= 1);
  const size_t n = signal.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  if (decimation == 1) return signal;
  for (size_t i = 0; i < n; ++i) {
    size_t lo = (i / decimation) * decimation;
    size_t hi = std::min(lo + decimation, n - 1);
    if (hi == lo) {
      out[i] = signal[lo];
      continue;
    }
    double frac = static_cast<double>(i - lo) / static_cast<double>(hi - lo);
    out[i] = signal[lo] * (1.0 - frac) + signal[hi] * frac;
  }
  return out;
}

}  // namespace aims::signal
