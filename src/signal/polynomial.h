#pragma once

#include <cstddef>
#include <vector>

/// \file polynomial.h
/// \brief Small dense univariate polynomial used to represent the symbolic
/// interior of a lazily transformed query vector (ProPolyne's query
/// functions are polynomials restricted to a range).

namespace aims::signal {

/// \brief p(x) = c[0] + c[1] x + ... + c[d] x^d.
class Polynomial {
 public:
  Polynomial() : coeffs_{0.0} {}
  /// Constructs from coefficients, lowest degree first.
  explicit Polynomial(std::vector<double> coeffs);

  /// The constant polynomial c.
  static Polynomial Constant(double c) { return Polynomial({c}); }
  /// The monomial x^k.
  static Polynomial Monomial(int k, double scale = 1.0);

  double Eval(double x) const;
  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  const std::vector<double>& coeffs() const { return coeffs_; }

  /// Returns p(a*x + b) as a polynomial in x.
  Polynomial ComposeAffine(double a, double b) const;

  /// this += scale * other.
  void AddScaled(const Polynomial& other, double scale);

  /// Product of two polynomials.
  Polynomial operator*(const Polynomial& other) const;

  /// True if every coefficient is below \p tol in magnitude.
  bool IsZero(double tol = 1e-9) const;

  /// Drops trailing near-zero coefficients.
  void Trim(double tol = 1e-12);

 private:
  std::vector<double> coeffs_;
};

}  // namespace aims::signal
