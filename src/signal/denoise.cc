#include "signal/denoise.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "signal/dwt.h"

namespace aims::signal {

double EstimateNoiseSigma(const std::vector<double>& coeffs) {
  const size_t n = coeffs.size();
  AIMS_CHECK(IsPowerOfTwo(n));
  if (n < 2) return 0.0;
  // Finest-scale details occupy [n/2, n); at that scale almost everything
  // is noise, so their median absolute value is a robust sigma proxy.
  std::vector<double> finest(coeffs.begin() + static_cast<ptrdiff_t>(n / 2),
                             coeffs.end());
  for (double& v : finest) v = std::fabs(v);
  std::nth_element(finest.begin(), finest.begin() + static_cast<ptrdiff_t>(
                                       finest.size() / 2),
                   finest.end());
  double mad = finest[finest.size() / 2];
  return mad / 0.6745;
}

size_t ThresholdCoefficients(std::vector<double>* coeffs, double threshold,
                             const DenoiseOptions& options) {
  const size_t n = coeffs->size();
  AIMS_CHECK(IsPowerOfTwo(n));
  int levels = MaxLevels(n);
  size_t zeroed = 0;
  // Details of level l occupy [n >> l, n >> (l-1)); level `levels` is the
  // coarsest. Protect the top `protect_levels` detail bands and the
  // scaling coefficient at index 0.
  for (int level = 1; level <= levels - options.protect_levels; ++level) {
    size_t base = n >> level;
    for (size_t k = base; k < 2 * base; ++k) {
      double& c = (*coeffs)[k];
      if (std::fabs(c) <= threshold) {
        if (c != 0.0) ++zeroed;
        c = 0.0;
      } else if (options.rule == ThresholdRule::kSoft) {
        c = c > 0.0 ? c - threshold : c + threshold;
      }
    }
  }
  return zeroed;
}

Result<std::vector<double>> Denoise(const WaveletFilter& filter,
                                    const std::vector<double>& signal,
                                    const DenoiseOptions& options) {
  if (!IsPowerOfTwo(signal.size())) {
    return Status::InvalidArgument("Denoise: length must be a power of two");
  }
  AIMS_ASSIGN_OR_RETURN(std::vector<double> coeffs,
                        ForwardDwt(filter, signal));
  double sigma = EstimateNoiseSigma(coeffs);
  double threshold = options.threshold_scale * sigma *
                     std::sqrt(2.0 * std::log(
                                         static_cast<double>(signal.size())));
  ThresholdCoefficients(&coeffs, threshold, options);
  return InverseDwt(filter, coeffs);
}

}  // namespace aims::signal
