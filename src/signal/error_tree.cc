#include "signal/error_tree.h"

#include <algorithm>
#include <set>

#include "common/macros.h"
#include "signal/dwt.h"

namespace aims::signal {

HaarErrorTree::HaarErrorTree(size_t n) : n_(n) {
  AIMS_CHECK(IsPowerOfTwo(n));
  levels_ = MaxLevels(n);
}

int HaarErrorTree::LevelOf(size_t flat_index) const {
  AIMS_CHECK(flat_index < n_);
  if (flat_index == 0) return 0;  // root scaling
  // Details of level l occupy [n/2^l, n/2^(l-1)).
  for (int l = levels_; l >= 1; --l) {
    size_t base = n_ >> l;
    if (flat_index >= base && flat_index < 2 * base) return l;
  }
  AIMS_CHECK(false);
  return -1;
}

size_t HaarErrorTree::Parent(size_t flat_index) const {
  if (flat_index <= 1) return 0;
  int level = LevelOf(flat_index);
  size_t base = n_ >> level;
  size_t k = flat_index - base;
  if (level == levels_) return 0;  // coarsest detail hangs off the root
  size_t parent_base = n_ >> (level + 1);
  return parent_base + k / 2;
}

std::vector<size_t> HaarErrorTree::Children(size_t flat_index) const {
  if (flat_index == 0) return {1};
  int level = LevelOf(flat_index);
  if (level == 1) return {};
  size_t base = n_ >> level;
  size_t k = flat_index - base;
  size_t child_base = n_ >> (level - 1);
  return {child_base + 2 * k, child_base + 2 * k + 1};
}

std::pair<size_t, size_t> HaarErrorTree::SupportOf(size_t flat_index) const {
  if (flat_index == 0) return {0, n_ - 1};
  int level = LevelOf(flat_index);
  size_t base = n_ >> level;
  size_t k = flat_index - base;
  size_t width = size_t{1} << level;
  return {k * width, (k + 1) * width - 1};
}

std::vector<size_t> HaarErrorTree::PointQuerySupport(size_t i) const {
  AIMS_CHECK(i < n_);
  std::vector<size_t> support;
  support.push_back(0);
  for (int l = 1; l <= levels_; ++l) {
    size_t base = n_ >> l;
    support.push_back(base + (i >> l));
  }
  return support;
}

std::vector<size_t> HaarErrorTree::RangeSumSupport(size_t lo, size_t hi) const {
  AIMS_CHECK(lo <= hi && hi < n_);
  std::set<size_t> support;
  support.insert(0);
  // A detail coefficient contributes to sum_{i in [lo,hi]} iff its support
  // straddles a boundary of the range (fully-inside supports cancel: the
  // Haar detail integrates to zero over its support).
  for (int l = 1; l <= levels_; ++l) {
    size_t base = n_ >> l;
    size_t width = size_t{1} << l;
    for (size_t boundary : {lo, hi + 1}) {
      if (boundary == 0 || boundary >= n_) continue;
      // The coefficient whose support contains positions boundary-1 and
      // boundary is split by the range edge.
      size_t k_left = (boundary - 1) / width;
      size_t k_right = boundary / width;
      if (k_left == k_right) {
        // boundary cuts through the interior of this support
        support.insert(base + k_left);
      }
    }
  }
  return {support.begin(), support.end()};
}

std::vector<size_t> HaarErrorTree::RangeScanSupport(size_t lo,
                                                    size_t hi) const {
  AIMS_CHECK(lo <= hi && hi < n_);
  std::set<size_t> support;
  support.insert(0);
  for (int l = 1; l <= levels_; ++l) {
    size_t base = n_ >> l;
    for (size_t k = lo >> l; k <= hi >> l; ++k) {
      support.insert(base + k);
    }
  }
  return {support.begin(), support.end()};
}

}  // namespace aims::signal
