#pragma once

#include <cstddef>
#include <vector>

/// \file spectral.h
/// \brief Maximum-frequency and Nyquist-rate estimation for sensor signals
/// (Sec. 3.1 of the paper): the acquisition subsystem samples each sensor at
/// r_nyquist = 2 * f_max, where f_max is identified from the signal spectrum
/// within a confidence threshold.

namespace aims::signal {

/// \brief How f_max is identified from a pilot recording.
enum class MaxFrequencyMethod {
  kSpectrumEnergy,    ///< Smallest f containing `energy_fraction` of power.
  kAutocorrelation,   ///< 1 / (2 * first-zero-crossing lag).
  kMinSquareError,    ///< Smallest rate whose decimate+interpolate NMSE is
                      ///< below `mse_threshold`.
};

/// \brief Tuning knobs for EstimateMaxFrequency.
struct SpectralOptions {
  MaxFrequencyMethod method = MaxFrequencyMethod::kSpectrumEnergy;
  /// Fraction of total (DC-excluded) spectral energy that must lie below
  /// f_max for kSpectrumEnergy (the paper's "confidence threshold").
  double energy_fraction = 0.99;
  /// Reconstruction NMSE tolerance for kMinSquareError.
  double mse_threshold = 0.01;
  /// Signals whose variance falls below this are treated as inactive
  /// (sensor noise floor): f_max = 0, so the sampler drops to its minimum
  /// rate instead of chasing white noise at the device rate.
  double noise_floor_variance = 1e-3;
};

/// \brief Estimates the maximum significant frequency (Hz) in \p signal
/// sampled at \p sample_rate_hz. Returns 0 for constant signals.
double EstimateMaxFrequency(const std::vector<double>& signal,
                            double sample_rate_hz,
                            const SpectralOptions& options = {});

/// \brief The Nyquist sampling rate 2 * f_max, clamped to
/// [min_rate_hz, sample_rate_hz].
double EstimateNyquistRate(const std::vector<double>& signal,
                           double sample_rate_hz,
                           const SpectralOptions& options = {},
                           double min_rate_hz = 1.0);

/// \brief Reconstructs a uniformly resampled signal back onto the original
/// clock by linear interpolation. \p decimation >= 1 keeps every
/// `decimation`-th sample. Used to score how lossy a lower sampling rate is.
std::vector<double> DecimateAndInterpolate(const std::vector<double>& signal,
                                           size_t decimation);

}  // namespace aims::signal
