#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"

/// \file resample.h
/// \brief Anti-aliased rate conversion for the acquisition subsystem
/// (Sec. 3.1). Naive decimation folds any energy above the new Nyquist
/// limit back into the band (aliasing); a windowed-sinc low-pass applied
/// before dropping samples removes it — at the cost of a small transition
/// band. The samplers can optionally run this prefilter so that the
/// Nyquist-rate guarantees of spectral.h survive the rate change.

namespace aims::signal {

/// \brief Symmetric odd-length FIR low-pass (Hamming-windowed sinc).
class FirFilter {
 public:
  /// Designs a low-pass with the given normalized cutoff (fraction of the
  /// input Nyquist frequency, in (0, 1)) and \p taps coefficients (odd;
  /// rounded up when even).
  static Result<FirFilter> DesignLowPass(double cutoff, size_t taps = 31);

  const std::vector<double>& coefficients() const { return coefficients_; }

  /// Zero-phase filtering: the output has the input's length; edges are
  /// handled by symmetric reflection.
  std::vector<double> Apply(const std::vector<double>& signal) const;

 private:
  explicit FirFilter(std::vector<double> coefficients)
      : coefficients_(std::move(coefficients)) {}

  std::vector<double> coefficients_;
};

/// \brief Keeps every `factor`-th sample after low-pass prefiltering at
/// cutoff 1/factor. factor == 1 returns the input.
Result<std::vector<double>> DecimateAntiAliased(
    const std::vector<double>& signal, size_t factor, size_t taps = 31);

/// \brief Naive decimation (no prefilter) — the aliasing-prone comparator.
std::vector<double> DecimateNaive(const std::vector<double>& signal,
                                  size_t factor);

}  // namespace aims::signal
