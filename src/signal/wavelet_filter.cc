#include "signal/wavelet_filter.h"

#include <cmath>

#include "common/macros.h"

namespace aims::signal {

namespace {

// Daubechies lowpass coefficients, normalized so sum = sqrt(2) and
// sum of squares = 1 (orthonormal convention).
std::vector<double> HaarLowpass() {
  const double s = 1.0 / std::sqrt(2.0);
  return {s, s};
}

std::vector<double> Db2Lowpass() {
  const double s = std::sqrt(2.0);
  const double r3 = std::sqrt(3.0);
  return {(1 + r3) / (4 * s), (3 + r3) / (4 * s), (3 - r3) / (4 * s),
          (1 - r3) / (4 * s)};
}

std::vector<double> Db3Lowpass() {
  // Canonical db3 coefficients (orthonormal scaling filter).
  return {0.33267055295095688, 0.80689150931333875, 0.45987750211933132,
          -0.13501102001039084, -0.08544127388224149, 0.03522629188210562};
}

std::vector<double> Db4Lowpass() {
  return {0.23037781330885523,  0.71484657055254153,  0.63088076792959036,
          -0.02798376941698385, -0.18703481171888114, 0.03084138183598697,
          0.03288301166698295,  -0.01059740178499728};
}

}  // namespace

const char* WaveletKindName(WaveletKind kind) {
  switch (kind) {
    case WaveletKind::kHaar:
      return "haar";
    case WaveletKind::kDb2:
      return "db2";
    case WaveletKind::kDb3:
      return "db3";
    case WaveletKind::kDb4:
      return "db4";
  }
  return "unknown";
}

WaveletFilter::WaveletFilter(WaveletKind kind, std::vector<double> lowpass)
    : kind_(kind), lowpass_(std::move(lowpass)) {
  AIMS_CHECK(lowpass_.size() % 2 == 0);
  highpass_.resize(lowpass_.size());
  const size_t len = lowpass_.size();
  for (size_t t = 0; t < len; ++t) {
    double sign = (t % 2 == 0) ? 1.0 : -1.0;
    highpass_[t] = sign * lowpass_[len - 1 - t];
  }
}

WaveletFilter WaveletFilter::Make(WaveletKind kind) {
  switch (kind) {
    case WaveletKind::kHaar:
      return WaveletFilter(kind, HaarLowpass());
    case WaveletKind::kDb2:
      return WaveletFilter(kind, Db2Lowpass());
    case WaveletKind::kDb3:
      return WaveletFilter(kind, Db3Lowpass());
    case WaveletKind::kDb4:
      return WaveletFilter(kind, Db4Lowpass());
  }
  AIMS_CHECK(false);
  return WaveletFilter(WaveletKind::kHaar, HaarLowpass());
}

Result<WaveletFilter> WaveletFilter::FromName(const std::string& name) {
  if (name == "haar" || name == "db1") return Make(WaveletKind::kHaar);
  if (name == "db2") return Make(WaveletKind::kDb2);
  if (name == "db3") return Make(WaveletKind::kDb3);
  if (name == "db4") return Make(WaveletKind::kDb4);
  return Status::InvalidArgument("unknown wavelet filter: " + name);
}

}  // namespace aims::signal
