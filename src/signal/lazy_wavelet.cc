#include "signal/lazy_wavelet.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/macros.h"
#include "signal/dwt.h"

namespace aims::signal {

double SparseCoefficients::Dot(const std::vector<double>& dense) const {
  double acc = 0.0;
  for (const auto& [idx, val] : entries) {
    AIMS_CHECK(idx < dense.size());
    acc += val * dense[idx];
  }
  return acc;
}

std::vector<std::pair<size_t, double>> SparseCoefficients::ByMagnitude()
    const {
  std::vector<std::pair<size_t, double>> sorted = entries;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              return std::fabs(a.second) > std::fabs(b.second);
            });
  return sorted;
}

double SparseCoefficients::EnergySquared() const {
  double acc = 0.0;
  for (const auto& [idx, val] : entries) {
    (void)idx;
    acc += val * val;
  }
  return acc;
}

namespace {

/// Mutable state of one analysis level: value(i) = explicit_[i] if present,
/// else poly_(i) when i lies in [interior_lo_, interior_hi_], else 0.
struct LevelState {
  size_t n = 0;
  bool has_interior = false;
  size_t interior_lo = 0;
  size_t interior_hi = 0;
  Polynomial poly;
  std::map<size_t, double> explicit_values;

  double ValueAt(size_t i) const {
    auto it = explicit_values.find(i);
    if (it != explicit_values.end()) return it->second;
    if (has_interior && i >= interior_lo && i <= interior_hi) {
      return poly.Eval(static_cast<double>(i));
    }
    return 0.0;
  }

  /// Folds the symbolic interior into the explicit map.
  void MaterializeInterior() {
    if (!has_interior) return;
    for (size_t i = interior_lo; i <= interior_hi; ++i) {
      explicit_values[i] = poly.Eval(static_cast<double>(i));
    }
    has_interior = false;
  }
};

double MaxAbsCoeff(const Polynomial& p) {
  double m = 0.0;
  for (double c : p.coeffs()) m = std::max(m, std::fabs(c));
  return m;
}

}  // namespace

Result<SparseCoefficients> LazyWaveletTransform(const WaveletFilter& filter,
                                                size_t n, size_t lo, size_t hi,
                                                const Polynomial& poly) {
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument(
        "LazyWaveletTransform: n must be a power of two");
  }
  if (lo > hi || hi >= n) {
    return Status::InvalidArgument("LazyWaveletTransform: bad range");
  }
  if (poly.degree() >= filter.vanishing_moments()) {
    return Status::InvalidArgument(
        "LazyWaveletTransform: polynomial degree must be below the filter's "
        "vanishing moments for a sparse transform");
  }

  const auto& h = filter.lowpass();
  const auto& g = filter.highpass();
  const size_t L = filter.length();
  const int levels = MaxLevels(n);

  SparseCoefficients result;
  LevelState state;
  state.n = n;
  state.has_interior = true;
  state.interior_lo = lo;
  state.interior_hi = hi;
  state.poly = poly;

  // Precompute the one-level symbolic maps once: they do not depend on the
  // level, only on the filter and on the current interior polynomial, which
  // changes each level — so compute inside the loop instead.
  for (int level = 1; level <= levels; ++level) {
    const size_t n_cur = state.n;
    const size_t n_half = n_cur / 2;

    // Small signals: give up on symbolics, go fully explicit.
    if (state.has_interior && n_cur <= std::max<size_t>(4 * L, 8)) {
      state.MaterializeInterior();
    }

    // New symbolic interior output range: windows fully inside the interior.
    bool out_has_interior = false;
    size_t out_lo = 0, out_hi = 0;
    Polynomial out_poly;
    if (state.has_interior) {
      size_t jlo = (state.interior_lo + 1) / 2;  // ceil(ilo / 2)
      // 2j + L - 1 <= ihi  =>  j <= (ihi - L + 1) / 2, if representable.
      if (state.interior_hi + 1 >= L) {
        size_t jhi_num = state.interior_hi - (L - 1);
        size_t jhi = jhi_num / 2;
        if (jlo <= jhi && jhi < n_half) {
          out_has_interior = true;
          out_lo = jlo;
          out_hi = jhi;
        }
      }
      if (!out_has_interior) {
        // Interior too small to carry symbolically; make it explicit.
        state.MaterializeInterior();
      }
    }

    if (out_has_interior) {
      // Symbolic lowpass: p'(j) = sum_t h[t] p(2j + t); symbolic highpass
      // must vanish by the moment condition — verified numerically.
      Polynomial detail_poly;
      for (size_t t = 0; t < L; ++t) {
        Polynomial shifted =
            state.poly.ComposeAffine(2.0, static_cast<double>(t));
        out_poly.AddScaled(shifted, h[t]);
        detail_poly.AddScaled(shifted, g[t]);
      }
      double scale = std::max(1.0, MaxAbsCoeff(out_poly));
      if (MaxAbsCoeff(detail_poly) > 1e-6 * scale) {
        return Status::Internal(
            "LazyWaveletTransform: interior details did not vanish; filter "
            "moment condition violated");
      }
    }

    // Candidate explicit outputs: any j (outside the symbolic interior)
    // whose analysis window touches an explicit value or the boundary zone
    // of the interior.
    std::set<size_t> touched_inputs;
    for (const auto& [i, v] : state.explicit_values) {
      (void)v;
      touched_inputs.insert(i);
    }
    if (state.has_interior) {
      size_t zone = L;  // windows reach at most L-1 past an edge
      size_t lo_end = std::min(state.interior_lo + zone, state.interior_hi);
      for (size_t i = state.interior_lo; i <= lo_end; ++i) {
        touched_inputs.insert(i);
      }
      size_t hi_start = state.interior_hi >= zone
                            ? std::max(state.interior_hi - zone,
                                       state.interior_lo)
                            : state.interior_lo;
      for (size_t i = hi_start; i <= state.interior_hi; ++i) {
        touched_inputs.insert(i);
      }
    }
    std::set<size_t> candidates;
    for (size_t i : touched_inputs) {
      for (size_t t = 0; t < L; ++t) {
        // Solve (2j + t) mod n_cur == i for j.
        size_t m = (i + n_cur - t % n_cur) % n_cur;
        if (m % 2 == 0) {
          size_t j = m / 2;
          if (j < n_half) candidates.insert(j);
        }
      }
    }

    LevelState next;
    next.n = n_half;
    next.has_interior = out_has_interior;
    next.interior_lo = out_lo;
    next.interior_hi = out_hi;
    next.poly = out_poly;

    for (size_t j : candidates) {
      if (out_has_interior && j >= out_lo && j <= out_hi) continue;
      double s = 0.0, d = 0.0;
      for (size_t t = 0; t < L; ++t) {
        double v = state.ValueAt((2 * j + t) % n_cur);
        s += h[t] * v;
        d += g[t] * v;
      }
      if (std::fabs(d) > 1e-12) {
        result.entries.emplace_back(DetailIndex(n, level, j), d);
      }
      if (std::fabs(s) > 1e-14) {
        next.explicit_values[j] = s;
      }
    }

    state = std::move(next);
  }

  // The single remaining value is the overall scaling coefficient.
  AIMS_CHECK(state.n == 1);
  double root = state.ValueAt(0);
  if (std::fabs(root) > 1e-12) {
    result.entries.emplace_back(0, root);
  }

  std::sort(result.entries.begin(), result.entries.end());
  return result;
}

Result<SparseCoefficients> DenseQueryTransform(const WaveletFilter& filter,
                                               size_t n, size_t lo, size_t hi,
                                               const Polynomial& poly,
                                               double tol) {
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument(
        "DenseQueryTransform: n must be a power of two");
  }
  if (lo > hi || hi >= n) {
    return Status::InvalidArgument("DenseQueryTransform: bad range");
  }
  std::vector<double> q(n, 0.0);
  for (size_t i = lo; i <= hi; ++i) q[i] = poly.Eval(static_cast<double>(i));
  AIMS_ASSIGN_OR_RETURN(std::vector<double> t, ForwardDwt(filter, q));
  SparseCoefficients out;
  for (size_t i = 0; i < n; ++i) {
    if (std::fabs(t[i]) > tol) out.entries.emplace_back(i, t[i]);
  }
  return out;
}

}  // namespace aims::signal
