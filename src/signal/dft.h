#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "common/status.h"

/// \file dft.h
/// \brief Radix-2 FFT and spectrum utilities used by the acquisition
/// subsystem (Nyquist rate estimation) and by the DFT similarity baseline.

namespace aims::signal {

/// \brief In-place iterative radix-2 Cooley-Tukey FFT.
/// Fails unless the length is a power of two.
Status Fft(std::vector<std::complex<double>>* data, bool inverse = false);

/// \brief FFT of a real signal (zero-padded to the next power of two).
std::vector<std::complex<double>> RealFft(const std::vector<double>& signal);

/// \brief One-sided power spectrum |X_k|^2 for k in [0, n/2], where n is the
/// padded length. Entry k corresponds to frequency k * sample_rate / n.
std::vector<double> PowerSpectrum(const std::vector<double>& signal);

/// \brief Biased autocorrelation r[k] for lags 0..max_lag, computed via FFT.
std::vector<double> Autocorrelation(const std::vector<double>& signal,
                                    size_t max_lag);

/// \brief Magnitudes of the first \p k DFT coefficients of \p signal —
/// the classic F-index feature vector of Agrawal/Faloutsos/Swami used as the
/// DFT similarity baseline in the recognition benchmarks.
std::vector<double> DftFeatures(const std::vector<double>& signal, size_t k);

}  // namespace aims::signal
