#pragma once

#include <string>
#include <vector>

#include "common/status.h"

/// \file wavelet_filter.h
/// \brief Orthonormal wavelet filter bank definitions (Haar and the
/// Daubechies family). The detail filter's vanishing moments are what make
/// ProPolyne's lazy query transform polylogarithmic: a filter with p
/// vanishing moments annihilates polynomials of degree < p.

namespace aims::signal {

/// \brief Supported orthonormal wavelet families.
enum class WaveletKind {
  kHaar,  ///< Daubechies-1: 2 taps, 1 vanishing moment.
  kDb2,   ///< Daubechies-2: 4 taps, 2 vanishing moments.
  kDb3,   ///< Daubechies-3: 6 taps, 3 vanishing moments.
  kDb4,   ///< Daubechies-4: 8 taps, 4 vanishing moments.
};

/// \brief Human-readable name ("haar", "db2", ...).
const char* WaveletKindName(WaveletKind kind);

/// \brief An orthonormal two-channel filter bank.
///
/// Decomposition convention (periodic, length-n input, n even):
///   s[j] = sum_t lowpass[t]  * x[(2j + t) mod n]
///   d[j] = sum_t highpass[t] * x[(2j + t) mod n]
/// The highpass is the quadrature mirror of the lowpass:
///   highpass[t] = (-1)^t * lowpass[L-1-t].
class WaveletFilter {
 public:
  /// Builds the filter bank for \p kind.
  static WaveletFilter Make(WaveletKind kind);

  /// Parses "haar" / "db2" / "db3" / "db4".
  static Result<WaveletFilter> FromName(const std::string& name);

  WaveletKind kind() const { return kind_; }
  const std::vector<double>& lowpass() const { return lowpass_; }
  const std::vector<double>& highpass() const { return highpass_; }
  size_t length() const { return lowpass_.size(); }

  /// Number of vanishing moments of the highpass filter; the lazy query
  /// transform is exact-and-sparse for polynomial degrees strictly below
  /// this.
  int vanishing_moments() const { return static_cast<int>(lowpass_.size() / 2); }

  const char* name() const { return WaveletKindName(kind_); }

 private:
  WaveletFilter(WaveletKind kind, std::vector<double> lowpass);

  WaveletKind kind_;
  std::vector<double> lowpass_;
  std::vector<double> highpass_;
};

}  // namespace aims::signal
