#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "signal/wavelet_filter.h"

/// \file dwpt.h
/// \brief Discrete Wavelet Packet Transform with Coifman-Wickerhauser
/// best-basis selection (Sec. 3.1.1 of the paper). AIMS selects a
/// transformation basis per dimension from this general basis library; the
/// plain DWT, the standard (identity) basis, and the "DFT-like" full-depth
/// decomposition are all members.

namespace aims::signal {

/// \brief Additive information cost used to compare candidate bases.
enum class BasisCost {
  kShannonEntropy,   ///< -sum p_i log p_i of normalized squared coefficients.
  kLogEnergy,        ///< sum log(c_i^2).
  kThresholdCount,   ///< Number of coefficients above a fixed threshold.
  kL1Norm,           ///< sum |c_i| (sparsity proxy).
};

/// \brief Identifies one node of the packet tree: \p level in [0, depth],
/// \p block in [0, 2^level). Node (0,0) is the untransformed signal; block 0
/// children are lowpass, block 1 children highpass.
struct PacketNode {
  int level = 0;
  size_t block = 0;

  bool operator==(const PacketNode& other) const {
    return level == other.level && block == other.block;
  }
};

/// \brief Full wavelet packet decomposition of one signal.
class WaveletPacketTree {
 public:
  /// Decomposes \p signal (power-of-two length) down to \p max_depth levels
  /// (-1 = as deep as possible).
  static Result<WaveletPacketTree> Build(const WaveletFilter& filter,
                                         const std::vector<double>& signal,
                                         int max_depth = -1);

  int depth() const { return depth_; }
  size_t signal_length() const { return n_; }

  /// Coefficients of node (level, block); length n / 2^level.
  const std::vector<double>& NodeCoefficients(const PacketNode& node) const;

  /// \brief Selects the minimum-cost basis by bottom-up dynamic programming
  /// over the packet tree (Coifman-Wickerhauser).
  std::vector<PacketNode> BestBasis(BasisCost cost,
                                    double threshold = 1e-3) const;

  /// \brief The basis corresponding to the ordinary DWT (the leftmost path).
  std::vector<PacketNode> DwtBasis() const;

  /// \brief The standard (no transform) basis: just the root node.
  std::vector<PacketNode> StandardBasis() const;

  /// \brief Concatenated coefficients of the given basis, ordered by block.
  /// The result always has exactly signal_length() entries for any valid
  /// basis (the transform is orthonormal, so energy is preserved).
  std::vector<double> BasisCoefficients(
      const std::vector<PacketNode>& basis) const;

  /// \brief Additive cost of a basis under the given cost functional.
  double CostOf(const std::vector<PacketNode>& basis, BasisCost cost,
                double threshold = 1e-3) const;

  /// \brief Reconstructs the signal from basis coefficients (inverse of
  /// BasisCoefficients for the same basis).
  Result<std::vector<double>> Reconstruct(
      const std::vector<PacketNode>& basis,
      const std::vector<double>& coeffs) const;

  /// \brief True if \p basis is a valid disjoint cover of the tree.
  bool IsValidBasis(const std::vector<PacketNode>& basis) const;

 private:
  WaveletPacketTree(WaveletFilter filter, size_t n, int depth)
      : filter_(std::move(filter)), n_(n), depth_(depth) {}

  size_t NodeSlot(const PacketNode& node) const;
  double NodeCost(const PacketNode& node, BasisCost cost,
                  double threshold) const;

  WaveletFilter filter_;
  size_t n_;
  int depth_;
  // nodes_[slot] where slot enumerates (level, block) row by row.
  std::vector<std::vector<double>> nodes_;
};

/// \brief Cost value of one coefficient vector (exposed for tests).
double InformationCost(const std::vector<double>& coeffs, BasisCost cost,
                       double threshold = 1e-3);

}  // namespace aims::signal
