#include "signal/polynomial.h"

#include <cmath>

#include "common/macros.h"

namespace aims::signal {

Polynomial::Polynomial(std::vector<double> coeffs)
    : coeffs_(std::move(coeffs)) {
  if (coeffs_.empty()) coeffs_.push_back(0.0);
}

Polynomial Polynomial::Monomial(int k, double scale) {
  AIMS_CHECK(k >= 0);
  std::vector<double> c(static_cast<size_t>(k) + 1, 0.0);
  c.back() = scale;
  return Polynomial(std::move(c));
}

double Polynomial::Eval(double x) const {
  double acc = 0.0;
  for (size_t i = coeffs_.size(); i-- > 0;) acc = acc * x + coeffs_[i];
  return acc;
}

Polynomial Polynomial::ComposeAffine(double a, double b) const {
  // Horner in the polynomial ring: result = ((c_d*(ax+b) + c_{d-1})*(ax+b)...
  Polynomial result = Polynomial::Constant(coeffs_.back());
  for (size_t i = coeffs_.size() - 1; i-- > 0;) {
    // result = result * (a x + b) + c_i
    std::vector<double> next(result.coeffs_.size() + 1, 0.0);
    for (size_t j = 0; j < result.coeffs_.size(); ++j) {
      next[j] += result.coeffs_[j] * b;
      next[j + 1] += result.coeffs_[j] * a;
    }
    next[0] += coeffs_[i];
    result.coeffs_ = std::move(next);
  }
  result.Trim();
  return result;
}

void Polynomial::AddScaled(const Polynomial& other, double scale) {
  if (other.coeffs_.size() > coeffs_.size()) {
    coeffs_.resize(other.coeffs_.size(), 0.0);
  }
  for (size_t i = 0; i < other.coeffs_.size(); ++i) {
    coeffs_[i] += scale * other.coeffs_[i];
  }
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  std::vector<double> out(coeffs_.size() + other.coeffs_.size() - 1, 0.0);
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    for (size_t j = 0; j < other.coeffs_.size(); ++j) {
      out[i + j] += coeffs_[i] * other.coeffs_[j];
    }
  }
  Polynomial p(std::move(out));
  p.Trim();
  return p;
}

bool Polynomial::IsZero(double tol) const {
  for (double c : coeffs_) {
    if (std::fabs(c) > tol) return false;
  }
  return true;
}

void Polynomial::Trim(double tol) {
  while (coeffs_.size() > 1 && std::fabs(coeffs_.back()) < tol) {
    coeffs_.pop_back();
  }
}

}  // namespace aims::signal
