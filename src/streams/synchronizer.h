#pragma once

#include <map>
#include <vector>

#include "common/status.h"
#include "streams/sample.h"

/// \file synchronizer.h
/// \brief Merges per-sensor sample streams into synchronized frames. The
/// online recognizer needs the *tight aggregation* the paper describes:
/// a frame is only meaningful once every sensor has reported for its tick.

namespace aims::streams {

/// \brief Aligns samples from `num_channels` sensors into frames on a fixed
/// tick grid. A frame is emitted once every channel has a sample within the
/// tick's half-open window [tick*dt, (tick+1)*dt); missing channels hold
/// their previous value (zero-order hold) after `max_gap_ticks` grace ticks.
class StreamSynchronizer {
 public:
  /// \param num_channels number of sensors to align.
  /// \param tick_interval seconds per output frame.
  /// \param max_gap_ticks how many ticks a silent channel may be bridged by
  ///   zero-order hold before Flush reports it stale.
  StreamSynchronizer(size_t num_channels, double tick_interval,
                     size_t max_gap_ticks = 4);

  /// Ingests one sample; emits zero or more completed frames into \p out.
  Status Push(const Sample& sample, std::vector<Frame>* out);

  /// Emits any frames that can still be completed with zero-order hold.
  void Flush(std::vector<Frame>* out);

  size_t frames_emitted() const { return frames_emitted_; }
  size_t samples_dropped() const { return samples_dropped_; }

 private:
  void EmitUpTo(int64_t tick_exclusive, std::vector<Frame>* out);

  size_t num_channels_;
  double tick_interval_;
  size_t max_gap_ticks_;
  int64_t next_tick_ = 0;
  // Per pending tick: accumulated values and fill mask.
  struct Pending {
    std::vector<double> values;
    std::vector<bool> filled;
    size_t fill_count = 0;
  };
  std::map<int64_t, Pending> pending_;
  std::vector<double> last_value_;
  std::vector<bool> ever_seen_;
  size_t frames_emitted_ = 0;
  size_t samples_dropped_ = 0;
};

}  // namespace aims::streams
