#pragma once

#include <string>

#include "common/status.h"
#include "streams/sample.h"

/// \file recording_io.h
/// \brief Serialization of immersidata recordings. The paper's workflow is
/// explicitly record-then-analyze ("recording and storing immersidata for
/// future query and analysis"), so recordings need a durable interchange
/// format: a self-describing binary container for fidelity and CSV for
/// interoperability with analysis tools.

namespace aims::streams {

/// \brief Writes a recording as CSV: header `timestamp,ch0,ch1,...`, one
/// row per frame, full double precision.
Status WriteCsv(const Recording& recording, const std::string& path);

/// \brief Parses a CSV written by WriteCsv (or hand-made with the same
/// shape). \p sample_rate_hz is taken from the timestamps when positive
/// rows exist, else left 0.
Result<Recording> ReadCsv(const std::string& path);

/// \brief Writes the binary container: magic "AIMR", version, frame and
/// channel counts, sample rate, then row-major little-endian doubles.
Status WriteBinary(const Recording& recording, const std::string& path);

/// \brief Reads the binary container; validates magic, version, and size.
Result<Recording> ReadBinary(const std::string& path);

}  // namespace aims::streams
