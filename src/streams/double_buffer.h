#pragma once

#include <condition_variable>
#include <mutex>
#include <vector>

/// \file double_buffer.h
/// \brief The paper's acquisition design (Sec. 3.1): "a simple
/// multi-threaded double buffering approach. One thread was associated with
/// answering the handler call and copying sensor data into a region of
/// system memory. A second thread worked asynchronously to process and
/// store that data to disk." This class is that region of system memory:
/// the producer appends into the front buffer while the consumer drains the
/// swapped-out back buffer.

namespace aims::streams {

/// \brief Two-buffer handoff between one producer and one consumer thread.
template <typename T>
class DoubleBuffer {
 public:
  /// \param capacity per-buffer item limit; Produce drops items (and counts
  /// them) when the front buffer is full and the consumer is behind.
  explicit DoubleBuffer(size_t capacity) : capacity_(capacity) {
    front_.reserve(capacity);
    back_.reserve(capacity);
  }

  /// Producer side: appends an item. Returns false (and counts a drop) when
  /// the front buffer is at capacity — the sensor interrupt can never block.
  bool Produce(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (front_.size() >= capacity_) {
      ++dropped_;
      return false;
    }
    front_.push_back(std::move(item));
    cv_.notify_one();
    return true;
  }

  /// Consumer side: swaps out everything buffered so far. Blocks until data
  /// arrives or Close() is called; returns false once closed and drained.
  bool Consume(std::vector<T>* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !front_.empty() || closed_; });
    if (front_.empty()) return false;
    back_.clear();
    back_.swap(front_);
    lock.unlock();
    out->swap(back_);
    return true;
  }

  /// Non-blocking variant; returns false when nothing was buffered.
  bool TryConsume(std::vector<T>* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (front_.empty()) return false;
    back_.clear();
    back_.swap(front_);
    out->swap(back_);
    return true;
  }

  /// Producer signals end-of-stream.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cv_.notify_all();
  }

  size_t dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<T> front_;
  std::vector<T> back_;
  bool closed_ = false;
  size_t dropped_ = 0;
};

}  // namespace aims::streams
