#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file sample.h
/// \brief Core immersidata sample types. A sensor emits timestamped scalar
/// readings; a frame is the synchronized vector of all sensors at one tick
/// (the paper: "data from all sensors together form a meaningful point in
/// the hand (or body) motion trajectory").

namespace aims::streams {

/// \brief Identifier of one physical sensor channel.
using SensorId = uint32_t;

/// \brief One scalar reading from one sensor.
struct Sample {
  SensorId sensor_id = 0;
  double timestamp = 0.0;  ///< Seconds since session start.
  double value = 0.0;
};

/// \brief The synchronized readings of every sensor at one sampling tick.
struct Frame {
  double timestamp = 0.0;
  std::vector<double> values;  ///< Indexed by channel position.
};

/// \brief A fully materialized multi-channel recording (frames over time).
struct Recording {
  double sample_rate_hz = 0.0;
  std::vector<Frame> frames;

  size_t num_frames() const { return frames.size(); }
  size_t num_channels() const {
    return frames.empty() ? 0 : frames.front().values.size();
  }

  /// Extracts one channel as a contiguous series.
  std::vector<double> Channel(size_t channel) const;

  /// Appends a frame; all frames must have the same channel count.
  void Append(Frame frame);
};

}  // namespace aims::streams
