#include "streams/synchronizer.h"

#include <cmath>

#include "common/macros.h"

namespace aims::streams {

StreamSynchronizer::StreamSynchronizer(size_t num_channels,
                                       double tick_interval,
                                       size_t max_gap_ticks)
    : num_channels_(num_channels),
      tick_interval_(tick_interval),
      max_gap_ticks_(max_gap_ticks),
      last_value_(num_channels, 0.0),
      ever_seen_(num_channels, false) {
  AIMS_CHECK(num_channels > 0);
  AIMS_CHECK(tick_interval > 0.0);
}

Status StreamSynchronizer::Push(const Sample& sample,
                                std::vector<Frame>* out) {
  if (sample.sensor_id >= num_channels_) {
    return Status::InvalidArgument("StreamSynchronizer: sensor id out of range");
  }
  int64_t tick = static_cast<int64_t>(std::floor(sample.timestamp / tick_interval_));
  if (tick < next_tick_) {
    ++samples_dropped_;  // Too late: its frame already shipped.
    return Status::OK();
  }
  Pending& slot = pending_[tick];
  if (slot.values.empty()) {
    slot.values.assign(num_channels_, 0.0);
    slot.filled.assign(num_channels_, false);
  }
  if (!slot.filled[sample.sensor_id]) {
    slot.filled[sample.sensor_id] = true;
    ++slot.fill_count;
  }
  slot.values[sample.sensor_id] = sample.value;  // Last write wins in a tick.
  ever_seen_[sample.sensor_id] = true;
  // NOTE: last_value_ (the zero-order-hold state) is updated only in
  // EmitUpTo, from frames as they ship. Updating it here would let a
  // stale-bridged *earlier* tick fill its hole with this *future* sample.

  // Emit every tick that is complete, or old enough to bridge with
  // zero-order hold.
  int64_t newest = pending_.rbegin()->first;
  while (!pending_.empty()) {
    auto it = pending_.begin();
    bool complete = it->second.fill_count == num_channels_;
    bool stale = newest - it->first >= static_cast<int64_t>(max_gap_ticks_);
    if (!complete && !stale) break;
    EmitUpTo(it->first + 1, out);
  }
  return Status::OK();
}

void StreamSynchronizer::EmitUpTo(int64_t tick_exclusive,
                                  std::vector<Frame>* out) {
  while (!pending_.empty() && pending_.begin()->first < tick_exclusive) {
    auto it = pending_.begin();
    Frame frame;
    frame.timestamp = static_cast<double>(it->first) * tick_interval_;
    frame.values.resize(num_channels_);
    for (size_t c = 0; c < num_channels_; ++c) {
      frame.values[c] = it->second.filled[c] ? it->second.values[c]
                                             : last_value_[c];
    }
    // Update the hold values so later gaps see this tick's data.
    for (size_t c = 0; c < num_channels_; ++c) {
      if (it->second.filled[c]) last_value_[c] = it->second.values[c];
    }
    out->push_back(std::move(frame));
    ++frames_emitted_;
    next_tick_ = it->first + 1;
    pending_.erase(it);
  }
}

void StreamSynchronizer::Flush(std::vector<Frame>* out) {
  if (pending_.empty()) return;
  EmitUpTo(pending_.rbegin()->first + 1, out);
}

}  // namespace aims::streams
