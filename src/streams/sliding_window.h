#pragma once

#include "linalg/matrix.h"
#include "streams/ring_buffer.h"
#include "streams/sample.h"

/// \file sliding_window.h
/// \brief Bounded window of recent frames exposed as a matrix (rows = time,
/// cols = sensors) — the aggregate representation the weighted-SVD
/// similarity measure operates on.

namespace aims::streams {

/// \brief Keeps the most recent `capacity` frames of a multi-sensor stream.
class SlidingWindow {
 public:
  SlidingWindow(size_t capacity, size_t num_channels)
      : frames_(capacity), num_channels_(num_channels) {}

  /// Appends a frame (its channel count must match).
  void Push(const Frame& frame) {
    AIMS_CHECK(frame.values.size() == num_channels_);
    frames_.Push(frame);
  }

  size_t size() const { return frames_.size(); }
  bool full() const { return frames_.full(); }
  size_t num_channels() const { return num_channels_; }

  /// Timestamp of the newest retained frame (0 when empty).
  double latest_timestamp() const {
    return frames_.empty() ? 0.0 : frames_.Back().timestamp;
  }

  /// The retained window as a (size x num_channels) matrix, oldest row
  /// first.
  linalg::Matrix AsMatrix() const {
    linalg::Matrix m(frames_.size(), num_channels_);
    for (size_t r = 0; r < frames_.size(); ++r) {
      const Frame& f = frames_.At(r);
      for (size_t c = 0; c < num_channels_; ++c) m.At(r, c) = f.values[c];
    }
    return m;
  }

  void Clear() { frames_.Clear(); }

 private:
  RingBuffer<Frame> frames_;
  size_t num_channels_;
};

}  // namespace aims::streams
