#pragma once

#include <cstddef>
#include <vector>

#include "common/macros.h"

/// \file ring_buffer.h
/// \brief Fixed-capacity circular buffer: the continuous-data-stream
/// constraint that "the data can be looked at only once" means online
/// operators hold at most a bounded window of recent samples.

namespace aims::streams {

/// \brief Overwriting circular buffer of the most recent `capacity` items.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(size_t capacity) : buffer_(capacity) {
    AIMS_CHECK(capacity > 0);
  }

  /// Appends an item, evicting the oldest when full.
  void Push(T item) {
    buffer_[head_] = std::move(item);
    head_ = (head_ + 1) % buffer_.size();
    if (size_ < buffer_.size()) ++size_;
  }

  size_t size() const { return size_; }
  size_t capacity() const { return buffer_.size(); }
  bool full() const { return size_ == buffer_.size(); }
  bool empty() const { return size_ == 0; }

  /// Item \p i where 0 is the oldest retained item.
  const T& At(size_t i) const {
    AIMS_CHECK(i < size_);
    size_t start = (head_ + buffer_.size() - size_) % buffer_.size();
    return buffer_[(start + i) % buffer_.size()];
  }

  /// Most recent item.
  const T& Back() const {
    AIMS_CHECK(size_ > 0);
    return At(size_ - 1);
  }

  /// Copies the retained window, oldest first.
  std::vector<T> Snapshot() const {
    std::vector<T> out;
    out.reserve(size_);
    for (size_t i = 0; i < size_; ++i) out.push_back(At(i));
    return out;
  }

  void Clear() {
    size_ = 0;
    head_ = 0;
  }

 private:
  std::vector<T> buffer_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace aims::streams
