#include "streams/recording_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/macros.h"

namespace aims::streams {

namespace {
constexpr char kMagic[4] = {'A', 'I', 'M', 'R'};
constexpr uint32_t kVersion = 1;

/// Parses one full CSV cell as a double. The entire cell must be consumed:
/// strtod alone would silently turn "1.2.3" into 1.2 and "abc" or "" into
/// 0.0, corrupting the recording without any error.
bool ParseCsvCell(const std::string& cell, double* out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size()) return false;
  *out = v;
  return true;
}
}  // namespace

Status WriteCsv(const Recording& recording, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("WriteCsv: cannot open " + path);
  }
  out << "timestamp";
  for (size_t c = 0; c < recording.num_channels(); ++c) {
    out << ",ch" << c;
  }
  out << "\n";
  char buf[64];
  for (const Frame& frame : recording.frames) {
    std::snprintf(buf, sizeof(buf), "%.17g", frame.timestamp);
    out << buf;
    for (double v : frame.values) {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out << ',' << buf;
    }
    out << "\n";
  }
  if (!out) {
    return Status::IoError("WriteCsv: write failed for " + path);
  }
  return Status::OK();
}

Result<Recording> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("ReadCsv: cannot open " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("ReadCsv: empty file " + path);
  }
  // Count channels from the header. A trailing comma promises a channel
  // that no data row can fill — reject it here rather than reporting a
  // confusing "ragged row" on every data row below.
  if (!line.empty() && line.back() == ',') {
    return Status::InvalidArgument(
        "ReadCsv: header has a trailing comma (empty channel name)");
  }
  size_t channels = 0;
  for (char c : line) {
    if (c == ',') ++channels;
  }
  if (channels == 0) {
    return Status::InvalidArgument("ReadCsv: header has no channels");
  }
  Recording recording;
  size_t row_number = 0;  // 1-based data row (header excluded).
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++row_number;
    std::stringstream row(line);
    std::string cell;
    Frame frame;
    if (!std::getline(row, cell, ',')) {
      return Status::InvalidArgument("ReadCsv: malformed row " +
                                     std::to_string(row_number));
    }
    if (!ParseCsvCell(cell, &frame.timestamp)) {
      return Status::InvalidArgument(
          "ReadCsv: invalid number '" + cell + "' at row " +
          std::to_string(row_number) + ", column 0 (timestamp)");
    }
    while (std::getline(row, cell, ',')) {
      double value = 0.0;
      if (!ParseCsvCell(cell, &value)) {
        return Status::InvalidArgument(
            "ReadCsv: invalid number '" + cell + "' at row " +
            std::to_string(row_number) + ", column " +
            std::to_string(frame.values.size() + 1));
      }
      frame.values.push_back(value);
    }
    if (frame.values.size() != channels) {
      return Status::InvalidArgument(
          "ReadCsv: ragged row " + std::to_string(row_number) + " (" +
          std::to_string(frame.values.size()) + " values, header declares " +
          std::to_string(channels) + ")");
    }
    recording.Append(std::move(frame));
  }
  if (recording.num_frames() >= 2) {
    double span = recording.frames.back().timestamp -
                  recording.frames.front().timestamp;
    if (span > 0.0) {
      recording.sample_rate_hz =
          static_cast<double>(recording.num_frames() - 1) / span;
    }
  }
  return recording;
}

Status WriteBinary(const Recording& recording, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("WriteBinary: cannot open " + path);
  }
  out.write(kMagic, 4);
  uint32_t version = kVersion;
  uint64_t frames = recording.num_frames();
  uint64_t channels = recording.num_channels();
  double rate = recording.sample_rate_hz;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&frames), sizeof(frames));
  out.write(reinterpret_cast<const char*>(&channels), sizeof(channels));
  out.write(reinterpret_cast<const char*>(&rate), sizeof(rate));
  for (const Frame& frame : recording.frames) {
    out.write(reinterpret_cast<const char*>(&frame.timestamp),
              sizeof(double));
    out.write(reinterpret_cast<const char*>(frame.values.data()),
              static_cast<std::streamsize>(sizeof(double) *
                                           frame.values.size()));
  }
  if (!out) {
    return Status::IoError("WriteBinary: write failed for " + path);
  }
  return Status::OK();
}

Result<Recording> ReadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("ReadBinary: cannot open " + path);
  }
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("ReadBinary: bad magic in " + path);
  }
  uint32_t version = 0;
  uint64_t frames = 0, channels = 0;
  double rate = 0.0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&frames), sizeof(frames));
  in.read(reinterpret_cast<char*>(&channels), sizeof(channels));
  in.read(reinterpret_cast<char*>(&rate), sizeof(rate));
  if (!in) {
    return Status::InvalidArgument("ReadBinary: truncated header");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("ReadBinary: unsupported version");
  }
  if (channels == 0 || channels > 1u << 20 || frames > 1u << 30) {
    return Status::InvalidArgument("ReadBinary: implausible dimensions");
  }
  Recording recording;
  recording.sample_rate_hz = rate;
  for (uint64_t f = 0; f < frames; ++f) {
    Frame frame;
    frame.values.resize(channels);
    in.read(reinterpret_cast<char*>(&frame.timestamp), sizeof(double));
    in.read(reinterpret_cast<char*>(frame.values.data()),
            static_cast<std::streamsize>(sizeof(double) * channels));
    if (!in) {
      return Status::InvalidArgument("ReadBinary: truncated frame data");
    }
    recording.Append(std::move(frame));
  }
  return recording;
}

}  // namespace aims::streams
