#include "streams/sample.h"

#include "common/macros.h"

namespace aims::streams {

std::vector<double> Recording::Channel(size_t channel) const {
  std::vector<double> out;
  out.reserve(frames.size());
  for (const Frame& f : frames) {
    AIMS_CHECK(channel < f.values.size());
    out.push_back(f.values[channel]);
  }
  return out;
}

void Recording::Append(Frame frame) {
  if (!frames.empty()) {
    AIMS_CHECK(frame.values.size() == frames.front().values.size());
  }
  frames.push_back(std::move(frame));
}

}  // namespace aims::streams
