#include "core/aims.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <set>

#include "common/crc32.h"
#include "common/macros.h"
#include "obs/json_util.h"
#include "obs/profile.h"
#include "propolyne/incremental.h"
#include "signal/dwt.h"
#include "signal/lazy_wavelet.h"
#include "signal/polynomial.h"
#include "storage/allocation.h"
#include "streams/recording_io.h"

namespace aims::core {

namespace {

/// Little serialization helpers for the catalog blob / snapshot formats
/// (host byte order, like the rest of the durable layer's files).
void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}
void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}
void PutF64(std::vector<uint8_t>* out, double v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(v));
}

/// Bounds-checked forward reader over a serialized blob. Underflow trips
/// the sticky ok flag instead of reading garbage; callers check once.
struct ByteReader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  bool ok = true;

  bool Copy(void* dst, size_t n) {
    if (!ok || size - pos < n) {
      ok = false;
      return false;
    }
    std::memcpy(dst, data + pos, n);
    pos += n;
    return true;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Copy(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Copy(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0;
    Copy(&v, sizeof(v));
    return v;
  }
};

constexpr uint32_t kSnapshotMagic = 0x50414E53u;  // "SNAP"
/// v1: sessions only. v2 appends the sealed-segment section (raw-sample
/// lifecycle); v1 snapshots still load (their systems simply predate
/// segments).
constexpr uint32_t kSnapshotVersion = 2;
/// Guard against a corrupt length field allocating gigabytes at parse.
constexpr uint64_t kMaxCatalogField = 1u << 30;

Status WriteFileDurably(const std::string& dir, const std::string& name,
                        const std::vector<uint8_t>& bytes) {
  const std::string tmp = dir + "/" + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("WriteFileDurably: cannot open " + tmp + ": " +
                           std::strerror(errno));
  }
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::IoError("WriteFileDurably: write " + tmp + ": " +
                                      std::strerror(errno));
      ::close(fd);
      return status;
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status status = Status::IoError("WriteFileDurably: fsync " + tmp + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  ::close(fd);
  // Atomic replace: readers see either the old snapshot or the new one,
  // never a torn mix. The directory fsync makes the rename itself stick.
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return Status::IoError("WriteFileDurably: rename to " + final_path + ": " +
                           std::strerror(errno));
  }
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

}  // namespace

AimsSystem::AimsSystem(AimsConfig config)
    : config_(config),
      filter_(signal::WaveletFilter::Make(config.filter)),
      measure_(/*rank=*/0) {
  if (config_.durability.path.empty()) {
    device_ = std::make_unique<storage::MemBlockDevice>(
        config_.block_size_bytes, config_.disk_cost);
    if (config_.block_cache.capacity_bytes > 0) {
      cache_ = std::make_unique<storage::BlockCache>(device_.get(),
                                                     config_.block_cache);
    }
    return;
  }
  init_status_ = OpenDurable();
  if (!init_status_.ok()) {
    // Keep the accessors (device(), block_cache()) valid even after a
    // failed open; every mutating call refuses with init_status_.
    wal_.reset();
    file_device_ = nullptr;
    sessions_.clear();
    if (device_ == nullptr) {
      device_ = std::make_unique<storage::MemBlockDevice>(
          config_.block_size_bytes, config_.disk_cost);
    }
  }
}

Status AimsSystem::OpenDurable() {
  const std::string& dir = config_.durability.path;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("OpenDurable: cannot create " + dir + ": " +
                           ec.message());
  }
  AIMS_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::durable::FileBlockDevice> device,
      storage::durable::FileBlockDevice::Open(
          dir + "/pages.aims", config_.block_size_bytes, config_.disk_cost));
  file_device_ = device.get();
  device_ = std::move(device);

  // The buffer pool is mandatory on the durable path: write-back staging
  // is what keeps uncommitted pages off the page file (no-steal). A
  // caller-configured cache is switched to write-back; otherwise one is
  // created with the durability budget.
  storage::BlockCacheConfig cache_config = config_.block_cache;
  if (cache_config.capacity_bytes == 0) {
    cache_config.capacity_bytes = config_.durability.buffer_pool_bytes;
  }
  cache_config.write_back = true;
  cache_ = std::make_unique<storage::BlockCache>(device_.get(), cache_config);

  storage::durable::WalConfig wal_config;
  wal_config.sync_mode = config_.durability.sync_mode;
  wal_config.group_commit_ms = config_.durability.group_commit_ms;
  wal_config.simulated_sync_ms = config_.durability.simulated_sync_ms;
  AIMS_ASSIGN_OR_RETURN(
      storage::durable::WriteAheadLog::Opened opened,
      storage::durable::WriteAheadLog::Open(dir + "/wal.aims", wal_config));
  wal_ = std::move(opened.wal);

  // Recovery: checkpoint state first, then redo every committed WAL group
  // the snapshot predates. Groups the snapshot already covers (a crash
  // between snapshot write and log truncation) are skipped by txn id, so
  // replay is idempotent.
  AIMS_RETURN_NOT_OK(LoadSnapshot());
  for (const storage::durable::RecoveredTxn& txn : opened.committed) {
    if (txn.txn_id <= applied_txn_) continue;
    for (const auto& [id, payload] : txn.block_puts) {
      // The slot allocation itself is not logged; re-derive it. Committed
      // payloads always land on blocks that were allocated before the
      // commit, so extending to cover the id reconstructs the same state.
      while (device_->num_blocks() <= id) device_->Allocate();
      AIMS_RETURN_NOT_OK(device_->Write(id, payload));
    }
    for (const std::vector<uint8_t>& blob : txn.catalog_blobs) {
      AIMS_RETURN_NOT_OK(ApplyCatalogBlob(blob));
    }
    // Segment ops after catalog blobs: an ingest group's puts name the
    // session its own catalog record just created.
    for (const std::vector<uint8_t>& blob : txn.segment_blobs) {
      AIMS_ASSIGN_OR_RETURN(storage::tslife::SegmentOp op,
                            storage::tslife::DecodeSegmentOp(blob));
      AIMS_RETURN_NOT_OK(ApplySegmentOp(op));
    }
    applied_txn_ = txn.txn_id;
  }
  // Make the recovered state durable before dropping the records that
  // produced it, then start from a clean log.
  AIMS_RETURN_NOT_OK(file_device_->SyncPages());
  AIMS_RETURN_NOT_OK(WriteSnapshot());
  return wal_->Truncate();
}

Result<SessionId> AimsSystem::IngestRecording(
    const std::string& name, const streams::Recording& recording,
    obs::Trace* trace, std::vector<StandingRangeUpdate>* updates) {
  AIMS_RETURN_NOT_OK(init_status_);
  if (durable()) {
    AIMS_ASSIGN_OR_RETURN(
        StagedIngest staged,
        IngestRecordingStaged(name, recording, trace, updates));
    AIMS_RETURN_NOT_OK(WaitDurable(staged));
    AIMS_RETURN_NOT_OK(ApplyDurable(staged));
    return staged.id;
  }
  AIMS_ASSIGN_OR_RETURN(StoredSession session,
                        BuildSession(name, recording, trace, updates));
  sessions_.push_back(std::move(session));
  return sessions_.back().info.id;
}

Result<AimsSystem::StoredSession> AimsSystem::BuildSession(
    const std::string& name, const streams::Recording& recording,
    obs::Trace* trace, std::vector<StandingRangeUpdate>* updates) {
  if (recording.num_frames() < 2) {
    return Status::InvalidArgument("IngestRecording: too few frames");
  }
  StoredSession session;
  session.info.id = static_cast<SessionId>(sessions_.size());
  session.info.name = name;
  session.info.num_channels = recording.num_channels();
  session.info.num_frames = recording.num_frames();
  session.info.sample_rate_hz = recording.sample_rate_hz;

  size_t padded = 1;
  while (padded < recording.num_frames()) padded <<= 1;

  const size_t block_items = config_.block_size_bytes / sizeof(double);
  if (block_items == 0) {
    return Status::InvalidArgument("IngestRecording: block size too small");
  }

  // Raw-sample lifecycle: segment timestamps on the microsecond grid
  // (frame timestamps are seconds; ms would alias above 1 kHz).
  std::vector<int64_t> t_us;
  if (config_.tslife.enabled) {
    t_us.reserve(recording.num_frames());
    for (const streams::Frame& frame : recording.frames) {
      t_us.push_back(
          static_cast<int64_t>(std::llround(frame.timestamp * 1e6)));
    }
  }

  for (size_t c = 0; c < recording.num_channels(); ++c) {
    std::vector<double> channel = recording.Channel(c);

    // Seal the channel's *raw* samples (pre-centering, pre-padding) into
    // Gorilla segments beside the wavelet blocks — tier 0 of the storage
    // lifecycle, bit-exact against the ingested values.
    if (config_.tslife.enabled) {
      std::vector<storage::tslife::Segment> segments =
          storage::tslife::BuildSegments(c, t_us, channel,
                                         recording.sample_rate_hz,
                                         config_.tslife.segment_max_samples);
      for (storage::tslife::Segment& seg : segments) {
        session.segments.Put(std::move(seg));
      }
    }

    StoredChannel stored;
    stored.padded_len = padded;
    // Mean-center so zero padding does not create an artificial step; the
    // mean goes to the catalog and is added back at query time.
    double mean = 0.0;
    for (double v : channel) mean += v;
    mean /= static_cast<double>(channel.size());
    stored.mean = mean;
    std::vector<double> padded_channel(padded, 0.0);
    for (size_t i = 0; i < channel.size(); ++i) {
      padded_channel[i] = channel[i] - mean;
    }

    // Multi-basis transformation report: which DWPT basis the cost
    // functional would pick for this channel (Sec. 3.1.1).
    size_t transform_span = 0;
    if (trace != nullptr) transform_span = trace->BeginSpan("transform");
    AIMS_ASSIGN_OR_RETURN(
        signal::WaveletPacketTree tree,
        signal::WaveletPacketTree::Build(filter_, padded_channel,
                                         /*max_depth=*/6));
    session.info.best_basis_nodes.push_back(
        tree.BestBasis(config_.basis_cost).size());

    // Storage: plain DWT coefficients (lazy-transform compatible) placed by
    // error-tree tiling.
    AIMS_ASSIGN_OR_RETURN(std::vector<double> coeffs,
                          signal::ForwardDwt(filter_, padded_channel));
    if (trace != nullptr) trace->EndSpan(transform_span);

    // Continuous aggregates: evaluate the standing queries against the
    // coefficients while they are still in memory — same math (and the
    // same floating-point accumulation order) as QueryRange against block
    // storage, but zero block I/O.
    if (updates != nullptr) {
      for (const StandingRangeQuery& q : standing_queries_) {
        if (q.channel != c || q.first_frame > q.last_frame ||
            q.last_frame >= recording.num_frames()) {
          continue;
        }
        AIMS_ASSIGN_OR_RETURN(
            double centered,
            propolyne::IncrementalRangeSum(filter_, padded, q.first_frame,
                                           q.last_frame, coeffs));
        StandingRangeUpdate update;
        update.handle = q.handle;
        update.session = session.info.id;
        update.count = q.last_frame - q.first_frame + 1;
        update.sum = centered + mean * static_cast<double>(update.count);
        update.mean = update.sum / static_cast<double>(update.count);
        updates->push_back(update);
      }
    }

    size_t write_span = 0;
    if (trace != nullptr) write_span = trace->BeginSpan("block_write");
    stored.store = std::make_unique<storage::WaveletStore>(
        device_.get(),
        std::make_unique<storage::SubtreeTilingAllocator>(padded, block_items),
        padded, cache_.get());
    for (double v : coeffs) stored.energy += v * v;
    AIMS_RETURN_NOT_OK(stored.store->Put(coeffs));
    if (trace != nullptr) trace->EndSpan(write_span);
    session.channels.push_back(std::move(stored));
  }
  return session;
}

Result<AimsSystem::StagedIngest> AimsSystem::IngestRecordingStaged(
    const std::string& name, const streams::Recording& recording,
    obs::Trace* trace, std::vector<StandingRangeUpdate>* updates) {
  AIMS_RETURN_NOT_OK(init_status_);
  if (!durable()) {
    return Status::FailedPrecondition(
        "IngestRecordingStaged: requires the durable backend");
  }
  // Phase 1 (exclusive): transform + stage. The buffer pool is in
  // write-back mode, so every Put below parks its blocks dirty in the
  // cache — no page-file I/O happens before the commit record is durable.
  AIMS_ASSIGN_OR_RETURN(StoredSession session,
                        BuildSession(name, recording, trace, updates));
  StagedIngest staged;
  staged.id = session.info.id;
  for (const StoredChannel& channel : session.channels) {
    const std::vector<storage::BlockId>& ids = channel.store->device_blocks();
    staged.blocks.insert(staged.blocks.end(), ids.begin(), ids.end());
  }
  pending_commits_.fetch_add(1, std::memory_order_relaxed);
  // Failed staging rolls the pool back: the dirty entries are dropped and
  // nothing was logged as committed, so the ingest simply never happened.
  auto fail = [&](Status status) {
    cache_->DropDirty(staged.blocks);
    pending_commits_.fetch_sub(1, std::memory_order_relaxed);
    return status;
  };
  Result<uint64_t> txn = wal_->BeginTxn();
  if (!txn.ok()) return fail(txn.status());
  staged.txn_id = *txn;
  for (storage::BlockId id : staged.blocks) {
    // The staged payload is pinned dirty in the pool, so this is a cache
    // hit, never device I/O.
    Result<std::vector<uint8_t>> payload = cache_->Read(id);
    if (!payload.ok()) return fail(payload.status());
    Status status = wal_->AppendBlockPut(staged.txn_id, id, *payload);
    if (!status.ok()) return fail(status);
  }
  Status status = wal_->AppendCatalog(staged.txn_id, SerializeSession(session));
  if (!status.ok()) return fail(status);
  // The session's sealed raw segments ride the same record group: a crash
  // after the commit record recovers them together with the catalog entry
  // (no acked ingest loses its raw samples), a crash before it loses the
  // whole ingest atomically.
  for (const auto& [key, seg] : session.segments.segments()) {
    (void)key;
    Status seg_status = wal_->AppendSegment(
        staged.txn_id,
        storage::tslife::EncodeSegmentOp(storage::tslife::SegmentOp::Kind::kPut,
                                         session.info.id, seg));
    if (!seg_status.ok()) return fail(seg_status);
  }
  Result<uint64_t> ticket = wal_->AppendCommit(staged.txn_id);
  if (!ticket.ok()) return fail(ticket.status());
  staged.ticket = *ticket;
  if (staged.txn_id > applied_txn_) applied_txn_ = staged.txn_id;
  sessions_.push_back(std::move(session));
  return staged;
}

Status AimsSystem::WaitDurable(const StagedIngest& staged) {
  if (!durable()) {
    return Status::FailedPrecondition("WaitDurable: not a durable system");
  }
  return wal_->WaitDurable(staged.ticket);
}

Status AimsSystem::ApplyDurable(const StagedIngest& staged) {
  if (!durable()) {
    return Status::FailedPrecondition("ApplyDurable: not a durable system");
  }
  // Commit-time write-back: the transaction flushes exactly its own
  // blocks. An error is reported but loses nothing — the group is in the
  // WAL, and recovery replays it on the next open.
  Status flush = cache_->FlushBlocks(staged.blocks);
  pending_commits_.fetch_sub(1, std::memory_order_relaxed);
  AIMS_RETURN_NOT_OK(flush);
  if (config_.durability.checkpoint_wal_bytes > 0 &&
      wal_->lag_bytes() > config_.durability.checkpoint_wal_bytes &&
      pending_commits_.load(std::memory_order_relaxed) == 0) {
    return Checkpoint();
  }
  return Status::OK();
}

Status AimsSystem::Checkpoint() {
  AIMS_RETURN_NOT_OK(init_status_);
  if (!durable()) {
    return Status::FailedPrecondition("Checkpoint: not a durable system");
  }
  if (pending_commits_.load(std::memory_order_relaxed) != 0) {
    return Status::FailedPrecondition(
        "Checkpoint: an ingest is between its staged phases");
  }
  // Order is the recovery contract: pages on stable storage, then the
  // catalog snapshot naming them, and only then may the log forget the
  // records that produced both.
  AIMS_RETURN_NOT_OK(file_device_->SyncPages());
  AIMS_RETURN_NOT_OK(WriteSnapshot());
  return wal_->Truncate();
}

obs::WalStats AimsSystem::WalStats() const {
  return wal_ != nullptr ? wal_->Stats() : obs::WalStats{};
}

std::vector<uint8_t> AimsSystem::SerializeSession(
    const StoredSession& session) const {
  std::vector<uint8_t> out;
  PutU64(&out, session.info.name.size());
  out.insert(out.end(), session.info.name.begin(), session.info.name.end());
  PutU64(&out, session.info.num_frames);
  PutF64(&out, session.info.sample_rate_hz);
  PutU64(&out, session.channels.size());
  for (size_t c = 0; c < session.channels.size(); ++c) {
    const StoredChannel& channel = session.channels[c];
    PutU64(&out, c < session.info.best_basis_nodes.size()
                     ? session.info.best_basis_nodes[c]
                     : 0);
    PutF64(&out, channel.mean);
    PutU64(&out, channel.padded_len);
    PutF64(&out, channel.energy);
    const std::vector<storage::BlockId>& ids = channel.store->device_blocks();
    PutU64(&out, ids.size());
    for (storage::BlockId id : ids) PutU32(&out, id);
  }
  return out;
}

Status AimsSystem::ApplyCatalogBlob(const std::vector<uint8_t>& blob) {
  ByteReader reader{blob.data(), blob.size()};
  StoredSession session;
  session.info.id = static_cast<SessionId>(sessions_.size());
  const uint64_t name_len = reader.U64();
  if (!reader.ok || name_len > kMaxCatalogField ||
      blob.size() - reader.pos < name_len) {
    return Status::IoError("ApplyCatalogBlob: malformed catalog entry");
  }
  session.info.name.assign(reinterpret_cast<const char*>(blob.data()) +
                               reader.pos,
                           name_len);
  reader.pos += name_len;
  session.info.num_frames = reader.U64();
  session.info.sample_rate_hz = reader.F64();
  const uint64_t num_channels = reader.U64();
  if (!reader.ok || num_channels > kMaxCatalogField) {
    return Status::IoError("ApplyCatalogBlob: malformed catalog entry");
  }
  session.info.num_channels = num_channels;
  const size_t block_items = config_.block_size_bytes / sizeof(double);
  for (uint64_t c = 0; c < num_channels; ++c) {
    session.info.best_basis_nodes.push_back(reader.U64());
    StoredChannel channel;
    channel.mean = reader.F64();
    channel.padded_len = reader.U64();
    channel.energy = reader.F64();
    const uint64_t num_blocks = reader.U64();
    if (!reader.ok || num_blocks > kMaxCatalogField ||
        channel.padded_len > kMaxCatalogField ||
        !signal::IsPowerOfTwo(channel.padded_len)) {
      return Status::IoError("ApplyCatalogBlob: malformed channel entry");
    }
    std::vector<storage::BlockId> ids(num_blocks);
    for (uint64_t b = 0; b < num_blocks; ++b) ids[b] = reader.U32();
    if (!reader.ok) {
      return Status::IoError("ApplyCatalogBlob: malformed channel entry");
    }
    for (storage::BlockId id : ids) {
      if (id >= device_->num_blocks()) {
        return Status::IoError(
            "ApplyCatalogBlob: catalog references unknown device block " +
            std::to_string(id));
      }
    }
    auto allocator = std::make_unique<storage::SubtreeTilingAllocator>(
        channel.padded_len, block_items);
    if (allocator->num_blocks() != ids.size()) {
      return Status::IoError(
          "ApplyCatalogBlob: block list does not match the allocation");
    }
    channel.store = std::make_unique<storage::WaveletStore>(
        device_.get(), std::move(allocator), channel.padded_len, cache_.get(),
        std::move(ids));
    session.channels.push_back(std::move(channel));
  }
  sessions_.push_back(std::move(session));
  return Status::OK();
}

Status AimsSystem::WriteSnapshot() const {
  std::vector<uint8_t> out;
  PutU32(&out, kSnapshotMagic);
  PutU32(&out, kSnapshotVersion);
  PutU64(&out, applied_txn_);
  PutU64(&out, sessions_.size());
  for (const StoredSession& session : sessions_) {
    std::vector<uint8_t> blob = SerializeSession(session);
    PutU64(&out, blob.size());
    out.insert(out.end(), blob.begin(), blob.end());
  }
  // v2 segment section: every sealed segment as a kPut op, so recovery
  // rebuilds the stores by replaying them through ApplySegmentOp.
  uint64_t num_segments = 0;
  for (const StoredSession& session : sessions_) {
    num_segments += session.segments.size();
  }
  PutU64(&out, num_segments);
  for (const StoredSession& session : sessions_) {
    for (const auto& [key, seg] : session.segments.segments()) {
      (void)key;
      std::vector<uint8_t> blob = storage::tslife::EncodeSegmentOp(
          storage::tslife::SegmentOp::Kind::kPut, session.info.id, seg);
      PutU64(&out, blob.size());
      out.insert(out.end(), blob.begin(), blob.end());
    }
  }
  PutU32(&out, Crc32(out.data(), out.size()));
  return WriteFileDurably(config_.durability.path, "catalog.snap", out);
}

Status AimsSystem::LoadSnapshot() {
  const std::string path = config_.durability.path + "/catalog.snap";
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::OK();  // first open: nothing checkpointed yet
  std::vector<uint8_t> buf((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  constexpr size_t kHeader = 4 + 4 + 8 + 8;
  if (buf.size() < kHeader + sizeof(uint32_t)) {
    return Status::IoError("LoadSnapshot: truncated snapshot " + path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buf.data() + buf.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (Crc32(buf.data(), buf.size() - sizeof(uint32_t)) != stored_crc) {
    return Status::IoError("LoadSnapshot: snapshot checksum mismatch in " +
                           path);
  }
  ByteReader reader{buf.data(), buf.size() - sizeof(uint32_t)};
  const uint32_t magic = reader.U32();
  const uint32_t version = reader.U32();
  if (magic != kSnapshotMagic || version < 1 || version > kSnapshotVersion) {
    return Status::IoError("LoadSnapshot: not a snapshot file: " + path);
  }
  applied_txn_ = reader.U64();
  const uint64_t num_sessions = reader.U64();
  if (!reader.ok || num_sessions > kMaxCatalogField) {
    return Status::IoError("LoadSnapshot: malformed snapshot " + path);
  }
  for (uint64_t s = 0; s < num_sessions; ++s) {
    const uint64_t blob_len = reader.U64();
    if (!reader.ok || blob_len > kMaxCatalogField ||
        reader.size - reader.pos < blob_len) {
      return Status::IoError("LoadSnapshot: malformed snapshot " + path);
    }
    std::vector<uint8_t> blob(buf.begin() + reader.pos,
                              buf.begin() + reader.pos + blob_len);
    reader.pos += blob_len;
    AIMS_RETURN_NOT_OK(ApplyCatalogBlob(blob));
  }
  if (version >= 2) {
    const uint64_t num_segments = reader.U64();
    if (!reader.ok || num_segments > kMaxCatalogField) {
      return Status::IoError("LoadSnapshot: malformed snapshot " + path);
    }
    for (uint64_t i = 0; i < num_segments; ++i) {
      const uint64_t blob_len = reader.U64();
      if (!reader.ok || blob_len > kMaxCatalogField ||
          reader.size - reader.pos < blob_len) {
        return Status::IoError("LoadSnapshot: malformed snapshot " + path);
      }
      AIMS_ASSIGN_OR_RETURN(
          storage::tslife::SegmentOp op,
          storage::tslife::DecodeSegmentOp(buf.data() + reader.pos,
                                           blob_len));
      reader.pos += blob_len;
      AIMS_RETURN_NOT_OK(ApplySegmentOp(op));
    }
  }
  return Status::OK();
}

Result<SessionInfo> AimsSystem::GetSession(SessionId id) const {
  if (id >= sessions_.size()) {
    return Status::NotFound("GetSession: unknown session id");
  }
  return sessions_[id].info;
}

std::vector<SessionInfo> AimsSystem::ListSessions() const {
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const StoredSession& s : sessions_) out.push_back(s.info);
  return out;
}

Result<std::vector<storage::tslife::SegmentMeta>> AimsSystem::ListSegments(
    SessionId id) const {
  if (id >= sessions_.size()) {
    return Status::NotFound("ListSegments: unknown session id");
  }
  std::vector<storage::tslife::SegmentMeta> out;
  out.reserve(sessions_[id].segments.size());
  for (const auto& [key, seg] : sessions_[id].segments.segments()) {
    (void)key;
    out.push_back(seg.meta);
  }
  return out;
}

Result<std::vector<gorilla::Sample>> AimsSystem::ReadRawSamples(
    SessionId id, size_t channel) const {
  if (id >= sessions_.size()) {
    return Status::NotFound("ReadRawSamples: unknown session id");
  }
  const StoredSession& session = sessions_[id];
  if (channel >= session.info.num_channels) {
    return Status::OutOfRange("ReadRawSamples: channel out of range");
  }
  return session.segments.ReadChannel(channel);
}

size_t AimsSystem::SegmentBytes() const {
  size_t total = 0;
  for (const StoredSession& s : sessions_) total += s.segments.total_bytes();
  return total;
}

Result<std::vector<storage::tslife::Segment>> AimsSystem::ExportSegments(
    SessionId id) const {
  if (id >= sessions_.size()) {
    return Status::NotFound("ExportSegments: unknown session id");
  }
  std::vector<storage::tslife::Segment> out;
  out.reserve(sessions_[id].segments.size());
  for (const auto& [key, seg] : sessions_[id].segments.segments()) {
    (void)key;
    out.push_back(seg);
  }
  return out;
}

Status AimsSystem::ReplaceSegments(
    SessionId id, std::vector<storage::tslife::Segment> segments) {
  AIMS_RETURN_NOT_OK(init_status_);
  if (id >= sessions_.size()) {
    return Status::NotFound("ReplaceSegments: unknown session id");
  }
  using Kind = storage::tslife::SegmentOp::Kind;
  std::vector<storage::tslife::SegmentOp> ops;
  ops.reserve(sessions_[id].segments.size() + segments.size());
  // Drops first, then puts: a re-put of a surviving (channel, seq) key
  // lands after its drop in replay order, so the new payload wins.
  for (const auto& [key, seg] : sessions_[id].segments.segments()) {
    (void)seg;
    storage::tslife::SegmentOp op;
    op.kind = Kind::kDrop;
    op.session = id;
    op.segment.meta.channel = key.first;
    op.segment.meta.seq = key.second;
    ops.push_back(std::move(op));
  }
  for (storage::tslife::Segment& seg : segments) {
    storage::tslife::SegmentOp op;
    op.kind = Kind::kPut;
    op.session = id;
    op.segment = std::move(seg);
    ops.push_back(std::move(op));
  }
  return CommitSegmentOps(ops);
}

Result<storage::tslife::SweepStats> AimsSystem::SweepRetention(
    const storage::tslife::RetentionPolicy& policy, int64_t now_us,
    const std::vector<SessionId>* sessions) {
  AIMS_RETURN_NOT_OK(init_status_);
  using Kind = storage::tslife::SegmentOp::Kind;
  using SegmentKey = std::pair<size_t, uint64_t>;
  storage::tslife::SweepStats stats;
  std::vector<storage::tslife::SegmentOp> ops;
  std::vector<SessionId> all;
  if (sessions == nullptr) {
    all.resize(sessions_.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    sessions = &all;
  }
  for (const SessionId sid : *sessions) {
    if (sid >= sessions_.size()) continue;
    const storage::tslife::SegmentStore& store = sessions_[sid].segments;
    stats.bytes_before += store.total_bytes();
    uint64_t projected = store.total_bytes();
    // Sweep decisions are staged here and committed as one WAL group at
    // the end; a segment is either dropped, replaced by a downsampled
    // payload, or untouched.
    std::set<SegmentKey> drops;
    std::map<SegmentKey, storage::tslife::Segment> replacements;

    // Age tiers: ages are measured against the segment's own data time,
    // so a sweep at a given now_us is deterministic.
    for (const auto& [key, seg] : store.segments()) {
      ++stats.segments_scanned;
      const double age_s = static_cast<double>(now_us - seg.meta.t1_us) / 1e6;
      if (policy.drop_age_seconds > 0.0 && age_s >= policy.drop_age_seconds) {
        drops.insert(key);
        projected -= seg.bytes.size();
        continue;
      }
      if (policy.downsample_age_seconds > 0.0 &&
          age_s >= policy.downsample_age_seconds && seg.meta.tier == 0) {
        Result<storage::tslife::Segment> down =
            storage::tslife::DownsampleSegment(seg, policy);
        if (down.ok() && down->bytes.size() < seg.bytes.size()) {
          projected -= seg.bytes.size() - down->bytes.size();
          if (down->meta.nmse > stats.max_nmse) {
            stats.max_nmse = down->meta.nmse;
          }
          replacements[key] = std::move(*down);
        } else {
          ++stats.segments_skipped;
        }
      }
    }

    // Byte budget: oldest data first, downsampling before dropping.
    if (policy.max_bytes > 0 && projected > policy.max_bytes) {
      std::vector<std::pair<SegmentKey, const storage::tslife::Segment*>>
          order;
      order.reserve(store.size());
      for (const auto& [key, seg] : store.segments()) {
        order.emplace_back(key, &seg);
      }
      std::sort(order.begin(), order.end(),
                [](const auto& a, const auto& b) {
                  if (a.second->meta.t1_us != b.second->meta.t1_us) {
                    return a.second->meta.t1_us < b.second->meta.t1_us;
                  }
                  return a.first < b.first;
                });
      for (const auto& [key, seg] : order) {
        if (projected <= policy.max_bytes) break;
        if (drops.count(key) || replacements.count(key) ||
            seg->meta.tier != 0) {
          continue;
        }
        Result<storage::tslife::Segment> down =
            storage::tslife::DownsampleSegment(*seg, policy);
        if (down.ok() && down->bytes.size() < seg->bytes.size()) {
          projected -= seg->bytes.size() - down->bytes.size();
          if (down->meta.nmse > stats.max_nmse) {
            stats.max_nmse = down->meta.nmse;
          }
          replacements[key] = std::move(*down);
        } else {
          ++stats.segments_skipped;
        }
      }
      for (const auto& [key, seg] : order) {
        if (projected <= policy.max_bytes) break;
        if (drops.count(key)) continue;
        auto rit = replacements.find(key);
        const uint64_t current = rit != replacements.end()
                                     ? rit->second.bytes.size()
                                     : seg->bytes.size();
        if (rit != replacements.end()) replacements.erase(rit);
        drops.insert(key);
        projected -= current;
      }
    }

    for (const SegmentKey& key : drops) {
      storage::tslife::SegmentOp op;
      op.kind = Kind::kDrop;
      op.session = sid;
      op.segment.meta.channel = key.first;
      op.segment.meta.seq = key.second;
      ops.push_back(std::move(op));
      ++stats.segments_dropped;
    }
    for (auto& [key, seg] : replacements) {
      (void)key;
      storage::tslife::SegmentOp op;
      op.kind = Kind::kPut;
      op.session = sid;
      op.segment = std::move(seg);
      ops.push_back(std::move(op));
      ++stats.segments_downsampled;
    }
    stats.bytes_after += projected;
  }
  AIMS_RETURN_NOT_OK(CommitSegmentOps(ops));
  return stats;
}

void AimsSystem::SetStandingQueries(std::vector<StandingRangeQuery> queries) {
  standing_queries_ = std::move(queries);
}

Status AimsSystem::ApplySegmentOp(const storage::tslife::SegmentOp& op) {
  if (op.session >= sessions_.size()) {
    return Status::IoError("ApplySegmentOp: op references unknown session " +
                           std::to_string(op.session));
  }
  storage::tslife::SegmentStore& store = sessions_[op.session].segments;
  if (op.kind == storage::tslife::SegmentOp::Kind::kPut) {
    store.Put(op.segment);
  } else {
    store.Drop(op.segment.meta.channel, op.segment.meta.seq);
  }
  return Status::OK();
}

Status AimsSystem::CommitSegmentOps(
    const std::vector<storage::tslife::SegmentOp>& ops) {
  if (ops.empty()) return Status::OK();
  if (durable()) {
    // One WAL record group for the whole batch: recovery sees all of a
    // sweep / migration import or none of it.
    AIMS_ASSIGN_OR_RETURN(uint64_t txn_id, wal_->BeginTxn());
    for (const storage::tslife::SegmentOp& op : ops) {
      AIMS_RETURN_NOT_OK(
          wal_->AppendSegment(txn_id, storage::tslife::EncodeSegmentOp(op)));
    }
    AIMS_ASSIGN_OR_RETURN(uint64_t ticket, wal_->AppendCommit(txn_id));
    AIMS_RETURN_NOT_OK(wal_->WaitDurable(ticket));
    if (txn_id > applied_txn_) applied_txn_ = txn_id;
  }
  for (const storage::tslife::SegmentOp& op : ops) {
    AIMS_RETURN_NOT_OK(ApplySegmentOp(op));
  }
  return Status::OK();
}

Result<std::vector<double>> AimsSystem::ReadChannel(SessionId id,
                                                    size_t channel) const {
  if (id >= sessions_.size()) {
    return Status::NotFound("ReadChannel: unknown session id");
  }
  const StoredSession& session = sessions_[id];
  if (channel >= session.channels.size()) {
    return Status::OutOfRange("ReadChannel: channel out of range");
  }
  const StoredChannel& stored = session.channels[channel];
  std::vector<size_t> all(stored.padded_len);
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  AIMS_ASSIGN_OR_RETURN(auto fetched, stored.store->Fetch(all));
  std::vector<double> coeffs(stored.padded_len, 0.0);
  for (const auto& [idx, value] : fetched) coeffs[idx] = value;
  AIMS_ASSIGN_OR_RETURN(std::vector<double> padded_channel,
                        signal::InverseDwt(filter_, coeffs));
  std::vector<double> out(session.info.num_frames);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = padded_channel[i] + stored.mean;
  }
  return out;
}

namespace {

/// One block of a query's refinement schedule with the coefficients it
/// carries — the unit both the planner and the evaluator work in.
struct ScheduledBlock {
  size_t block = 0;
  std::vector<std::pair<size_t, double>> coefficients;
  double query_energy = 0.0;
};

/// \brief Groups the query coefficients by the block holding their stored
/// partner and orders the blocks by decreasing query energy (the
/// "importance function" of Sec. 3.2.1), ties broken by block index so
/// the schedule — and therefore EXPLAIN vs. ANALYZE reconciliation — is
/// fully deterministic. Shared by PlanRangeQuery (no I/O) and
/// QueryRangeProgressive (fetches in exactly this order).
std::vector<ScheduledBlock> BuildBlockSchedule(
    const storage::WaveletStore& store,
    const signal::SparseCoefficients& query) {
  std::map<size_t, ScheduledBlock> per_block;
  for (const auto& [idx, q] : query.entries) {
    std::vector<size_t> blocks = store.BlocksFor({idx});
    AIMS_CHECK(blocks.size() == 1);
    ScheduledBlock& work = per_block[blocks[0]];
    work.block = blocks[0];
    work.coefficients.emplace_back(idx, q);
    work.query_energy += q * q;
  }
  std::vector<ScheduledBlock> order;
  order.reserve(per_block.size());
  for (auto& [block, work] : per_block) order.push_back(std::move(work));
  std::sort(order.begin(), order.end(),
            [](const ScheduledBlock& a, const ScheduledBlock& b) {
              if (a.query_energy != b.query_energy) {
                return a.query_energy > b.query_energy;
              }
              return a.block < b.block;
            });
  return order;
}

/// Wavelet level of one DWT coefficient index: 0 is the approximation
/// root, level k >= 1 spans indices [2^(k-1), 2^k) — the error-tree depth,
/// finer as k grows.
size_t WaveletLevelOf(size_t index) {
  size_t level = 0;
  while (index >> level) ++level;
  return level;
}

}  // namespace

std::string QueryPlan::ToJson() const {
  std::string out = "{\"session\":" + std::to_string(session) +
                    ",\"channel\":" + std::to_string(channel) +
                    ",\"first_frame\":" + std::to_string(first_frame) +
                    ",\"last_frame\":" + std::to_string(last_frame) +
                    ",\"padded_len\":" + std::to_string(padded_len) +
                    ",\"num_query_coefficients\":" +
                    std::to_string(num_query_coefficients) +
                    ",\"wavelet_levels\":[";
  for (size_t i = 0; i < wavelet_levels.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(wavelet_levels[i]);
  }
  out += "],\"predicted_blocks\":" + std::to_string(predicted_blocks) +
         ",\"predicted_cached_blocks\":" +
         std::to_string(predicted_cached_blocks) +
         ",\"predicted_cold_blocks\":" + std::to_string(predicted_cold_blocks) +
         ",\"block_size_bytes\":" + std::to_string(block_size_bytes) +
         ",\"predicted_io_ms\":" + obs::TrimmedDouble(predicted_io_ms) +
         ",\"aggregate_hit\":" + (aggregate_hit ? "true" : "false") +
         ",\"schedule\":[";
  for (size_t i = 0; i < schedule.size(); ++i) {
    const QueryPlanBlockFetch& fetch = schedule[i];
    if (i > 0) out += ',';
    out += "{\"block\":" + std::to_string(fetch.logical_block) +
           ",\"coefficients\":" + std::to_string(fetch.num_coefficients) +
           ",\"query_energy\":" + obs::TrimmedDouble(fetch.query_energy) +
           ",\"cached\":" + (fetch.cached ? "true" : "false") + '}';
  }
  out += "]}";
  return out;
}

Result<QueryPlan> AimsSystem::PlanRangeQuery(SessionId id, size_t channel,
                                             size_t first_frame,
                                             size_t last_frame) const {
  if (id >= sessions_.size()) {
    return Status::NotFound("PlanRangeQuery: unknown session id");
  }
  const StoredSession& session = sessions_[id];
  if (channel >= session.channels.size()) {
    return Status::OutOfRange("PlanRangeQuery: channel out of range");
  }
  if (first_frame > last_frame || last_frame >= session.info.num_frames) {
    return Status::OutOfRange("PlanRangeQuery: bad frame range");
  }
  const StoredChannel& stored = session.channels[channel];
  AIMS_ASSIGN_OR_RETURN(
      signal::SparseCoefficients query,
      signal::LazyWaveletTransform(filter_, stored.padded_len, first_frame,
                                   last_frame,
                                   signal::Polynomial::Constant(1.0)));
  std::vector<ScheduledBlock> order = BuildBlockSchedule(*stored.store, query);

  QueryPlan plan;
  plan.session = id;
  plan.channel = channel;
  plan.first_frame = first_frame;
  plan.last_frame = last_frame;
  plan.padded_len = stored.padded_len;
  plan.num_query_coefficients = query.entries.size();
  std::set<size_t> levels;
  for (const auto& [idx, q] : query.entries) {
    (void)q;
    levels.insert(WaveletLevelOf(idx));
  }
  plan.wavelet_levels.assign(levels.begin(), levels.end());
  plan.predicted_blocks = order.size();
  plan.block_size_bytes = config_.block_size_bytes;
  plan.schedule.reserve(order.size());
  for (const ScheduledBlock& work : order) {
    // Residency probe only — Contains never perturbs the cache's LRU
    // order, so EXPLAIN stays free of side effects.
    const bool cached = stored.store->IsBlockCached(work.block);
    if (cached) ++plan.predicted_cached_blocks;
    plan.schedule.push_back(QueryPlanBlockFetch{
        work.block, work.coefficients.size(), work.query_energy, cached});
  }
  plan.predicted_cold_blocks =
      plan.predicted_blocks - plan.predicted_cached_blocks;
  plan.predicted_io_ms =
      static_cast<double>(plan.predicted_cold_blocks) *
      config_.disk_cost.AccessCostMs(config_.block_size_bytes);
  return plan;
}

Result<RangeStatistics> AimsSystem::QueryRange(SessionId id, size_t channel,
                                               size_t first_frame,
                                               size_t last_frame) const {
  if (id >= sessions_.size()) {
    return Status::NotFound("QueryRange: unknown session id");
  }
  const StoredSession& session = sessions_[id];
  if (channel >= session.channels.size()) {
    return Status::OutOfRange("QueryRange: channel out of range");
  }
  if (first_frame > last_frame || last_frame >= session.info.num_frames) {
    return Status::OutOfRange("QueryRange: bad frame range");
  }
  const StoredChannel& stored = session.channels[channel];

  // sum_{i in [a,b]} x[i] = <1_[a,b], x> = <Q, X> by Parseval; the lazy
  // transform selects the O(lg n) nonzero Q entries and the store reads
  // only the blocks holding them.
  AIMS_ASSIGN_OR_RETURN(
      signal::SparseCoefficients query,
      signal::LazyWaveletTransform(filter_, stored.padded_len, first_frame,
                                   last_frame,
                                   signal::Polynomial::Constant(1.0)));
  std::vector<size_t> needed;
  needed.reserve(query.entries.size());
  for (const auto& [idx, value] : query.entries) {
    (void)value;
    needed.push_back(idx);
  }
  size_t reads_before = device_->reads();
  AIMS_ASSIGN_OR_RETURN(auto fetched, stored.store->Fetch(needed));
  RangeStatistics stats;
  stats.blocks_read = device_->reads() - reads_before;
  stats.count = last_frame - first_frame + 1;
  double centered_sum = 0.0;
  for (const auto& [idx, qv] : query.entries) {
    auto it = fetched.find(idx);
    if (it != fetched.end()) centered_sum += qv * it->second;
  }
  stats.sum = centered_sum + stored.mean * static_cast<double>(stats.count);
  stats.mean = stats.sum / static_cast<double>(stats.count);
  return stats;
}

Result<ProgressiveRangeResult> AimsSystem::QueryRangeProgressive(
    SessionId id, size_t channel, size_t first_frame, size_t last_frame,
    const ProgressiveObserver& observer) const {
  AIMS_PROFILE_SCOPE("core.query_progressive");
  if (id >= sessions_.size()) {
    return Status::NotFound("QueryRangeProgressive: unknown session id");
  }
  const StoredSession& session = sessions_[id];
  if (channel >= session.channels.size()) {
    return Status::OutOfRange("QueryRangeProgressive: channel out of range");
  }
  if (first_frame > last_frame || last_frame >= session.info.num_frames) {
    return Status::OutOfRange("QueryRangeProgressive: bad frame range");
  }
  const StoredChannel& stored = session.channels[channel];
  AIMS_ASSIGN_OR_RETURN(
      signal::SparseCoefficients query,
      signal::LazyWaveletTransform(filter_, stored.padded_len, first_frame,
                                   last_frame,
                                   signal::Polynomial::Constant(1.0)));
  std::vector<ScheduledBlock> order = BuildBlockSchedule(*stored.store, query);
  double remaining_query_energy = 0.0;
  for (const ScheduledBlock& work : order) {
    remaining_query_energy += work.query_energy;
  }

  const double count = static_cast<double>(last_frame - first_frame + 1);
  double remaining_data_energy = stored.energy;
  double centered_sum = 0.0;
  ProgressiveRangeResult result;
  result.total_blocks_needed = order.size();
  size_t blocks_read = 0;
  size_t cache_hits = 0;
  for (const ScheduledBlock& work : order) {
    bool hit = false;
    AIMS_ASSIGN_OR_RETURN(auto contents,
                          stored.store->FetchBlock(work.block, &hit));
    ++blocks_read;
    if (hit) ++cache_hits;
    for (const auto& [idx, value] : contents) {
      remaining_data_energy -= value * value;
      for (const auto& [qidx, q] : work.coefficients) {
        if (qidx == idx) centered_sum += q * value;
      }
    }
    remaining_query_energy -= work.query_energy;
    ProgressiveRangeStep step;
    step.blocks_read = blocks_read;
    step.cache_hits = cache_hits;
    step.sum_estimate = centered_sum + stored.mean * count;
    step.mean_estimate = step.sum_estimate / count;
    step.sum_error_bound =
        std::sqrt(std::max(remaining_query_energy, 0.0)) *
        std::sqrt(std::max(remaining_data_energy, 0.0));
    result.steps.push_back(step);
    if (observer && observer(step) == StepControl::kStop &&
        blocks_read < order.size()) {
      result.complete = false;
      break;
    }
  }
  if (result.steps.empty()) {
    // A degenerate query touching no blocks is already exact: the whole
    // answer is carried by the channel mean.
    ProgressiveRangeStep step;
    step.sum_estimate = stored.mean * count;
    step.mean_estimate = stored.mean;
    result.steps.push_back(step);
  } else if (result.complete) {
    result.steps.back().sum_error_bound = 0.0;
  }
  return result;
}

Result<propolyne::DataCube> AimsSystem::BuildChannelCube(
    const std::vector<SessionId>& ids, const CubeSpec& spec) const {
  if (ids.empty()) {
    return Status::InvalidArgument("BuildChannelCube: no sessions given");
  }
  if (!signal::IsPowerOfTwo(spec.time_buckets) ||
      !signal::IsPowerOfTwo(spec.value_buckets)) {
    return Status::InvalidArgument(
        "BuildChannelCube: bucket counts must be powers of two");
  }
  // Read every channel once (through the wavelet block store).
  std::vector<std::vector<double>> series(ids.size());
  double lo = spec.value_lo, hi = spec.value_hi;
  const bool auto_range = spec.value_lo == spec.value_hi;
  bool range_initialized = false;
  for (size_t s = 0; s < ids.size(); ++s) {
    AIMS_ASSIGN_OR_RETURN(series[s], ReadChannel(ids[s], spec.channel));
    if (auto_range) {
      for (double v : series[s]) {
        if (!range_initialized) {
          lo = hi = v;
          range_initialized = true;
        } else {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
      }
    }
  }
  if (hi <= lo) hi = lo + 1.0;

  size_t session_extent = 1;
  while (session_extent < ids.size()) session_extent <<= 1;
  propolyne::CubeSchema schema{{"session", "time", "value"},
                               {session_extent, spec.time_buckets,
                                spec.value_buckets}};
  // Cheapest sufficient bases per dimension: session and time are only ever
  // COUNT-restricted, value carries polynomial measures (Sec. 3.3.1).
  std::vector<signal::WaveletFilter> filters = {
      signal::WaveletFilter::Make(signal::WaveletKind::kHaar),
      signal::WaveletFilter::Make(signal::WaveletKind::kDb2),
      signal::WaveletFilter::Make(signal::WaveletKind::kDb3)};
  AIMS_ASSIGN_OR_RETURN(propolyne::DataCube cube,
                        propolyne::DataCube::MakeMultiFilter(schema, filters));
  std::vector<double> dense(schema.total_size(), 0.0);
  for (size_t s = 0; s < series.size(); ++s) {
    const std::vector<double>& values = series[s];
    for (size_t f = 0; f < values.size(); ++f) {
      size_t time_bucket =
          std::min(spec.time_buckets - 1,
                   f * spec.time_buckets / std::max<size_t>(values.size(), 1));
      double normalized = (values[f] - lo) / (hi - lo);
      normalized = std::clamp(normalized, 0.0, 1.0);
      size_t value_bucket =
          std::min(spec.value_buckets - 1,
                   static_cast<size_t>(normalized *
                                       static_cast<double>(spec.value_buckets)));
      dense[(s * spec.time_buckets + time_bucket) * spec.value_buckets +
            value_bucket] += 1.0;
    }
  }
  return propolyne::DataCube::FromDenseMultiFilter(schema, filters,
                                                   std::move(dense));
}

Result<streams::Recording> AimsSystem::MaterializeSession(SessionId id) const {
  if (id >= sessions_.size()) {
    return Status::NotFound("MaterializeSession: unknown session id");
  }
  const SessionInfo& info = sessions_[id].info;
  streams::Recording recording;
  recording.sample_rate_hz = info.sample_rate_hz;
  std::vector<std::vector<double>> channels(info.num_channels);
  for (size_t c = 0; c < info.num_channels; ++c) {
    AIMS_ASSIGN_OR_RETURN(channels[c], ReadChannel(id, c));
  }
  double dt = info.sample_rate_hz > 0.0 ? 1.0 / info.sample_rate_hz : 0.0;
  for (size_t f = 0; f < info.num_frames; ++f) {
    streams::Frame frame;
    frame.timestamp = static_cast<double>(f) * dt;
    frame.values.resize(info.num_channels);
    for (size_t c = 0; c < info.num_channels; ++c) {
      frame.values[c] = channels[c][f];
    }
    recording.Append(std::move(frame));
  }
  return recording;
}

Status AimsSystem::ExportSession(SessionId id,
                                 const std::string& path) const {
  AIMS_ASSIGN_OR_RETURN(streams::Recording recording, MaterializeSession(id));
  return streams::WriteBinary(recording, path);
}

Result<SessionId> AimsSystem::ImportSession(const std::string& name,
                                            const std::string& path) {
  AIMS_ASSIGN_OR_RETURN(streams::Recording recording,
                        streams::ReadBinary(path));
  return IngestRecording(name, recording);
}

Status AimsSystem::SaveCatalog(const std::string& directory) const {
  std::ofstream index(directory + "/catalog.txt");
  if (!index) {
    return Status::IoError("SaveCatalog: cannot open index in " + directory);
  }
  for (const StoredSession& session : sessions_) {
    std::string file = "session_" + std::to_string(session.info.id) + ".aimr";
    AIMS_RETURN_NOT_OK(ExportSession(session.info.id, directory + "/" + file));
    index << file << '\t' << session.info.name << '\n';
  }
  if (!index) {
    return Status::IoError("SaveCatalog: index write failed");
  }
  return Status::OK();
}

Result<std::vector<SessionId>> AimsSystem::LoadCatalog(
    const std::string& directory) {
  std::ifstream index(directory + "/catalog.txt");
  if (!index) {
    return Status::IoError("LoadCatalog: cannot open index in " + directory);
  }
  std::vector<SessionId> ids;
  std::string line;
  while (std::getline(index, line)) {
    if (line.empty()) continue;
    size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::InvalidArgument("LoadCatalog: malformed index line");
    }
    std::string file = line.substr(0, tab);
    std::string name = line.substr(tab + 1);
    AIMS_ASSIGN_OR_RETURN(SessionId id,
                          ImportSession(name, directory + "/" + file));
    ids.push_back(id);
  }
  return ids;
}

Status AimsSystem::AddVocabularyEntry(std::string label,
                                      linalg::Matrix segment) {
  if (recognizer_ != nullptr) {
    return Status::FailedPrecondition(
        "AddVocabularyEntry: vocabulary is immutable while the recognizer "
        "is running; StopRecognizer first");
  }
  vocabulary_.Add(std::move(label), std::move(segment));
  return Status::OK();
}

Status AimsSystem::StartRecognizer(
    recognition::StreamRecognizerConfig config) {
  if (vocabulary_.size() == 0) {
    return Status::FailedPrecondition(
        "StartRecognizer: register a vocabulary first");
  }
  recognizer_ = std::make_unique<recognition::StreamRecognizer>(
      &vocabulary_, &measure_, config);
  return Status::OK();
}

void AimsSystem::StopRecognizer() { recognizer_.reset(); }

Result<std::optional<recognition::RecognitionEvent>> AimsSystem::PushLiveFrame(
    const streams::Frame& frame) {
  if (!recognizer_) {
    return Status::FailedPrecondition("PushLiveFrame: recognizer not started");
  }
  return recognizer_->Push(frame);
}

Result<std::optional<recognition::RecognitionEvent>>
AimsSystem::FinishLiveStream() {
  if (!recognizer_) {
    return Status::FailedPrecondition(
        "FinishLiveStream: recognizer not started");
  }
  return recognizer_->Finish();
}

}  // namespace aims::core
