#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/tracer.h"
#include "obs/wal_stats.h"
#include "propolyne/evaluator.h"
#include "recognition/isolator.h"
#include "recognition/vocabulary.h"
#include "signal/dwpt.h"
#include "signal/wavelet_filter.h"
#include "storage/block_cache.h"
#include "storage/block_device.h"
#include "storage/file_block_device.h"
#include "storage/tslife.h"
#include "storage/wal.h"
#include "storage/wavelet_store.h"
#include "streams/sample.h"

/// \file aims.h
/// \brief AimsSystem: the integrated immersidata management system of
/// Fig. 1. It wires the four subsystems together:
///
///   acquisition  -> multi-basis transformation of incoming recordings,
///   storage      -> wavelet coefficients placed on blocks via error-tree
///                   tiling on a counting block device,
///   off-line     -> range statistics answered in the wavelet domain with
///                   block-granular I/O (and full ProPolyne cubes for
///                   multidimensional analysis),
///   on-line      -> vocabulary registration + streaming recognition.

namespace aims::core {

/// \brief Identifier of one stored session.
using SessionId = uint32_t;

/// \brief Durable-storage configuration. With an empty path (the default)
/// the system is the original in-memory simulator: nothing survives the
/// process. With a path, blocks live in a checksummed page file, every
/// ingest is an atomic WAL transaction, and construction recovers
/// whatever a previous incarnation committed.
struct DurabilityConfig {
  /// Directory for the store (created if absent): pages.aims (the page
  /// file), wal.aims (the log), catalog.snap (the checkpoint snapshot).
  std::string path;
  /// Whether commits fsync (survive power loss) or merely append to the
  /// OS page cache (survive process crash only).
  storage::durable::WalSyncMode sync_mode =
      storage::durable::WalSyncMode::kFsync;
  /// Group-commit window (ms): how long a commit waits for concurrent
  /// commits to share its fsync. 0 syncs per commit.
  double group_commit_ms = 0.0;
  /// Modeled extra latency per physical WAL sync (see WalConfig).
  double simulated_sync_ms = 0.0;
  /// Auto-checkpoint once the WAL grows past this many bytes (pages
  /// synced, catalog snapshot written, log truncated). 0 disables
  /// automatic checkpoints; Checkpoint() can always be called explicitly.
  size_t checkpoint_wal_bytes = 1 << 20;
  /// Byte budget for the write-back buffer pool the durable path requires
  /// when AimsConfig::block_cache is disabled. Ignored when the caller
  /// configured a cache (which is then switched to write-back mode).
  size_t buffer_pool_bytes = 4u << 20;
};

/// \brief System-wide configuration.
struct AimsConfig {
  /// Wavelet family used for storage and offline queries. db2+ enables SUM
  /// queries, db3+ enables VARIANCE.
  signal::WaveletKind filter = signal::WaveletKind::kDb2;
  /// Disk block size for the wavelet store.
  size_t block_size_bytes = 512;
  /// Basis-selection cost functional for the per-channel DWPT report.
  signal::BasisCost basis_cost = signal::BasisCost::kShannonEntropy;
  /// Disk cost model for the block device. Set simulate_io_wait to make
  /// block I/O take real wall-clock time (server concurrency benches).
  storage::DiskCostModel disk_cost;
  /// Read-through block cache over the device. capacity_bytes == 0 (the
  /// default) disables caching entirely; when nonzero every wavelet-store
  /// read routes through a sharded LRU cache and repeated fetches of a hot
  /// block cost CPU instead of a simulated seek.
  storage::BlockCacheConfig block_cache;
  /// Durable storage (file-backed device + WAL + recovery-on-open). The
  /// default — an empty path — keeps the in-memory simulator.
  DurabilityConfig durability;
  /// Raw-sample lifecycle: Gorilla-compressed segments sealed beside the
  /// wavelet blocks at ingest, downsampled and dropped by retention
  /// sweeps (see storage/tslife.h).
  storage::tslife::TsLifeConfig tslife;
};

/// \brief Catalog entry for a stored session.
struct SessionInfo {
  SessionId id = 0;
  std::string name;
  size_t num_channels = 0;
  size_t num_frames = 0;     ///< Original (unpadded) frame count.
  double sample_rate_hz = 0.0;
  /// Best DWPT basis size chosen per channel during ingest (reported by the
  /// multi-basis transformation step; storage itself uses the plain DWT so
  /// that offline queries can use the lazy transform).
  std::vector<size_t> best_basis_nodes;
};

/// \brief Aggregate over a frame range of one stored channel.
struct RangeStatistics {
  double mean = 0.0;
  double sum = 0.0;
  size_t count = 0;
  /// Blocks read from the *device* to answer this query — cache hits (when
  /// a block cache is configured) do not count, so this is the cold-I/O
  /// cost a tenant is billed for.
  size_t blocks_read = 0;
};

/// \brief One step of a progressive facade range query (one block fetch —
/// a device I/O when cold, a cache lookup when hot).
struct ProgressiveRangeStep {
  size_t blocks_read = 0;
  /// Of blocks_read, how many were served by the block cache without
  /// touching the device. Cumulative, like blocks_read.
  size_t cache_hits = 0;
  double sum_estimate = 0.0;
  double mean_estimate = 0.0;
  /// Guaranteed bound on |sum_estimate - exact sum| (Cauchy-Schwarz over
  /// the unread query coefficients and the channel's stored energy).
  double sum_error_bound = 0.0;
};

/// \brief One planned block fetch of a range query, in refinement order.
struct QueryPlanBlockFetch {
  /// Logical block index inside the channel's wavelet store.
  size_t logical_block = 0;
  /// Query coefficients whose stored partners live on this block.
  size_t num_coefficients = 0;
  /// The block's share of the query energy — the "importance" that put it
  /// at this position in the schedule.
  double query_energy = 0.0;
  /// Whether the block was resident in the block cache when the plan was
  /// computed (always false without a cache).
  bool cached = false;
};

/// \brief The EXPLAIN side of a progressive range query: what the lazy
/// transform selected and what the evaluator WOULD read, computed without
/// any device I/O. Deterministic for a given stored channel and range, so
/// an ANALYZE run must reconcile exactly against it (blocks_read ==
/// predicted_blocks when the query runs to completion).
struct QueryPlan {
  /// Session/channel/range the plan was computed for. At the server layer
  /// `session` carries the GlobalSessionId.
  uint64_t session = 0;
  size_t channel = 0;
  size_t first_frame = 0;
  size_t last_frame = 0;
  /// Stored (power-of-two padded) channel length the transform ran over.
  size_t padded_len = 0;
  /// Nonzero query coefficients the lazy transform selected — the O(lg n)
  /// working set of the wavelet-domain evaluation.
  size_t num_query_coefficients = 0;
  /// Distinct wavelet levels touched, ascending. Level 0 is the
  /// approximation root; level k >= 1 is the detail band at depth k
  /// (coefficient indices [2^(k-1), 2^k)), finer as k grows.
  std::vector<size_t> wavelet_levels;
  /// Blocks a run-to-exactness evaluation fetches (== schedule.size()).
  size_t predicted_blocks = 0;
  /// Of predicted_blocks, how many were resident in the block cache at
  /// planning time (0 without a cache). A fetch of a cached block costs
  /// CPU, not I/O.
  size_t predicted_cached_blocks = 0;
  /// predicted_blocks - predicted_cached_blocks: device reads a
  /// run-to-exactness evaluation performs. ANALYZE reconciles its actual
  /// cold read count against this exactly (residency can only grow during
  /// the run, and the run itself only adds blocks from its own schedule).
  size_t predicted_cold_blocks = 0;
  /// Block size the store places coefficients on (bytes moved per fetch).
  size_t block_size_bytes = 0;
  /// predicted_cold_blocks * DiskCostModel::AccessCostMs(block_size_bytes)
  /// — cache hits are free at the I/O layer.
  double predicted_io_ms = 0.0;
  /// The refinement schedule: blocks in decreasing query-energy order
  /// ("most valuable I/O's first"), ties broken by block index.
  std::vector<QueryPlanBlockFetch> schedule;
  /// True when a registered continuous aggregate answers this exact range
  /// without evaluation: every predicted_* count is 0 and the schedule is
  /// empty — the whole point of standing queries.
  bool aggregate_hit = false;

  /// \brief One JSON object mirroring the fields above (schedule inline),
  /// used by EXPLAIN responses and slow-query log records.
  std::string ToJson() const;
};

/// \brief Re-export of the progressive evaluators' stop/continue control.
using StepControl = propolyne::StepControl;

/// \brief Observer invoked after every block I/O step of a progressive
/// range query. Returning StepControl::kStop ends the evaluation early and
/// the query returns its best partial answer with the current error bound —
/// the resumable hook deadline-aware schedulers are built on.
using ProgressiveObserver =
    std::function<StepControl(const ProgressiveRangeStep&)>;

/// \brief Trajectory of a progressive range query.
struct ProgressiveRangeResult {
  /// One entry per block I/O, estimates refining monotonically in blocks
  /// read. Never empty for a valid query.
  std::vector<ProgressiveRangeStep> steps;
  /// Blocks a run-to-exactness evaluation would read.
  size_t total_blocks_needed = 0;
  /// False when an observer stopped the evaluation before every needed
  /// block was read; the last step then carries a nonzero error bound.
  bool complete = true;
};

/// \brief The integrated system.
///
/// Concurrency contract: AimsSystem itself holds no locks. The const
/// methods (catalog lookups and the whole off-line query path) are safe to
/// call from many threads at once; the mutating methods (ingest, import,
/// recognizer control) require external exclusive synchronization.
/// aims::server::ShardedCatalog wraps instances with reader/writer locks
/// to enforce exactly this.
/// \brief One standing ProPolyne range query whose result is incrementally
/// maintained at ingest time (the core half of continuous aggregates; the
/// server's registry owns handles, per-client filtering, and serving).
struct StandingRangeQuery {
  /// Registry-assigned identity, opaque to the core.
  uint64_t handle = 0;
  size_t channel = 0;
  size_t first_frame = 0;
  size_t last_frame = 0;
};

/// \brief One maintained result: the standing query evaluated against a
/// freshly ingested session, bit-identical to what QueryRange would
/// compute from block storage for the same range.
struct StandingRangeUpdate {
  uint64_t handle = 0;
  SessionId session = 0;
  double sum = 0.0;
  double mean = 0.0;
  size_t count = 0;
};

class AimsSystem {
 public:
  explicit AimsSystem(AimsConfig config = {});

  /// \brief Outcome of opening/recovering the durable store, when one is
  /// configured (always OK for the in-memory backend). Constructors cannot
  /// fail, so a failed open parks its status here; every mutating call
  /// refuses while this is non-OK.
  const Status& init_status() const { return init_status_; }

  /// \brief Whether this system runs on the durable backend.
  bool durable() const { return wal_ != nullptr; }

  // ---- Acquisition + storage -------------------------------------------

  /// \brief Ingests a multi-channel recording: per-channel mean-centering,
  /// DWT, best-basis report, and block placement on the shared device.
  /// \p trace (optional) gains one "transform" and one "block_write" span
  /// per channel, nesting under whatever span the caller has open — the
  /// storage half of an end-to-end ingest trace.
  /// On the durable backend this is the sequential convenience form of the
  /// staged protocol below: the call returns only after the ingest's WAL
  /// commit is durable and its pages are written back.
  /// \p updates (optional) receives one StandingRangeUpdate per registered
  /// standing query that applies to this session — evaluated from the
  /// in-memory coefficients, no block I/O.
  Result<SessionId> IngestRecording(
      const std::string& name, const streams::Recording& recording,
      obs::Trace* trace = nullptr,
      std::vector<StandingRangeUpdate>* updates = nullptr);

  /// \brief One durable ingest in flight between the staged phases.
  struct StagedIngest {
    SessionId id = 0;
    uint64_t txn_id = 0;
    /// WAL durability ticket for WaitDurable.
    uint64_t ticket = 0;
    /// Device blocks the ingest staged dirty in the buffer pool.
    std::vector<storage::BlockId> blocks;
  };

  /// \brief Durable backend only — phase 1 of the two-phase ingest:
  /// transform, stage every block dirty in the buffer pool (no device
  /// I/O), log the whole ingest as one WAL record group, and append its
  /// commit record. The session is visible to queries from here on.
  /// Requires exclusive synchronization, like IngestRecording — but it
  /// never blocks on a sync, which is the point: the caller releases its
  /// exclusive lock, then calls WaitDurable, so concurrent ingests can
  /// share one group-commit fsync.
  Result<StagedIngest> IngestRecordingStaged(
      const std::string& name, const streams::Recording& recording,
      obs::Trace* trace = nullptr,
      std::vector<StandingRangeUpdate>* updates = nullptr);

  /// \brief Phase 2: blocks until the staged ingest's commit is on stable
  /// storage. Safe to call concurrently from many threads (no lock
  /// needed); one caller leads the shared fsync, the rest ride it.
  Status WaitDurable(const StagedIngest& staged);

  /// \brief Phase 3: writes the staged dirty pages back to the page file
  /// and may auto-checkpoint. Requires exclusive synchronization. A
  /// failure here loses nothing — the WAL holds the committed group, and
  /// reopening replays it.
  Status ApplyDurable(const StagedIngest& staged);

  /// \brief Forces a checkpoint: pages fsync'd, catalog snapshot written
  /// atomically, WAL truncated. Requires exclusive synchronization and no
  /// ingest between its staged phases (FailedPrecondition otherwise).
  Status Checkpoint();

  /// \brief WAL counters (zero-valued struct on the in-memory backend).
  obs::WalStats WalStats() const;

  /// The write-ahead log, or nullptr on the in-memory backend.
  const storage::durable::WriteAheadLog* wal() const { return wal_.get(); }

  /// \brief Arms the WAL's group-commit sync sections on \p handle (see
  /// WriteAheadLog::SetWatchdog). No-op on the in-memory backend; the
  /// handle must outlive this system.
  void SetWalWatchdog(obs::Watchdog::Handle* handle) {
    if (wal_ != nullptr) wal_->SetWatchdog(handle);
  }

  /// Catalog lookup.
  Result<SessionInfo> GetSession(SessionId id) const;
  std::vector<SessionInfo> ListSessions() const;

  // ---- Raw-sample lifecycle (storage/tslife.h) --------------------------

  /// \brief Segment metadata of one session, in (channel, seq) order.
  /// Empty when the lifecycle is disabled.
  Result<std::vector<storage::tslife::SegmentMeta>> ListSegments(
      SessionId id) const;

  /// \brief Decodes one channel's raw-segment samples, time-ascending.
  /// Bit-exact against the ingested samples while the segments are still
  /// tier 0; downsampled tiers return the retained subset.
  Result<std::vector<gorilla::Sample>> ReadRawSamples(SessionId id,
                                                      size_t channel) const;

  /// \brief Total sealed-segment bytes across all sessions (the
  /// aims_tslife_bytes gauge).
  size_t SegmentBytes() const;

  /// \brief Copies of one session's sealed segments — the migration
  /// export (re-building segments from wavelet-reconstructed data would
  /// not preserve the raw tier bit-exactly).
  Result<std::vector<storage::tslife::Segment>> ExportSegments(
      SessionId id) const;

  /// \brief Replaces one session's segments wholesale — the migration
  /// import. Durable backend: logged as one WAL record group (drops of
  /// the rebuilt segments, puts of the copied ones) committed before the
  /// in-memory state changes. Requires exclusive synchronization.
  Status ReplaceSegments(SessionId id,
                         std::vector<storage::tslife::Segment> segments);

  /// \brief One retention sweep over every session: segments older than
  /// the policy's tiers are downsampled (NMSE-bounded, recorded per
  /// segment) or dropped, oldest-first under the byte budget. \p now_us
  /// is the sweep's clock (injectable — ages are measured against data
  /// time). Durable backend: the whole sweep commits as one WAL record
  /// group before the in-memory state changes. Requires exclusive
  /// synchronization.
  /// \p sessions (optional) restricts the sweep to those local session
  /// ids — how the server applies per-tenant policies. Null sweeps all.
  Result<storage::tslife::SweepStats> SweepRetention(
      const storage::tslife::RetentionPolicy& policy, int64_t now_us,
      const std::vector<SessionId>* sessions = nullptr);

  // ---- Continuous aggregates (core half) --------------------------------

  /// \brief Replaces the set of standing range queries evaluated at every
  /// ingest (see StandingRangeQuery). Requires exclusive synchronization,
  /// like the ingests that read the set.
  void SetStandingQueries(std::vector<StandingRangeQuery> queries);
  const std::vector<StandingRangeQuery>& standing_queries() const {
    return standing_queries_;
  }

  // ---- Off-line query ---------------------------------------------------

  /// \brief Reconstructs one channel (exact, reads all its blocks).
  Result<std::vector<double>> ReadChannel(SessionId id, size_t channel) const;

  /// \brief SUM/AVERAGE over a frame range, evaluated in the wavelet domain
  /// from only the O(lg n) coefficients the lazy transform selects, reading
  /// only the blocks that hold them.
  Result<RangeStatistics> QueryRange(SessionId id, size_t channel,
                                     size_t first_frame,
                                     size_t last_frame) const;

  /// \brief Progressive variant of QueryRange: fetches the needed blocks in
  /// decreasing query-energy order and reports the running estimate with a
  /// guaranteed bound after every block — the Fig. 4 experience, served
  /// from block storage (Sec. 3.2.1's "most valuable I/O's first").
  /// \p observer (optional) runs after every block I/O and may stop the
  /// evaluation early; the result then reports `complete == false` with the
  /// partial trajectory. Const and lock-free like the rest of the read
  /// path, so schedulers can run it under a shard's shared lock.
  Result<ProgressiveRangeResult> QueryRangeProgressive(
      SessionId id, size_t channel, size_t first_frame, size_t last_frame,
      const ProgressiveObserver& observer = {}) const;

  /// \brief EXPLAIN: computes the plan a QueryRangeProgressive evaluation
  /// of the same range would follow — query coefficients, wavelet levels,
  /// the block schedule in refinement order, and the DiskCostModel's
  /// predicted I/O cost — without reading a single block. Same validation
  /// and determinism as the evaluation itself, so predicted and actual
  /// block counts reconcile exactly on a complete run.
  Result<QueryPlan> PlanRangeQuery(SessionId id, size_t channel,
                                   size_t first_frame,
                                   size_t last_frame) const;

  /// \brief How BuildChannelCube buckets a channel into a ProPolyne cube.
  struct CubeSpec {
    size_t channel = 0;
    size_t time_buckets = 64;   ///< Power of two.
    size_t value_buckets = 64;  ///< Power of two.
    /// Value range mapped onto the buckets; when lo == hi the range is
    /// taken from the data (min/max across the selected sessions).
    double value_lo = 0.0;
    double value_hi = 0.0;
  };

  /// \brief Builds the (session, time-bucket, value-bucket) frequency cube
  /// for one channel across the given sessions — the paper's off-line
  /// analysis substrate ("polynomial range-sum queries" over collected
  /// immersidata, Sec. 2.1). Channels are read back through block storage.
  /// The session dimension is padded to a power of two; sessions beyond
  /// the list contribute nothing.
  Result<propolyne::DataCube> BuildChannelCube(
      const std::vector<SessionId>& ids, const CubeSpec& spec) const;

  /// \brief Reconstructs a stored session as an in-memory Recording —
  /// every channel read back from its wavelet blocks, frame timestamps
  /// regenerated from the sample rate. This is the copy step of session
  /// export and of cross-shard migration: the result can be re-ingested
  /// elsewhere and answers the same queries.
  Result<streams::Recording> MaterializeSession(SessionId id) const;

  /// \brief Exports a stored session to the binary recording container
  /// (MaterializeSession + WriteBinary).
  Status ExportSession(SessionId id, const std::string& path) const;

  /// \brief Ingests a recording previously written by ExportSession (or
  /// any AIMR file).
  Result<SessionId> ImportSession(const std::string& name,
                                  const std::string& path);

  /// \brief Persists the whole catalog: one AIMR file per session plus a
  /// `catalog.txt` index in \p directory (which must exist).
  Status SaveCatalog(const std::string& directory) const;

  /// \brief Re-ingests every session of a saved catalog, in the saved
  /// order. Returns the new ids (session ids are assigned afresh).
  Result<std::vector<SessionId>> LoadCatalog(const std::string& directory);

  /// Device-level I/O counters (shared across sessions).
  const storage::BlockDevice& device() const { return *device_; }
  storage::BlockDevice* mutable_device() { return device_.get(); }

  /// The block cache over the device, or nullptr when the config disabled
  /// it (block_cache.capacity_bytes == 0).
  const storage::BlockCache* block_cache() const { return cache_.get(); }
  storage::BlockCache* mutable_block_cache() { return cache_.get(); }

  // ---- On-line query ----------------------------------------------------

  /// \brief Registers a motion template for online recognition. Fails with
  /// FailedPrecondition while a recognizer is running (the recognizer holds
  /// a pointer into the vocabulary, which must stay immutable); call
  /// StopRecognizer first.
  Status AddVocabularyEntry(std::string label, linalg::Matrix segment);

  /// \brief Starts (or restarts) the online recognizer with the registered
  /// vocabulary.
  Status StartRecognizer(recognition::StreamRecognizerConfig config = {});

  /// \brief Stops the recognizer (if running), making the vocabulary
  /// mutable again. Pending stream state is discarded; call
  /// FinishLiveStream first to flush it.
  void StopRecognizer();

  /// \brief Feeds one live frame; returns an event when a motion was just
  /// isolated and recognized.
  Result<std::optional<recognition::RecognitionEvent>> PushLiveFrame(
      const streams::Frame& frame);

  /// \brief Flushes the recognizer at end of stream.
  Result<std::optional<recognition::RecognitionEvent>> FinishLiveStream();

  const recognition::Vocabulary& vocabulary() const { return vocabulary_; }

 private:
  struct StoredChannel {
    std::unique_ptr<storage::WaveletStore> store;
    double mean = 0.0;
    size_t padded_len = 0;
    /// Total energy of the stored (mean-centered) coefficients; the
    /// progressive bound's data-side term.
    double energy = 0.0;
  };
  struct StoredSession {
    SessionInfo info;
    std::vector<StoredChannel> channels;
    /// Sealed raw-sample segments (empty when the lifecycle is disabled).
    storage::tslife::SegmentStore segments;
  };

  /// Builds one session's stores (transform + Put through the cache) but
  /// does not publish it — shared by the in-memory ingest and the durable
  /// staged ingest. Also seals the raw segments and, when \p updates is
  /// non-null, evaluates the standing queries against the in-memory
  /// coefficients.
  Result<StoredSession> BuildSession(const std::string& name,
                                     const streams::Recording& recording,
                                     obs::Trace* trace,
                                     std::vector<StandingRangeUpdate>* updates);
  /// Applies one decoded segment op (put/drop) to the session it names.
  Status ApplySegmentOp(const storage::tslife::SegmentOp& op);
  /// Commits \p ops as one WAL record group (durable backend; no-op list
  /// allowed) and applies them to the in-memory stores.
  Status CommitSegmentOps(const std::vector<storage::tslife::SegmentOp>& ops);
  /// Opens or recovers the durable store (ctor helper; result goes to
  /// init_status_).
  Status OpenDurable();
  /// Serializes one session's catalog entry for the WAL / snapshot.
  std::vector<uint8_t> SerializeSession(const StoredSession& session) const;
  /// Appends the session a serialized catalog entry describes, attaching
  /// its WaveletStores to already-written device blocks.
  Status ApplyCatalogBlob(const std::vector<uint8_t>& blob);
  /// Writes the catalog snapshot atomically (tmp + fsync + rename).
  Status WriteSnapshot() const;
  /// Loads the catalog snapshot, if one exists.
  Status LoadSnapshot();

  AimsConfig config_;
  signal::WaveletFilter filter_;
  std::unique_ptr<storage::BlockDevice> device_;
  /// Declared after device_ (construction order): the cache fronts it.
  std::unique_ptr<storage::BlockCache> cache_;
  /// Downcast alias of device_ on the durable backend (for SyncPages).
  storage::durable::FileBlockDevice* file_device_ = nullptr;
  std::unique_ptr<storage::durable::WriteAheadLog> wal_;
  Status init_status_;
  /// Ingests between IngestRecordingStaged and the end of ApplyDurable;
  /// checkpoints are refused while nonzero (their pages may be dirty or
  /// their commits not yet durable).
  std::atomic<size_t> pending_commits_{0};
  /// Largest transaction id whose effects are in sessions_ — recorded in
  /// the snapshot so recovery replays only younger WAL groups (a crash
  /// between snapshot write and log truncation must not double-apply).
  uint64_t applied_txn_ = 0;
  std::vector<StoredSession> sessions_;
  /// Standing queries evaluated at every ingest (exclusive-lock domain,
  /// like sessions_).
  std::vector<StandingRangeQuery> standing_queries_;

  recognition::Vocabulary vocabulary_;
  recognition::WeightedSvdSimilarity measure_;
  std::unique_ptr<recognition::StreamRecognizer> recognizer_;
};

}  // namespace aims::core
