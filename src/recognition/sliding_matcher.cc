#include "recognition/sliding_matcher.h"

#include <cmath>

#include "common/macros.h"
#include "recognition/similarity.h"

namespace aims::recognition {

SlidingTemplateMatcher::SlidingTemplateMatcher(const Vocabulary* vocabulary,
                                               SlidingMatcherConfig config)
    : vocabulary_(vocabulary), config_(config) {
  AIMS_CHECK(vocabulary_ != nullptr);
  AIMS_CHECK(config_.evaluation_stride >= 1);
  for (const VocabularyEntry& entry : vocabulary_->entries()) {
    template_lengths_.push_back(entry.segment.rows());
    max_window_ = std::max(max_window_, entry.segment.rows());
  }
}

Result<std::optional<RecognitionEvent>> SlidingTemplateMatcher::Push(
    const streams::Frame& frame) {
  ++frames_seen_;
  window_.push_back(frame);
  if (window_.size() > max_window_) window_.pop_front();
  ++frames_since_eval_;
  if (frames_since_eval_ < config_.evaluation_stride ||
      frames_seen_ < refractory_until_) {
    return std::optional<RecognitionEvent>{};
  }
  frames_since_eval_ = 0;

  double best_distance = 1e300;
  size_t best_template = 0;
  for (size_t t = 0; t < template_lengths_.size(); ++t) {
    size_t len = template_lengths_[t];
    if (window_.size() < len) continue;
    const linalg::Matrix& templ = vocabulary_->entries()[t].segment;
    // Trailing window of the template's own length, compared frame by
    // frame (the equal-length requirement Euclidean imposes).
    double acc = 0.0;
    size_t start = window_.size() - len;
    for (size_t r = 0; r < len; ++r) {
      const std::vector<double>& values = window_[start + r].values;
      AIMS_CHECK(values.size() == templ.cols());
      for (size_t c = 0; c < templ.cols(); ++c) {
        double d = values[c] - templ.At(r, c);
        acc += d * d;
      }
    }
    double per_entry = std::sqrt(acc / static_cast<double>(len * templ.cols()));
    if (per_entry < best_distance) {
      best_distance = per_entry;
      best_template = t;
    }
  }
  if (best_distance > config_.distance_threshold) {
    return std::optional<RecognitionEvent>{};
  }
  RecognitionEvent event;
  event.label = vocabulary_->entries()[best_template].label;
  size_t len = template_lengths_[best_template];
  event.end_frame = frames_seen_;
  event.start_frame = frames_seen_ >= len ? frames_seen_ - len : 0;
  event.confidence =
      1.0 / (1.0 + best_distance / config_.distance_threshold);
  refractory_until_ = frames_seen_ + config_.refractory_frames;
  return std::optional<RecognitionEvent>{event};
}

}  // namespace aims::recognition
