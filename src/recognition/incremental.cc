#include "recognition/incremental.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/stats.h"
#include "recognition/similarity.h"

namespace aims::recognition {

IncrementalCovariance::IncrementalCovariance(size_t channels)
    : channels_(channels),
      sum_(channels, 0.0),
      second_moment_(channels, channels) {}

void IncrementalCovariance::Add(const std::vector<double>& values) {
  AIMS_CHECK(values.size() == channels_);
  ++count_;
  for (size_t i = 0; i < channels_; ++i) {
    sum_[i] += values[i];
    for (size_t j = i; j < channels_; ++j) {
      second_moment_.At(i, j) += values[i] * values[j];
    }
  }
}

Result<linalg::Matrix> IncrementalCovariance::Covariance() const {
  if (count_ < 2) {
    return Status::FailedPrecondition(
        "IncrementalCovariance: need at least 2 frames");
  }
  // cov = (sum xx^T - n mean mean^T) / (n - 1)
  const double n = static_cast<double>(count_);
  linalg::Matrix cov(channels_, channels_);
  for (size_t i = 0; i < channels_; ++i) {
    for (size_t j = i; j < channels_; ++j) {
      double value =
          (second_moment_.At(i, j) - sum_[i] * sum_[j] / n) / (n - 1.0);
      cov.At(i, j) = value;
      cov.At(j, i) = value;
    }
  }
  return cov;
}

Result<linalg::EigenDecomposition> IncrementalCovariance::Spectrum() const {
  AIMS_ASSIGN_OR_RETURN(linalg::Matrix cov, Covariance());
  return linalg::SymmetricEigen(cov);
}

void IncrementalCovariance::Reset(size_t channels) {
  if (channels != 0) channels_ = channels;
  count_ = 0;
  sum_.assign(channels_, 0.0);
  second_moment_ = linalg::Matrix(channels_, channels_);
}

Result<SpectralVocabulary> SpectralVocabulary::Make(
    const Vocabulary* vocabulary, size_t rank) {
  AIMS_CHECK(vocabulary != nullptr);
  if (vocabulary->size() == 0) {
    return Status::FailedPrecondition("SpectralVocabulary: empty vocabulary");
  }
  SpectralVocabulary out(vocabulary, rank);
  for (const VocabularyEntry& entry : vocabulary->entries()) {
    AIMS_ASSIGN_OR_RETURN(
        linalg::EigenDecomposition spectrum,
        WeightedSvdSimilarity::SegmentSpectrum(entry.segment));
    out.spectra_.push_back(std::move(spectrum));
  }
  return out;
}

std::vector<double> SpectralVocabulary::Scores(
    const linalg::EigenDecomposition& segment) const {
  std::vector<double> scores(spectra_.size());
  for (size_t i = 0; i < spectra_.size(); ++i) {
    scores[i] =
        WeightedSvdSimilarity::SpectraSimilarity(segment, spectra_[i], rank_);
  }
  return scores;
}

IncrementalStreamRecognizer::IncrementalStreamRecognizer(
    const SpectralVocabulary* vocabulary, StreamRecognizerConfig config)
    : vocabulary_(vocabulary), config_(config), covariance_(1) {
  AIMS_CHECK(vocabulary_ != nullptr);
  AIMS_CHECK(config_.activity_window >= 2);
  AIMS_CHECK(config_.evaluation_stride >= 1);
}

double IncrementalStreamRecognizer::CurrentActivity() const {
  if (recent_.size() < 2) return 0.0;
  const size_t channels = recent_.front().values.size();
  std::vector<double> stddevs(channels);
  for (size_t c = 0; c < channels; ++c) {
    RunningStats stats;
    for (const streams::Frame& f : recent_) stats.Add(f.values[c]);
    stddevs[c] = stats.stddev();
  }
  size_t k = std::min(std::max<size_t>(config_.activity_top_k, 1), channels);
  std::partial_sort(stddevs.begin(),
                    stddevs.begin() + static_cast<ptrdiff_t>(k),
                    stddevs.end(), std::greater<double>());
  double total = 0.0;
  for (size_t i = 0; i < k; ++i) total += stddevs[i];
  return total / static_cast<double>(k);
}

Status IncrementalStreamRecognizer::AccumulateEvidence() {
  AIMS_ASSIGN_OR_RETURN(linalg::EigenDecomposition spectrum,
                        covariance_.Spectrum());
  std::vector<double> scores = vocabulary_->Scores(spectrum);
  double mean = 0.0;
  for (double s : scores) mean += s;
  mean /= static_cast<double>(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    evidence_[i] += scores[i] - mean;
  }
  evidence_accumulated_ = true;
  return Status::OK();
}

Result<std::optional<RecognitionEvent>> IncrementalStreamRecognizer::Push(
    const streams::Frame& frame) {
  ++frames_seen_;
  recent_.push_back(frame);
  if (recent_.size() > config_.activity_window) recent_.pop_front();

  double activity = CurrentActivity();
  std::optional<RecognitionEvent> event;

  if (!in_segment_) {
    if (activity >= config_.activity_on) {
      in_segment_ = true;
      segment_start_ = frames_seen_ >= recent_.size()
                           ? frames_seen_ - recent_.size()
                           : 0;
      covariance_.Reset(frame.values.size());
      for (const streams::Frame& f : recent_) covariance_.Add(f.values);
      segment_frames_ = recent_.size();
      evidence_.assign(vocabulary_->size(), 0.0);
      evidence_accumulated_ = false;
      frames_since_eval_ = 0;
      low_activity_run_ = 0;
    }
    return event;
  }

  covariance_.Add(frame.values);
  ++segment_frames_;
  ++frames_since_eval_;

  if (frames_since_eval_ >= config_.evaluation_stride &&
      segment_frames_ >= config_.min_segment_frames) {
    frames_since_eval_ = 0;
    AIMS_RETURN_NOT_OK(AccumulateEvidence());
  }

  if (activity <= config_.activity_off) {
    ++low_activity_run_;
    if (low_activity_run_ >= config_.off_debounce_frames) {
      return CloseSegment();
    }
  } else {
    low_activity_run_ = 0;
  }
  return event;
}

Result<std::optional<RecognitionEvent>>
IncrementalStreamRecognizer::CloseSegment() {
  in_segment_ = false;
  size_t frames = segment_frames_;
  segment_frames_ = 0;
  if (frames < config_.min_segment_frames) {
    return std::optional<RecognitionEvent>{};
  }
  if (!evidence_accumulated_) {
    AIMS_RETURN_NOT_OK(AccumulateEvidence());
  }
  size_t best = 0;
  for (size_t i = 1; i < evidence_.size(); ++i) {
    if (evidence_[i] > evidence_[best]) best = i;
  }
  double positive = 0.0;
  for (double e : evidence_) {
    if (e > 0.0) positive += e;
  }
  double confidence = positive > 0.0 ? evidence_[best] / positive : 0.0;
  if (confidence < config_.min_confidence || evidence_[best] <= 0.0) {
    return std::optional<RecognitionEvent>{};
  }
  RecognitionEvent event;
  event.label = vocabulary_->vocabulary().entries()[best].label;
  event.start_frame = segment_start_;
  event.end_frame = frames_seen_;
  event.confidence = confidence;
  return std::optional<RecognitionEvent>{event};
}

Result<std::optional<RecognitionEvent>>
IncrementalStreamRecognizer::Finish() {
  if (!in_segment_) return std::optional<RecognitionEvent>{};
  return CloseSegment();
}

}  // namespace aims::recognition
