#include "recognition/features.h"

#include <cmath>

#include "common/macros.h"
#include "common/stats.h"

namespace aims::recognition {

namespace {
std::vector<double> SpeedSeries(const synth::ClassroomSession& session,
                                size_t tracker, size_t channel_offset,
                                size_t channel_count) {
  const auto& frames = session.recording.frames;
  std::vector<double> speeds;
  if (frames.size() < 2) return speeds;
  speeds.reserve(frames.size() - 1);
  const double rate = session.recording.sample_rate_hz;
  const size_t base = tracker * synth::kTrackerDims + channel_offset;
  for (size_t f = 1; f < frames.size(); ++f) {
    double acc = 0.0;
    for (size_t c = 0; c < channel_count; ++c) {
      double d = frames[f].values[base + c] - frames[f - 1].values[base + c];
      acc += d * d;
    }
    speeds.push_back(std::sqrt(acc) * rate);
  }
  return speeds;
}
}  // namespace

std::vector<double> TrackerSpeedSeries(const synth::ClassroomSession& session,
                                       size_t tracker) {
  AIMS_CHECK(tracker < synth::kNumTrackers);
  return SpeedSeries(session, tracker, 0, 3);  // X, Y, Z
}

std::vector<double> TrackerRotationSpeedSeries(
    const synth::ClassroomSession& session, size_t tracker) {
  AIMS_CHECK(tracker < synth::kNumTrackers);
  return SpeedSeries(session, tracker, 3, 3);  // H, P, R
}

std::vector<double> MotionSpeedFeatures(
    const synth::ClassroomSession& session) {
  std::vector<double> features;
  for (size_t tracker = 0; tracker < synth::kNumTrackers; ++tracker) {
    std::vector<double> speed = TrackerSpeedSeries(session, tracker);
    RunningStats stats;
    for (double s : speed) stats.Add(s);
    features.push_back(stats.mean());
    features.push_back(stats.stddev());
    features.push_back(stats.max());
    features.push_back(Percentile(speed, 95.0));
    std::vector<double> rotation = TrackerRotationSpeedSeries(session, tracker);
    RunningStats rot_stats;
    for (double s : rotation) rot_stats.Add(s);
    features.push_back(rot_stats.mean());
    features.push_back(rot_stats.stddev());
  }
  return features;
}

std::vector<double> TaskPerformanceFeatures(
    const synth::ClassroomSession& session) {
  size_t hits = 0;
  RunningStats reaction;
  for (const synth::Response& r : session.responses) {
    if (r.hit) {
      ++hits;
      reaction.Add(r.reaction_time_s);
    }
  }
  double hit_rate =
      session.responses.empty()
          ? 0.0
          : static_cast<double>(hits) /
                static_cast<double>(session.responses.size());
  return {hit_rate, reaction.mean(), reaction.stddev()};
}

std::vector<LabelledFeatures> BuildAdhdDataset(
    const std::vector<synth::ClassroomSession>& cohort, bool include_task) {
  std::vector<LabelledFeatures> dataset;
  dataset.reserve(cohort.size());
  for (const synth::ClassroomSession& session : cohort) {
    LabelledFeatures row;
    row.features = MotionSpeedFeatures(session);
    if (include_task) {
      std::vector<double> task = TaskPerformanceFeatures(session);
      row.features.insert(row.features.end(), task.begin(), task.end());
    }
    row.label = session.group == synth::SubjectGroup::kAdhd ? 1 : -1;
    dataset.push_back(std::move(row));
  }
  return dataset;
}

}  // namespace aims::recognition
