#pragma once

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "recognition/isolator.h"
#include "recognition/vocabulary.h"
#include "streams/sample.h"

/// \file sliding_matcher.h
/// \brief The Euclidean sliding-window baseline the paper contrasts with
/// (Sec. 3.4.2, discussing Gao & Wang [6]): "computation is always
/// performed up to the current time and then the results are reported per
/// each computation, in which case some of the results may not be very
/// meaningful", using Euclidean distance — the choice the paper argues is
/// inadequate for high-dimensional, variable-length immersidata.
///
/// The matcher keeps a sliding window per template (sized to the template's
/// own length) and reports a match whenever the windowed Euclidean distance
/// drops below a threshold, with a refractory period so one motion does not
/// fire on every frame. No isolation: segment boundaries come only from
/// where the distance happens to dip.

namespace aims::recognition {

/// \brief Configuration of the sliding matcher.
struct SlidingMatcherConfig {
  /// Match when distance per entry falls below this.
  double distance_threshold = 6.0;
  /// Frames to stay silent after a match (suppresses repeat firings).
  size_t refractory_frames = 60;
  /// Frames between distance evaluations.
  size_t evaluation_stride = 4;
};

/// \brief Streaming sliding-window Euclidean matcher over a vocabulary.
class SlidingTemplateMatcher {
 public:
  /// \param vocabulary template library (not owned).
  SlidingTemplateMatcher(const Vocabulary* vocabulary,
                         SlidingMatcherConfig config);

  /// Pushes one frame; returns an event when some template matched.
  Result<std::optional<RecognitionEvent>> Push(const streams::Frame& frame);

  size_t frames_seen() const { return frames_seen_; }

 private:
  const Vocabulary* vocabulary_;
  SlidingMatcherConfig config_;
  /// Per template: its frame count (window length).
  std::vector<size_t> template_lengths_;
  size_t max_window_ = 0;
  std::deque<streams::Frame> window_;
  size_t frames_seen_ = 0;
  size_t frames_since_eval_ = 0;
  size_t refractory_until_ = 0;
};

}  // namespace aims::recognition
