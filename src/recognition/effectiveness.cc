#include "recognition/effectiveness.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/stats.h"

namespace aims::recognition {

Result<EffectivenessReport> MeasureEffectiveness(
    const Vocabulary& vocabulary, const SimilarityMeasure& measure,
    const std::vector<LabelledSegment>& test_set) {
  if (test_set.empty()) {
    return Status::InvalidArgument("MeasureEffectiveness: empty test set");
  }
  EffectivenessReport report;
  report.measure = measure.name();
  RunningStats margins;
  RunningStats gains;
  size_t ranked_correctly = 0;
  for (const LabelledSegment& item : test_set) {
    AIMS_ASSIGN_OR_RETURN(std::vector<double> scores,
                          vocabulary.Scores(item.segment, measure));
    double correct = -1.0;
    double best_wrong = -1.0;
    double wrong_sum = 0.0;
    size_t wrong_count = 0;
    bool label_found = false;
    for (size_t i = 0; i < scores.size(); ++i) {
      if (vocabulary.entries()[i].label == item.label) {
        correct = std::max(correct, scores[i]);
        label_found = true;
      } else {
        best_wrong = std::max(best_wrong, scores[i]);
        wrong_sum += scores[i];
        ++wrong_count;
      }
    }
    if (!label_found) {
      return Status::InvalidArgument(
          "MeasureEffectiveness: test label missing from vocabulary: " +
          item.label);
    }
    if (wrong_count == 0) {
      return Status::InvalidArgument(
          "MeasureEffectiveness: vocabulary needs at least two labels");
    }
    if (correct > best_wrong) ++ranked_correctly;
    margins.Add(correct - best_wrong);
    double mean_wrong = wrong_sum / static_cast<double>(wrong_count);
    gains.Add(std::log(std::max(correct, 1e-9) /
                       std::max(mean_wrong, 1e-9)));
  }
  report.ranking_accuracy = static_cast<double>(ranked_correctly) /
                            static_cast<double>(test_set.size());
  report.mean_margin = margins.mean();
  report.margin_snr =
      margins.stddev() > 1e-12 ? margins.mean() / margins.stddev() : 0.0;
  report.information_gain = gains.mean();
  return report;
}

}  // namespace aims::recognition
