#pragma once

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "signal/wavelet_filter.h"

/// \file wavelet_svd.h
/// \brief Computing the SVD-based similarity *in the wavelet domain*
/// (Sec. 3.4.1). Shao's observation: every second-order statistical
/// aggregate — covariance, PCA/SVD, ANOVA — derives from SUMs of
/// second-order polynomials of the measures. Because the DWT is
/// orthonormal, those sums are preserved under transformation (Parseval):
///
///   sum_t a(t) b(t) = sum_w A(w) B(w)
///
/// so the per-channel wavelet coefficients AIMS already stores for
/// acquisition/storage/ProPolyne suffice to build the exact covariance
/// matrix — no inverse transform at query time — and truncating to the
/// top-k coefficients yields a cheap approximate covariance whose SVD
/// similarity degrades gracefully (the progressive flavor).

namespace aims::recognition {

/// \brief Per-channel full-depth DWT of a segment (frames x channels).
/// Frames are zero-padded to the next power of two after mean-centering
/// each channel (padding with the channel mean leaves covariance intact up
/// to the scale factor, which cancels in the similarity).
Result<linalg::Matrix> TransformSegment(const signal::WaveletFilter& filter,
                                        const linalg::Matrix& segment);

/// \brief Exact column covariance computed from transformed channels only.
/// With keep_top_k > 0, only the k globally largest-magnitude coefficient
/// rows participate (the approximate path).
Result<linalg::Matrix> CovarianceFromWavelets(
    const linalg::Matrix& transformed, size_t keep_top_k = 0);

/// \brief Weighted-SVD similarity of two segments evaluated entirely from
/// their wavelet transforms; with keep_top_k > 0 uses the truncated
/// covariance on both sides.
Result<double> WaveletDomainSimilarity(const signal::WaveletFilter& filter,
                                       const linalg::Matrix& segment_a,
                                       const linalg::Matrix& segment_b,
                                       size_t rank = 0,
                                       size_t keep_top_k = 0);

}  // namespace aims::recognition
