#include "recognition/similarity.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "obs/profile.h"
#include "signal/dft.h"
#include "signal/dwt.h"
#include "signal/wavelet_filter.h"

namespace aims::recognition {

namespace {
Status CheckSegments(const linalg::Matrix& a, const linalg::Matrix& b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("Similarity: empty segment");
  }
  if (a.cols() != b.cols()) {
    return Status::InvalidArgument("Similarity: channel count mismatch");
  }
  return Status::OK();
}
}  // namespace

linalg::Matrix ResampleRows(const linalg::Matrix& segment, size_t rows) {
  AIMS_CHECK(rows >= 2);
  linalg::Matrix out(rows, segment.cols());
  if (segment.rows() == 0) return out;
  for (size_t r = 0; r < rows; ++r) {
    double pos = static_cast<double>(r) *
                 static_cast<double>(segment.rows() - 1) /
                 static_cast<double>(rows - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, segment.rows() - 1);
    double frac = pos - static_cast<double>(lo);
    for (size_t c = 0; c < segment.cols(); ++c) {
      out.At(r, c) =
          segment.At(lo, c) * (1.0 - frac) + segment.At(hi, c) * frac;
    }
  }
  return out;
}

Result<linalg::EigenDecomposition> WeightedSvdSimilarity::SegmentSpectrum(
    const linalg::Matrix& segment) {
  if (segment.rows() < 2) {
    return Status::InvalidArgument("SegmentSpectrum: need at least 2 frames");
  }
  return linalg::SymmetricEigen(segment.ColumnCovariance());
}

double WeightedSvdSimilarity::SpectraSimilarity(
    const linalg::EigenDecomposition& a, const linalg::EigenDecomposition& b,
    size_t rank) {
  const size_t n = a.values.size();
  AIMS_CHECK(b.values.size() == n);
  size_t limit = rank == 0 ? n : std::min(rank, n);
  double total_a = 0.0, total_b = 0.0;
  for (double v : a.values) total_a += std::max(v, 0.0);
  for (double v : b.values) total_b += std::max(v, 0.0);
  double denom = total_a + total_b;
  if (denom <= 1e-300) return 1.0;  // Both segments are constant: identical.
  double sim = 0.0;
  for (size_t i = 0; i < limit; ++i) {
    double weight =
        (std::max(a.values[i], 0.0) + std::max(b.values[i], 0.0)) / denom;
    double dot = 0.0;
    for (size_t r = 0; r < n; ++r) {
      dot += a.vectors.At(r, i) * b.vectors.At(r, i);
    }
    sim += weight * std::fabs(dot);
  }
  return std::clamp(sim, 0.0, 1.0);
}

Result<double> WeightedSvdSimilarity::Similarity(
    const linalg::Matrix& a, const linalg::Matrix& b) const {
  AIMS_PROFILE_SCOPE("recognition.weighted_svd");
  AIMS_RETURN_NOT_OK(CheckSegments(a, b));
  AIMS_ASSIGN_OR_RETURN(linalg::EigenDecomposition ea, SegmentSpectrum(a));
  AIMS_ASSIGN_OR_RETURN(linalg::EigenDecomposition eb, SegmentSpectrum(b));
  return SpectraSimilarity(ea, eb, rank_);
}

Result<double> EuclideanSimilarity::Similarity(const linalg::Matrix& a,
                                               const linalg::Matrix& b) const {
  AIMS_RETURN_NOT_OK(CheckSegments(a, b));
  linalg::Matrix ra = ResampleRows(a, resample_frames_);
  linalg::Matrix rb = ResampleRows(b, resample_frames_);
  double dist = linalg::EuclideanDistance(ra.data(), rb.data());
  // Normalize by the number of entries so the score does not depend on the
  // resample resolution, then map distance to (0, 1].
  dist /= std::sqrt(static_cast<double>(ra.data().size()));
  return 1.0 / (1.0 + dist);
}

Result<double> DftSimilarity::Similarity(const linalg::Matrix& a,
                                         const linalg::Matrix& b) const {
  AIMS_RETURN_NOT_OK(CheckSegments(a, b));
  std::vector<double> fa, fb;
  for (size_t c = 0; c < a.cols(); ++c) {
    std::vector<double> feat_a = signal::DftFeatures(a.Col(c), k_);
    std::vector<double> feat_b = signal::DftFeatures(b.Col(c), k_);
    fa.insert(fa.end(), feat_a.begin(), feat_a.end());
    fb.insert(fb.end(), feat_b.begin(), feat_b.end());
  }
  double dist = linalg::EuclideanDistance(fa, fb) /
                std::sqrt(static_cast<double>(fa.size()));
  return 1.0 / (1.0 + dist);
}

Result<double> DwtSimilarity::Similarity(const linalg::Matrix& a,
                                         const linalg::Matrix& b) const {
  AIMS_RETURN_NOT_OK(CheckSegments(a, b));
  const signal::WaveletFilter haar =
      signal::WaveletFilter::Make(signal::WaveletKind::kHaar);
  linalg::Matrix ra = ResampleRows(a, resample_frames_);
  linalg::Matrix rb = ResampleRows(b, resample_frames_);
  std::vector<double> fa, fb;
  for (size_t c = 0; c < ra.cols(); ++c) {
    AIMS_ASSIGN_OR_RETURN(std::vector<double> ta,
                          signal::ForwardDwt(haar, ra.Col(c)));
    AIMS_ASSIGN_OR_RETURN(std::vector<double> tb,
                          signal::ForwardDwt(haar, rb.Col(c)));
    size_t keep = std::min(k_, ta.size());
    fa.insert(fa.end(), ta.begin(), ta.begin() + static_cast<ptrdiff_t>(keep));
    fb.insert(fb.end(), tb.begin(), tb.begin() + static_cast<ptrdiff_t>(keep));
  }
  double dist = linalg::EuclideanDistance(fa, fb) /
                std::sqrt(static_cast<double>(fa.size()));
  return 1.0 / (1.0 + dist);
}

}  // namespace aims::recognition
