#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"

/// \file classifiers.h
/// \brief Classifiers for the off-line immersidata analyses: the linear SVM
/// the ADHD study uses ("we successfully (with 86% accuracy) distinguished
/// hyperactive kids from normal ones by using a Support Vector Machine on
/// the motion speed of different trackers", Sec. 2.1) and a 1-NN baseline.

namespace aims::recognition {

/// \brief Feature standardization fitted on training data (z-scores).
struct FeatureScaler {
  std::vector<double> mean;
  std::vector<double> stddev;

  static FeatureScaler Fit(const std::vector<std::vector<double>>& rows);
  std::vector<double> Transform(const std::vector<double>& row) const;
};

/// \brief Training hyper-parameters for LinearSvm.
struct SvmOptions {
  double lambda = 0.01;  ///< L2 regularization strength.
  size_t epochs = 200;
  uint64_t seed = 7;
};

/// \brief Linear soft-margin SVM trained with Pegasos (stochastic
/// subgradient on the hinge loss).
class LinearSvm {
 public:
  using Options = SvmOptions;

  /// \param labels +1 / -1 per row.
  Status Train(const std::vector<std::vector<double>>& rows,
               const std::vector<int>& labels, Options options = {});

  /// Signed decision value w.x + b.
  double Decision(const std::vector<double>& row) const;
  /// Predicted label in {-1, +1}.
  int Predict(const std::vector<double>& row) const;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// \brief k-nearest-neighbour under Euclidean distance (majority vote,
/// ties broken toward the closest member). k = 1 is the classic 1-NN.
class NearestNeighbor {
 public:
  explicit NearestNeighbor(size_t k = 1) : k_(k) {}

  Status Train(std::vector<std::vector<double>> rows, std::vector<int> labels);
  Result<int> Predict(const std::vector<double>& row) const;

  size_t k() const { return k_; }

 private:
  size_t k_;
  std::vector<std::vector<double>> rows_;
  std::vector<int> labels_;
};

/// \brief Stratified k-fold cross-validated accuracy of a train/predict
/// pair. \p train_and_predict receives (train_rows, train_labels,
/// test_rows) and returns predicted labels.
struct CrossValidationResult {
  double accuracy = 0.0;
  std::vector<double> fold_accuracies;
};

CrossValidationResult CrossValidate(
    const std::vector<std::vector<double>>& rows,
    const std::vector<int>& labels, size_t folds, uint64_t seed,
    const std::function<std::vector<int>(
        const std::vector<std::vector<double>>&, const std::vector<int>&,
        const std::vector<std::vector<double>>&)>& train_and_predict);

}  // namespace aims::recognition
