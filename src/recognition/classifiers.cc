#include "recognition/classifiers.h"

#include <algorithm>
#include <map>
#include <cmath>
#include <functional>

#include "common/macros.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace aims::recognition {

FeatureScaler FeatureScaler::Fit(
    const std::vector<std::vector<double>>& rows) {
  FeatureScaler scaler;
  if (rows.empty()) return scaler;
  const size_t d = rows.front().size();
  scaler.mean.assign(d, 0.0);
  scaler.stddev.assign(d, 0.0);
  for (const auto& row : rows) {
    AIMS_CHECK(row.size() == d);
    for (size_t i = 0; i < d; ++i) scaler.mean[i] += row[i];
  }
  for (size_t i = 0; i < d; ++i) {
    scaler.mean[i] /= static_cast<double>(rows.size());
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < d; ++i) {
      double delta = row[i] - scaler.mean[i];
      scaler.stddev[i] += delta * delta;
    }
  }
  for (size_t i = 0; i < d; ++i) {
    scaler.stddev[i] =
        std::sqrt(scaler.stddev[i] / static_cast<double>(rows.size()));
    if (scaler.stddev[i] < 1e-12) scaler.stddev[i] = 1.0;
  }
  return scaler;
}

std::vector<double> FeatureScaler::Transform(
    const std::vector<double>& row) const {
  AIMS_CHECK(row.size() == mean.size());
  std::vector<double> out(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    out[i] = (row[i] - mean[i]) / stddev[i];
  }
  return out;
}

Status LinearSvm::Train(const std::vector<std::vector<double>>& rows,
                        const std::vector<int>& labels, Options options) {
  if (rows.empty() || rows.size() != labels.size()) {
    return Status::InvalidArgument("LinearSvm::Train: bad inputs");
  }
  const size_t d = rows.front().size();
  for (const auto& row : rows) {
    if (row.size() != d) {
      return Status::InvalidArgument("LinearSvm::Train: ragged features");
    }
  }
  for (int y : labels) {
    if (y != 1 && y != -1) {
      return Status::InvalidArgument("LinearSvm::Train: labels must be +/-1");
    }
  }
  weights_.assign(d, 0.0);
  bias_ = 0.0;
  Rng rng(options.seed);
  size_t t = 0;
  const size_t n = rows.size();
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    rng.Shuffle(&order);
    for (size_t i : order) {
      ++t;
      double eta = 1.0 / (options.lambda * static_cast<double>(t));
      double margin =
          static_cast<double>(labels[i]) *
          (linalg::Dot(weights_, rows[i]) + bias_);
      // Pegasos step: shrink, and also pull toward a violating example.
      for (double& w : weights_) w *= (1.0 - eta * options.lambda);
      if (margin < 1.0) {
        double y = static_cast<double>(labels[i]);
        for (size_t j = 0; j < d; ++j) {
          weights_[j] += eta * y * rows[i][j];
        }
        bias_ += eta * y;
      }
    }
  }
  return Status::OK();
}

double LinearSvm::Decision(const std::vector<double>& row) const {
  AIMS_CHECK(row.size() == weights_.size());
  return linalg::Dot(weights_, row) + bias_;
}

int LinearSvm::Predict(const std::vector<double>& row) const {
  return Decision(row) >= 0.0 ? 1 : -1;
}

Status NearestNeighbor::Train(std::vector<std::vector<double>> rows,
                              std::vector<int> labels) {
  if (rows.empty() || rows.size() != labels.size()) {
    return Status::InvalidArgument("NearestNeighbor::Train: bad inputs");
  }
  rows_ = std::move(rows);
  labels_ = std::move(labels);
  return Status::OK();
}

Result<int> NearestNeighbor::Predict(const std::vector<double>& row) const {
  if (rows_.empty()) {
    return Status::FailedPrecondition("NearestNeighbor::Predict before Train");
  }
  // Partial sort of (distance, index) up to k neighbours.
  std::vector<std::pair<double, size_t>> ranked(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    ranked[i] = {linalg::EuclideanDistance(row, rows_[i]), i};
  }
  size_t k = std::min(std::max<size_t>(k_, 1), rows_.size());
  std::partial_sort(ranked.begin(),
                    ranked.begin() + static_cast<ptrdiff_t>(k), ranked.end());
  // Majority vote; the nearest member breaks ties.
  std::map<int, size_t> votes;
  for (size_t i = 0; i < k; ++i) ++votes[labels_[ranked[i].second]];
  int best_label = labels_[ranked[0].second];
  size_t best_votes = votes[best_label];
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best_votes = count;
      best_label = label;
    }
  }
  return best_label;
}

CrossValidationResult CrossValidate(
    const std::vector<std::vector<double>>& rows,
    const std::vector<int>& labels, size_t folds, uint64_t seed,
    const std::function<std::vector<int>(
        const std::vector<std::vector<double>>&, const std::vector<int>&,
        const std::vector<std::vector<double>>&)>& train_and_predict) {
  AIMS_CHECK(rows.size() == labels.size());
  AIMS_CHECK(folds >= 2 && rows.size() >= folds);
  // Stratified assignment: shuffle within each class, deal round-robin.
  Rng rng(seed);
  std::vector<size_t> fold_of(rows.size(), 0);
  for (int cls : {-1, 1}) {
    std::vector<size_t> members;
    for (size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == cls) members.push_back(i);
    }
    rng.Shuffle(&members);
    for (size_t j = 0; j < members.size(); ++j) {
      fold_of[members[j]] = j % folds;
    }
  }
  CrossValidationResult result;
  size_t total_correct = 0;
  size_t total_tested = 0;
  for (size_t fold = 0; fold < folds; ++fold) {
    std::vector<std::vector<double>> train_rows, test_rows;
    std::vector<int> train_labels, test_labels;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (fold_of[i] == fold) {
        test_rows.push_back(rows[i]);
        test_labels.push_back(labels[i]);
      } else {
        train_rows.push_back(rows[i]);
        train_labels.push_back(labels[i]);
      }
    }
    if (test_rows.empty()) continue;
    std::vector<int> predicted =
        train_and_predict(train_rows, train_labels, test_rows);
    AIMS_CHECK(predicted.size() == test_labels.size());
    size_t correct = 0;
    for (size_t i = 0; i < predicted.size(); ++i) {
      if (predicted[i] == test_labels[i]) ++correct;
    }
    result.fold_accuracies.push_back(static_cast<double>(correct) /
                                     static_cast<double>(test_labels.size()));
    total_correct += correct;
    total_tested += test_labels.size();
  }
  result.accuracy = total_tested
                        ? static_cast<double>(total_correct) /
                              static_cast<double>(total_tested)
                        : 0.0;
  return result;
}

}  // namespace aims::recognition
