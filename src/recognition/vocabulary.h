#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "recognition/similarity.h"

/// \file vocabulary.h
/// \brief The "library of known motions, termed vocabulary" (Sec. 2.2):
/// labelled template segments plus nearest-template classification under a
/// pluggable similarity measure.

namespace aims::recognition {

/// \brief One labelled template.
struct VocabularyEntry {
  std::string label;
  linalg::Matrix segment;  ///< frames x channels exemplar.
};

/// \brief Classification outcome.
struct Classification {
  std::string label;
  double score = 0.0;        ///< Similarity to the winning template.
  double runner_up = 0.0;    ///< Best score among other labels.

  /// Margin between the winner and the best other label; small margins
  /// flag ambiguous inputs.
  double margin() const { return score - runner_up; }
};

/// \brief A labelled template library with nearest-template queries.
class Vocabulary {
 public:
  /// Adds a template (multiple exemplars per label are allowed).
  void Add(std::string label, linalg::Matrix segment);

  size_t size() const { return entries_.size(); }
  const std::vector<VocabularyEntry>& entries() const { return entries_; }
  /// Distinct labels, in insertion order.
  std::vector<std::string> Labels() const;

  /// \brief Classifies \p segment by the highest-similarity template.
  Result<Classification> Classify(const linalg::Matrix& segment,
                                  const SimilarityMeasure& measure) const;

  /// \brief Similarity of \p segment to every entry (for the stream
  /// recognizer's accumulation scheme).
  Result<std::vector<double>> Scores(const linalg::Matrix& segment,
                                     const SimilarityMeasure& measure) const;

 private:
  std::vector<VocabularyEntry> entries_;
};

}  // namespace aims::recognition
