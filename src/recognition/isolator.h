#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "recognition/vocabulary.h"
#include "streams/sample.h"

/// \file isolator.h
/// \brief Real-time pattern isolation + recognition over a continuous
/// multi-sensor stream (Sec. 3.4). The chicken-and-egg problem: a pattern
/// must be isolated before it can be recognized, but recognizing it is how
/// one knows where it ends. The paper's approach: "periodically compare
/// sensor streams with each member of the vocabulary using the weighted-SVD
/// measure, maintain the accumulated similarity values", and a heuristic
/// that "in real-time investigates the accumulated values and
/// simultaneously recognizes and isolates the input patterns" — the stream
/// accumulates positive information about the present pattern and negative
/// information about absent ones.
///
/// This implementation realizes that design: an activity detector opens and
/// closes candidate segments (signing motion vs rest), while within a
/// candidate segment the per-label accumulated evidence
///    acc_m += (sim_m - mean_over_labels(sim))
/// grows for the present pattern and shrinks for absent ones; at the
/// segment close the recognizer emits the evidence argmax, provided the
/// evidence passes a confidence threshold.

namespace aims::recognition {

/// \brief A recognized, isolated pattern.
struct RecognitionEvent {
  std::string label;
  size_t start_frame = 0;  ///< Inclusive.
  size_t end_frame = 0;    ///< Exclusive.
  double confidence = 0.0; ///< Winning accumulated evidence share.
};

/// \brief Tuning knobs for the stream recognizer.
struct StreamRecognizerConfig {
  /// Frames between similarity evaluations (the paper's "periodically").
  size_t evaluation_stride = 8;
  /// Activity detector: rolling window length in frames.
  size_t activity_window = 12;
  /// Activity is the mean rolling standard deviation of the most active
  /// `activity_top_k` channels — a motion that drives only a few of the 28
  /// sensors (e.g. a wrist twist) must still register.
  size_t activity_top_k = 4;
  /// Hysteresis thresholds on that activity score.
  double activity_on = 4.0;
  double activity_off = 2.5;
  /// The segment only closes after this many *consecutive* frames below
  /// activity_off — momentary dips inside a motion (and the short lull
  /// between a motion's end and the hand's return to rest) must not split
  /// it. At the glove's 100 Hz clock this is a quarter second.
  size_t off_debounce_frames = 25;
  /// Segments shorter than this many frames are discarded as glitches.
  size_t min_segment_frames = 20;
  /// Minimum winning-evidence share (0..1) to emit an event.
  double min_confidence = 0.0;
};

/// \brief Online recognizer: feed frames, receive recognition events.
class StreamRecognizer {
 public:
  /// \param vocabulary template library (not owned).
  /// \param measure similarity measure (not owned).
  StreamRecognizer(const Vocabulary* vocabulary,
                   const SimilarityMeasure* measure,
                   StreamRecognizerConfig config);

  /// Pushes one frame; returns an event when a pattern was just isolated
  /// and recognized.
  Result<std::optional<RecognitionEvent>> Push(const streams::Frame& frame);

  /// Closes any open segment (end of stream).
  Result<std::optional<RecognitionEvent>> Finish();

  /// Accumulated per-entry evidence of the currently open segment (empty
  /// when idle) — the trajectory the paper's information-theoretic
  /// heuristic inspects.
  const std::vector<double>& accumulated_evidence() const {
    return evidence_;
  }
  bool segment_open() const { return in_segment_; }
  size_t frames_seen() const { return frames_seen_; }

 private:
  double CurrentActivity() const;
  Result<std::optional<RecognitionEvent>> CloseSegment();

  const Vocabulary* vocabulary_;
  const SimilarityMeasure* measure_;
  StreamRecognizerConfig config_;

  std::deque<streams::Frame> recent_;   ///< Activity-detector window.
  std::vector<streams::Frame> segment_; ///< Frames of the open segment.
  std::vector<double> evidence_;
  bool in_segment_ = false;
  size_t segment_start_ = 0;
  size_t frames_seen_ = 0;
  size_t frames_since_eval_ = 0;
  size_t low_activity_run_ = 0;
};

}  // namespace aims::recognition
