#pragma once

#include <map>
#include <tuple>
#include <string>
#include <vector>

#include "common/status.h"

/// \file confusion.h
/// \brief Confusion-matrix bookkeeping for the recognition experiments:
/// which signs get mistaken for which is the actionable detail behind an
/// accuracy number (e.g. GREEN/G confusions reveal that a measure ignores
/// motion, YES/A confusions that it ignores pose).

namespace aims::recognition {

/// \brief Label-by-label confusion counts with derived statistics.
class ConfusionMatrix {
 public:
  /// Registers one (truth, predicted) observation; labels are created on
  /// first use.
  void Add(const std::string& truth, const std::string& predicted);

  size_t total() const { return total_; }
  /// Overall fraction of observations on the diagonal.
  double Accuracy() const;
  /// Recall of one label (0 when the label was never the truth).
  double Recall(const std::string& label) const;
  /// Precision of one label (0 when the label was never predicted).
  double Precision(const std::string& label) const;
  /// Labels in first-seen order.
  const std::vector<std::string>& labels() const { return labels_; }
  /// Count of (truth, predicted).
  size_t Count(const std::string& truth, const std::string& predicted) const;

  /// \brief The most frequent off-diagonal cells, worst first, as
  /// (truth, predicted, count).
  std::vector<std::tuple<std::string, std::string, size_t>> TopConfusions(
      size_t k) const;

  /// \brief Renders the full matrix as an aligned ASCII table (rows =
  /// truth, columns = predicted).
  std::string ToString() const;

 private:
  size_t IndexOf(const std::string& label);

  std::vector<std::string> labels_;
  std::map<std::string, size_t> index_;
  /// counts_[truth][predicted], grown on demand.
  std::vector<std::vector<size_t>> counts_;
  size_t total_ = 0;
};

}  // namespace aims::recognition
