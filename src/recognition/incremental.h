#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "common/status.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "recognition/isolator.h"
#include "recognition/vocabulary.h"
#include "streams/sample.h"

/// \file incremental.h
/// \brief Incremental SVD for the online recognizer (Sec. 3.4.1): "we would
/// like to explore techniques for computing SVD incrementally, i.e.,
/// computation of SVD utilizing results that have already been computed in
/// the earlier steps thus reducing the overall computation cost
/// considerably."
///
/// Two pieces:
///  - IncrementalCovariance maintains the running first and second moments
///    of the open segment, so the covariance after every new frame costs
///    O(k^2) instead of O(frames * k^2).
///  - SpectralVocabulary pre-diagonalizes every template once, so a
///    periodic evaluation costs one eigen-decomposition of the *segment*
///    (O(k^3)) plus O(|vocab| * k^2) dot products — independent of the
///    segment length and of the number of frames since the last evaluation.

namespace aims::recognition {

/// \brief Streaming mean/second-moment accumulator over k channels.
class IncrementalCovariance {
 public:
  explicit IncrementalCovariance(size_t channels);

  /// Adds one frame (O(k^2)).
  void Add(const std::vector<double>& values);

  size_t count() const { return count_; }
  size_t channels() const { return channels_; }

  /// Sample covariance of everything added so far. Requires count() >= 2.
  Result<linalg::Matrix> Covariance() const;

  /// Eigen-decomposition of the covariance (recomputed on demand).
  Result<linalg::EigenDecomposition> Spectrum() const;

  /// Clears the accumulator; with \p channels != 0, also resizes it.
  void Reset(size_t channels = 0);

 private:
  size_t channels_;
  size_t count_ = 0;
  std::vector<double> sum_;
  linalg::Matrix second_moment_;  ///< Sum of x x^T.
};

/// \brief A vocabulary whose template spectra are computed once.
class SpectralVocabulary {
 public:
  /// Diagonalizes every entry of \p vocabulary (which must outlive this).
  static Result<SpectralVocabulary> Make(const Vocabulary* vocabulary,
                                         size_t rank = 0);

  size_t size() const { return spectra_.size(); }
  const Vocabulary& vocabulary() const { return *vocabulary_; }

  /// Weighted-SVD similarity of a segment spectrum to every template.
  std::vector<double> Scores(const linalg::EigenDecomposition& segment) const;

 private:
  SpectralVocabulary(const Vocabulary* vocabulary, size_t rank)
      : vocabulary_(vocabulary), rank_(rank) {}

  const Vocabulary* vocabulary_;
  size_t rank_;
  std::vector<linalg::EigenDecomposition> spectra_;
};

/// \brief Drop-in variant of StreamRecognizer that uses the incremental
/// covariance and the pre-diagonalized vocabulary. Behaviour matches
/// StreamRecognizer with WeightedSvdSimilarity up to the covariance of the
/// open segment being computed over all frames since the segment opened
/// (identical), at a per-evaluation cost independent of segment length.
class IncrementalStreamRecognizer {
 public:
  IncrementalStreamRecognizer(const SpectralVocabulary* vocabulary,
                              StreamRecognizerConfig config);

  Result<std::optional<RecognitionEvent>> Push(const streams::Frame& frame);
  Result<std::optional<RecognitionEvent>> Finish();

  bool segment_open() const { return in_segment_; }
  size_t frames_seen() const { return frames_seen_; }
  const std::vector<double>& accumulated_evidence() const {
    return evidence_;
  }

 private:
  double CurrentActivity() const;
  Result<std::optional<RecognitionEvent>> CloseSegment();
  Status AccumulateEvidence();

  const SpectralVocabulary* vocabulary_;
  StreamRecognizerConfig config_;
  std::deque<streams::Frame> recent_;
  IncrementalCovariance covariance_;
  size_t segment_frames_ = 0;
  std::vector<double> evidence_;
  bool in_segment_ = false;
  bool evidence_accumulated_ = false;
  size_t segment_start_ = 0;
  size_t frames_seen_ = 0;
  size_t frames_since_eval_ = 0;
  size_t low_activity_run_ = 0;
};

}  // namespace aims::recognition
