#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"

/// \file similarity.h
/// \brief Similarity measures between multi-sensor segments (Sec. 3.4).
/// A segment is a (frames x channels) matrix. The paper's measure is the
/// *weighted-sum SVD*: compare corresponding eigenvectors of the two
/// segments' covariance structures, weighted by their eigenvalues. It
/// "works directly on an aggregation of several sensor streams", performs
/// dimension reduction, and — because covariance is length-normalized — it
/// compares sequences of different durations, which Euclidean distance
/// cannot.

namespace aims::recognition {

/// \brief Interface: similarity in [0, 1], higher = more alike.
class SimilarityMeasure {
 public:
  virtual ~SimilarityMeasure() = default;
  virtual const char* name() const = 0;
  /// \param a,b segments with equal channel counts (rows may differ).
  virtual Result<double> Similarity(const linalg::Matrix& a,
                                    const linalg::Matrix& b) const = 0;
};

/// \brief The paper's weighted-sum SVD measure.
///
/// sim(A, B) = sum_i w_i |u_i . v_i|, where u_i, v_i are the i-th
/// eigenvectors of the two column covariance matrices and
/// w_i = (lambda^A_i + lambda^B_i) / (sum lambda^A + sum lambda^B).
/// Eigenvector dot products lie in [-1, 1]; the absolute value makes the
/// measure sign-invariant (eigenvectors have arbitrary sign).
class WeightedSvdSimilarity : public SimilarityMeasure {
 public:
  /// \param rank compare only the top `rank` eigenvectors (0 = all):
  /// the measure's built-in dimensionality reduction.
  explicit WeightedSvdSimilarity(size_t rank = 0) : rank_(rank) {}
  const char* name() const override { return "weighted-svd"; }
  Result<double> Similarity(const linalg::Matrix& a,
                            const linalg::Matrix& b) const override;

  /// The eigen-decomposition a segment contributes (exposed so callers can
  /// cache it per vocabulary entry).
  static Result<linalg::EigenDecomposition> SegmentSpectrum(
      const linalg::Matrix& segment);

  /// Similarity from two precomputed spectra.
  static double SpectraSimilarity(const linalg::EigenDecomposition& a,
                                  const linalg::EigenDecomposition& b,
                                  size_t rank);

 private:
  size_t rank_;
};

/// \brief Euclidean baseline: both segments are resampled to a fixed frame
/// count (the measure *requires* equal lengths — the drawback the paper
/// calls out), flattened, and compared by L2 distance mapped to (0, 1].
class EuclideanSimilarity : public SimilarityMeasure {
 public:
  explicit EuclideanSimilarity(size_t resample_frames = 32)
      : resample_frames_(resample_frames) {}
  const char* name() const override { return "euclidean"; }
  Result<double> Similarity(const linalg::Matrix& a,
                            const linalg::Matrix& b) const override;

 private:
  size_t resample_frames_;
};

/// \brief DFT baseline (Agrawal/Faloutsos/Swami): per-channel magnitudes of
/// the first k Fourier coefficients, compared by L2 distance.
class DftSimilarity : public SimilarityMeasure {
 public:
  explicit DftSimilarity(size_t coefficients_per_channel = 4)
      : k_(coefficients_per_channel) {}
  const char* name() const override { return "dft"; }
  Result<double> Similarity(const linalg::Matrix& a,
                            const linalg::Matrix& b) const override;

 private:
  size_t k_;
};

/// \brief DWT baseline (Chan/Fu): per-channel leading Haar coefficients of
/// the resampled series, compared by L2 distance.
class DwtSimilarity : public SimilarityMeasure {
 public:
  explicit DwtSimilarity(size_t coefficients_per_channel = 8,
                         size_t resample_frames = 32)
      : k_(coefficients_per_channel), resample_frames_(resample_frames) {}
  const char* name() const override { return "dwt"; }
  Result<double> Similarity(const linalg::Matrix& a,
                            const linalg::Matrix& b) const override;

 private:
  size_t k_;
  size_t resample_frames_;
};

/// \brief Resamples a segment to a fixed number of rows by per-channel
/// linear interpolation (shared by the fixed-length baselines).
linalg::Matrix ResampleRows(const linalg::Matrix& segment, size_t rows);

}  // namespace aims::recognition
