#include "recognition/confusion.h"

#include <algorithm>
#include <sstream>

#include "common/macros.h"

namespace aims::recognition {

size_t ConfusionMatrix::IndexOf(const std::string& label) {
  auto [it, inserted] = index_.try_emplace(label, labels_.size());
  if (inserted) {
    labels_.push_back(label);
    for (auto& row : counts_) row.resize(labels_.size(), 0);
    counts_.emplace_back(labels_.size(), 0);
  }
  return it->second;
}

void ConfusionMatrix::Add(const std::string& truth,
                          const std::string& predicted) {
  size_t t = IndexOf(truth);
  size_t p = IndexOf(predicted);
  // IndexOf may have grown the matrix after fetching t's row.
  counts_[t].resize(labels_.size(), 0);
  ++counts_[t][p];
  ++total_;
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  size_t diagonal = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (i < counts_[i].size()) diagonal += counts_[i][i];
  }
  return static_cast<double>(diagonal) / static_cast<double>(total_);
}

size_t ConfusionMatrix::Count(const std::string& truth,
                              const std::string& predicted) const {
  auto t = index_.find(truth);
  auto p = index_.find(predicted);
  if (t == index_.end() || p == index_.end()) return 0;
  if (t->second >= counts_.size()) return 0;
  if (p->second >= counts_[t->second].size()) return 0;
  return counts_[t->second][p->second];
}

double ConfusionMatrix::Recall(const std::string& label) const {
  auto it = index_.find(label);
  if (it == index_.end() || it->second >= counts_.size()) return 0.0;
  const auto& row = counts_[it->second];
  size_t row_total = 0;
  for (size_t c : row) row_total += c;
  if (row_total == 0) return 0.0;
  size_t hit = it->second < row.size() ? row[it->second] : 0;
  return static_cast<double>(hit) / static_cast<double>(row_total);
}

double ConfusionMatrix::Precision(const std::string& label) const {
  auto it = index_.find(label);
  if (it == index_.end()) return 0.0;
  size_t column_total = 0;
  size_t hit = 0;
  for (size_t t = 0; t < counts_.size(); ++t) {
    if (it->second < counts_[t].size()) {
      column_total += counts_[t][it->second];
      if (t == it->second) hit = counts_[t][it->second];
    }
  }
  if (column_total == 0) return 0.0;
  return static_cast<double>(hit) / static_cast<double>(column_total);
}

std::vector<std::tuple<std::string, std::string, size_t>>
ConfusionMatrix::TopConfusions(size_t k) const {
  std::vector<std::tuple<std::string, std::string, size_t>> cells;
  for (size_t t = 0; t < counts_.size(); ++t) {
    for (size_t p = 0; p < counts_[t].size(); ++p) {
      if (t != p && counts_[t][p] > 0) {
        cells.emplace_back(labels_[t], labels_[p], counts_[t][p]);
      }
    }
  }
  std::sort(cells.begin(), cells.end(), [](const auto& a, const auto& b) {
    return std::get<2>(a) > std::get<2>(b);
  });
  if (cells.size() > k) cells.resize(k);
  return cells;
}

std::string ConfusionMatrix::ToString() const {
  size_t width = 5;
  for (const std::string& label : labels_) {
    width = std::max(width, label.size() + 1);
  }
  std::ostringstream out;
  auto pad = [&](const std::string& s) {
    out << s << std::string(width - std::min(width, s.size()), ' ');
  };
  pad("t\\p");
  for (const std::string& label : labels_) pad(label);
  out << "\n";
  for (size_t t = 0; t < labels_.size(); ++t) {
    pad(labels_[t]);
    for (size_t p = 0; p < labels_.size(); ++p) {
      size_t count = t < counts_.size() && p < counts_[t].size()
                         ? counts_[t][p]
                         : 0;
      pad(count == 0 ? (t == p ? "0" : ".") : std::to_string(count));
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace aims::recognition
