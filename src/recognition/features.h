#pragma once

#include <vector>

#include "common/status.h"
#include "synth/virtual_classroom.h"

/// \file features.h
/// \brief Feature extraction for the ADHD study (Sec. 2.1): the paper's SVM
/// operates on "the motion speed of different trackers". Each session is
/// summarized by per-tracker speed statistics (translation and rotation)
/// plus task-performance features.

namespace aims::recognition {

/// \brief Per-session feature vector + binary label (+1 = ADHD, -1 =
/// control).
struct LabelledFeatures {
  std::vector<double> features;
  int label = 0;
};

/// \brief Translation-speed series of one tracker within a session:
/// ||delta position|| * sample rate, one value per frame transition.
std::vector<double> TrackerSpeedSeries(const synth::ClassroomSession& session,
                                       size_t tracker);

/// \brief Rotation-speed series (degrees/s) of one tracker.
std::vector<double> TrackerRotationSpeedSeries(
    const synth::ClassroomSession& session, size_t tracker);

/// \brief Motion-speed statistics per tracker: for each of the 4 trackers,
/// {mean, stddev, max, 95th percentile} of translation speed and
/// {mean, stddev} of rotation speed — 24 features.
std::vector<double> MotionSpeedFeatures(const synth::ClassroomSession& session);

/// \brief Task-performance features: hit rate, mean/stddev reaction time —
/// "the set of answers to task questions ... represented as a feature
/// vector per subject".
std::vector<double> TaskPerformanceFeatures(
    const synth::ClassroomSession& session);

/// \brief Builds the labelled dataset for a cohort; \p include_task adds
/// TaskPerformanceFeatures to the motion features.
std::vector<LabelledFeatures> BuildAdhdDataset(
    const std::vector<synth::ClassroomSession>& cohort,
    bool include_task = false);

}  // namespace aims::recognition
