#include "recognition/vocabulary.h"

#include <algorithm>
#include <map>

#include "common/macros.h"

namespace aims::recognition {

void Vocabulary::Add(std::string label, linalg::Matrix segment) {
  AIMS_CHECK(!segment.empty());
  if (!entries_.empty()) {
    AIMS_CHECK(segment.cols() == entries_.front().segment.cols());
  }
  entries_.push_back(VocabularyEntry{std::move(label), std::move(segment)});
}

std::vector<std::string> Vocabulary::Labels() const {
  std::vector<std::string> labels;
  for (const VocabularyEntry& e : entries_) {
    if (std::find(labels.begin(), labels.end(), e.label) == labels.end()) {
      labels.push_back(e.label);
    }
  }
  return labels;
}

Result<std::vector<double>> Vocabulary::Scores(
    const linalg::Matrix& segment, const SimilarityMeasure& measure) const {
  if (entries_.empty()) {
    return Status::FailedPrecondition("Vocabulary::Scores: empty vocabulary");
  }
  std::vector<double> scores(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    AIMS_ASSIGN_OR_RETURN(scores[i],
                          measure.Similarity(segment, entries_[i].segment));
  }
  return scores;
}

Result<Classification> Vocabulary::Classify(
    const linalg::Matrix& segment, const SimilarityMeasure& measure) const {
  AIMS_ASSIGN_OR_RETURN(std::vector<double> scores, Scores(segment, measure));
  // Best score per label (multiple exemplars vote by their maximum).
  std::map<std::string, double> per_label;
  for (size_t i = 0; i < entries_.size(); ++i) {
    auto [it, inserted] = per_label.try_emplace(entries_[i].label, scores[i]);
    if (!inserted) it->second = std::max(it->second, scores[i]);
  }
  Classification out;
  out.score = -1.0;
  for (const auto& [label, score] : per_label) {
    if (score > out.score) {
      out.runner_up = out.score;
      out.score = score;
      out.label = label;
    } else {
      out.runner_up = std::max(out.runner_up, score);
    }
  }
  return out;
}

}  // namespace aims::recognition
