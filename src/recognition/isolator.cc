#include "recognition/isolator.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/stats.h"

namespace aims::recognition {

StreamRecognizer::StreamRecognizer(const Vocabulary* vocabulary,
                                   const SimilarityMeasure* measure,
                                   StreamRecognizerConfig config)
    : vocabulary_(vocabulary), measure_(measure), config_(config) {
  AIMS_CHECK(vocabulary_ != nullptr && measure_ != nullptr);
  AIMS_CHECK(config_.activity_window >= 2);
  AIMS_CHECK(config_.evaluation_stride >= 1);
}

double StreamRecognizer::CurrentActivity() const {
  if (recent_.size() < 2) return 0.0;
  // Mean rolling standard deviation of the top-k most active channels.
  const size_t channels = recent_.front().values.size();
  std::vector<double> stddevs(channels);
  for (size_t c = 0; c < channels; ++c) {
    RunningStats stats;
    for (const streams::Frame& f : recent_) stats.Add(f.values[c]);
    stddevs[c] = stats.stddev();
  }
  size_t k = std::min(std::max<size_t>(config_.activity_top_k, 1), channels);
  std::partial_sort(stddevs.begin(),
                    stddevs.begin() + static_cast<ptrdiff_t>(k),
                    stddevs.end(), std::greater<double>());
  double total = 0.0;
  for (size_t i = 0; i < k; ++i) total += stddevs[i];
  return total / static_cast<double>(k);
}

Result<std::optional<RecognitionEvent>> StreamRecognizer::Push(
    const streams::Frame& frame) {
  ++frames_seen_;
  recent_.push_back(frame);
  if (recent_.size() > config_.activity_window) recent_.pop_front();

  double activity = CurrentActivity();
  std::optional<RecognitionEvent> event;

  if (!in_segment_) {
    if (activity >= config_.activity_on) {
      in_segment_ = true;
      // Back-date the segment start to the window start: the onset frames
      // are already inside the activity window.
      segment_start_ = frames_seen_ >= recent_.size()
                           ? frames_seen_ - recent_.size()
                           : 0;
      segment_.assign(recent_.begin(), recent_.end());
      evidence_.assign(vocabulary_->size(), 0.0);
      frames_since_eval_ = 0;
      low_activity_run_ = 0;
    }
    return event;
  }

  segment_.push_back(frame);
  ++frames_since_eval_;

  // Periodic evidence accumulation: similarity of the segment so far to
  // every vocabulary member; the present pattern accrues positive
  // information, absent ones negative.
  if (frames_since_eval_ >= config_.evaluation_stride &&
      segment_.size() >= config_.min_segment_frames) {
    frames_since_eval_ = 0;
    linalg::Matrix m(segment_.size(), segment_.front().values.size());
    for (size_t r = 0; r < segment_.size(); ++r) {
      m.SetRow(r, segment_[r].values);
    }
    AIMS_ASSIGN_OR_RETURN(std::vector<double> scores,
                          vocabulary_->Scores(m, *measure_));
    double mean = 0.0;
    for (double s : scores) mean += s;
    mean /= static_cast<double>(scores.size());
    for (size_t i = 0; i < scores.size(); ++i) {
      evidence_[i] += scores[i] - mean;
    }
  }

  if (activity <= config_.activity_off) {
    ++low_activity_run_;
    if (low_activity_run_ >= config_.off_debounce_frames) {
      return CloseSegment();
    }
  } else {
    low_activity_run_ = 0;
  }
  return event;
}

Result<std::optional<RecognitionEvent>> StreamRecognizer::CloseSegment() {
  in_segment_ = false;
  std::vector<streams::Frame> segment;
  segment.swap(segment_);
  std::vector<double> evidence;
  evidence.swap(evidence_);

  if (segment.size() < config_.min_segment_frames) {
    return std::optional<RecognitionEvent>{};
  }
  // If the segment closed before any periodic evaluation fired, evaluate
  // once now so short-but-valid patterns are still recognized.
  bool have_evidence = false;
  for (double e : evidence) {
    if (e != 0.0) {
      have_evidence = true;
      break;
    }
  }
  if (!have_evidence) {
    linalg::Matrix m(segment.size(), segment.front().values.size());
    for (size_t r = 0; r < segment.size(); ++r) {
      m.SetRow(r, segment[r].values);
    }
    AIMS_ASSIGN_OR_RETURN(std::vector<double> scores,
                          vocabulary_->Scores(m, *measure_));
    double mean = 0.0;
    for (double s : scores) mean += s;
    mean /= static_cast<double>(scores.size());
    evidence.resize(scores.size());
    for (size_t i = 0; i < scores.size(); ++i) evidence[i] = scores[i] - mean;
  }

  size_t best = 0;
  for (size_t i = 1; i < evidence.size(); ++i) {
    if (evidence[i] > evidence[best]) best = i;
  }
  // Confidence: the winner's share of the positive evidence mass.
  double positive = 0.0;
  for (double e : evidence) {
    if (e > 0.0) positive += e;
  }
  double confidence = positive > 0.0 ? evidence[best] / positive : 0.0;
  if (confidence < config_.min_confidence || evidence[best] <= 0.0) {
    return std::optional<RecognitionEvent>{};
  }
  RecognitionEvent event;
  event.label = vocabulary_->entries()[best].label;
  event.start_frame = segment_start_;
  event.end_frame = frames_seen_;
  event.confidence = confidence;
  return std::optional<RecognitionEvent>{event};
}

Result<std::optional<RecognitionEvent>> StreamRecognizer::Finish() {
  if (!in_segment_) return std::optional<RecognitionEvent>{};
  return CloseSegment();
}

}  // namespace aims::recognition
