#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "recognition/similarity.h"
#include "recognition/vocabulary.h"

/// \file effectiveness.h
/// \brief Measuring the effectiveness of similarity measures (Sec. 3.4.1):
/// "we believe that our information-theory based heuristic can be evolved
/// into a metric to measure the effectiveness of different similarity
/// measures." A measure is effective when, for labelled inputs, its score
/// for the true class separates cleanly from its scores for every other
/// class — before any threshold is chosen.

namespace aims::recognition {

/// \brief Separability statistics of one measure on one labelled test set.
struct EffectivenessReport {
  std::string measure;
  /// P(correct-template score > best-wrong-template score): the
  /// ranking-accuracy / AUC-style headline number in [0, 1].
  double ranking_accuracy = 0.0;
  /// Mean margin between the correct score and the best wrong score.
  double mean_margin = 0.0;
  /// Margin normalized by its own spread (a d'-style signal-to-noise
  /// figure; > 1 means the decision boundary is comfortably wide).
  double margin_snr = 0.0;
  /// Mean information gain per observation, in nats: the average
  /// log-likelihood ratio log(s_correct / mean(s_wrong)) — the
  /// "accumulation of information about the pattern currently present"
  /// per evaluation of the stream heuristic.
  double information_gain = 0.0;
};

/// \brief One labelled test item.
struct LabelledSegment {
  std::string label;
  linalg::Matrix segment;
};

/// \brief Scores a measure against a vocabulary on labelled segments.
/// Every test label must exist in the vocabulary.
Result<EffectivenessReport> MeasureEffectiveness(
    const Vocabulary& vocabulary, const SimilarityMeasure& measure,
    const std::vector<LabelledSegment>& test_set);

}  // namespace aims::recognition
