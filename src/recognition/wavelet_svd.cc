#include "recognition/wavelet_svd.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include "obs/profile.h"
#include "linalg/eigen.h"
#include "recognition/similarity.h"
#include "signal/dwt.h"

namespace aims::recognition {

Result<linalg::Matrix> TransformSegment(const signal::WaveletFilter& filter,
                                        const linalg::Matrix& segment) {
  AIMS_PROFILE_SCOPE("recognition.transform_segment");
  if (segment.rows() < 2) {
    return Status::InvalidArgument("TransformSegment: need >= 2 frames");
  }
  size_t padded = 1;
  while (padded < segment.rows()) padded <<= 1;
  linalg::Matrix out(padded, segment.cols());
  for (size_t c = 0; c < segment.cols(); ++c) {
    std::vector<double> channel = segment.Col(c);
    double mean = 0.0;
    for (double v : channel) mean += v;
    mean /= static_cast<double>(channel.size());
    std::vector<double> padded_channel(padded, 0.0);
    for (size_t r = 0; r < channel.size(); ++r) {
      padded_channel[r] = channel[r] - mean;
    }
    AIMS_ASSIGN_OR_RETURN(std::vector<double> transformed,
                          signal::ForwardDwt(filter, padded_channel));
    for (size_t r = 0; r < padded; ++r) out.At(r, c) = transformed[r];
  }
  return out;
}

Result<linalg::Matrix> CovarianceFromWavelets(const linalg::Matrix& transformed,
                                              size_t keep_top_k) {
  if (transformed.rows() < 2) {
    return Status::InvalidArgument("CovarianceFromWavelets: too few rows");
  }
  const size_t rows = transformed.rows();
  const size_t cols = transformed.cols();
  std::vector<size_t> selected(rows);
  std::iota(selected.begin(), selected.end(), 0);
  if (keep_top_k > 0 && keep_top_k < rows) {
    // Global magnitude: L2 energy of the coefficient row across channels.
    std::vector<double> energy(rows, 0.0);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        energy[r] += transformed.At(r, c) * transformed.At(r, c);
      }
    }
    std::sort(selected.begin(), selected.end(),
              [&](size_t a, size_t b) { return energy[a] > energy[b]; });
    selected.resize(keep_top_k);
  }
  // Channels were mean-centered before transformation, so the covariance is
  // just the (possibly truncated) Gram of the coefficients. The divisor
  // uses the retained coefficient count; any consistent scale cancels in
  // the eigenvector-based similarity.
  linalg::Matrix cov(cols, cols);
  for (size_t r : selected) {
    for (size_t i = 0; i < cols; ++i) {
      double a = transformed.At(r, i);
      if (a == 0.0) continue;
      for (size_t j = i; j < cols; ++j) {
        cov.At(i, j) += a * transformed.At(r, j);
      }
    }
  }
  double scale = 1.0 / static_cast<double>(rows - 1);
  for (size_t i = 0; i < cols; ++i) {
    for (size_t j = i; j < cols; ++j) {
      cov.At(i, j) *= scale;
      cov.At(j, i) = cov.At(i, j);
    }
  }
  return cov;
}

Result<double> WaveletDomainSimilarity(const signal::WaveletFilter& filter,
                                       const linalg::Matrix& segment_a,
                                       const linalg::Matrix& segment_b,
                                       size_t rank, size_t keep_top_k) {
  if (segment_a.cols() != segment_b.cols()) {
    return Status::InvalidArgument(
        "WaveletDomainSimilarity: channel count mismatch");
  }
  AIMS_ASSIGN_OR_RETURN(linalg::Matrix ta, TransformSegment(filter, segment_a));
  AIMS_ASSIGN_OR_RETURN(linalg::Matrix tb, TransformSegment(filter, segment_b));
  AIMS_ASSIGN_OR_RETURN(linalg::Matrix ca,
                        CovarianceFromWavelets(ta, keep_top_k));
  AIMS_ASSIGN_OR_RETURN(linalg::Matrix cb,
                        CovarianceFromWavelets(tb, keep_top_k));
  AIMS_ASSIGN_OR_RETURN(linalg::EigenDecomposition ea,
                        linalg::SymmetricEigen(ca));
  AIMS_ASSIGN_OR_RETURN(linalg::EigenDecomposition eb,
                        linalg::SymmetricEigen(cb));
  return WeightedSvdSimilarity::SpectraSimilarity(ea, eb, rank);
}

}  // namespace aims::recognition
