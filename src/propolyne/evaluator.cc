#include "propolyne/evaluator.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace aims::propolyne {

Evaluator::Evaluator(const DataCube* cube) : cube_(cube) {
  AIMS_CHECK(cube_ != nullptr);
}

Status Evaluator::Validate(const RangeSumQuery& query) const {
  const CubeSchema& schema = cube_->schema();
  if (query.terms.size() != schema.num_dims()) {
    return Status::InvalidArgument("Evaluator: query arity mismatch");
  }
  for (size_t d = 0; d < query.terms.size(); ++d) {
    if (query.terms[d].lo > query.terms[d].hi ||
        query.terms[d].hi >= schema.extents[d]) {
      return Status::OutOfRange("Evaluator: query range out of bounds");
    }
    if (query.terms[d].poly.degree() >=
        cube_->filter(d).vanishing_moments()) {
      return Status::InvalidArgument(
          "Evaluator: polynomial degree requires a filter with more "
          "vanishing moments on this dimension (choose db2+ for SUM, db3+ "
          "for VARIANCE)");
    }
  }
  return Status::OK();
}

Result<std::vector<signal::SparseCoefficients>>
Evaluator::PerDimensionTransforms(const RangeSumQuery& query) const {
  std::vector<signal::SparseCoefficients> out(query.terms.size());
  for (size_t d = 0; d < query.terms.size(); ++d) {
    const DimensionTerm& term = query.terms[d];
    AIMS_ASSIGN_OR_RETURN(
        out[d], signal::LazyWaveletTransform(cube_->filter(d),
                                             cube_->schema().extents[d],
                                             term.lo, term.hi, term.poly));
  }
  return out;
}

Result<std::vector<std::pair<size_t, double>>> Evaluator::ProductCoefficients(
    const RangeSumQuery& query) const {
  AIMS_RETURN_NOT_OK(Validate(query));
  AIMS_ASSIGN_OR_RETURN(std::vector<signal::SparseCoefficients> dims,
                        PerDimensionTransforms(query));
  std::vector<std::pair<size_t, double>> product;
  size_t expected = 1;
  for (const auto& d : dims) expected *= std::max<size_t>(d.size(), 1);
  product.reserve(expected);
  if (expected == 0) return product;
  for (const auto& d : dims) {
    if (d.entries.empty()) return product;  // Query function is zero.
  }
  const auto& extents = cube_->schema().extents;
  std::vector<size_t> choice(dims.size(), 0);
  while (true) {
    size_t flat = 0;
    double coeff = 1.0;
    for (size_t d = 0; d < dims.size(); ++d) {
      const auto& [ci, cv] = dims[d].entries[choice[d]];
      flat = flat * extents[d] + ci;
      coeff *= cv;
    }
    product.emplace_back(flat, coeff);
    size_t d = dims.size();
    bool done = true;
    while (d-- > 0) {
      if (++choice[d] < dims[d].entries.size()) {
        done = false;
        break;
      }
      choice[d] = 0;
    }
    if (done) break;
  }
  return product;
}

Result<double> Evaluator::Evaluate(const RangeSumQuery& query) const {
  AIMS_ASSIGN_OR_RETURN(auto product, ProductCoefficients(query));
  const std::vector<double>& data = cube_->wavelet();
  double acc = 0.0;
  for (const auto& [flat, coeff] : product) {
    acc += coeff * data[flat];
  }
  return acc;
}

Result<ProgressiveResult> Evaluator::EvaluateProgressive(
    const RangeSumQuery& query, size_t stride) const {
  if (stride == 0) {
    return Status::InvalidArgument("EvaluateProgressive: stride must be > 0");
  }
  AIMS_ASSIGN_OR_RETURN(auto product, ProductCoefficients(query));
  // Largest query coefficients first: they carry the most of the answer
  // regardless of the data (this is the data-independence property).
  std::sort(product.begin(), product.end(),
            [](const auto& a, const auto& b) {
              return std::fabs(a.second) > std::fabs(b.second);
            });
  const std::vector<double>& data = cube_->wavelet();

  ProgressiveResult result;
  // Suffix sums of query energy, computed back-to-front so the bound hits
  // exactly zero at the final step (a running subtraction accumulates
  // floating error that would leave a spurious residual bound).
  std::vector<double> suffix_query_energy(product.size() + 1, 0.0);
  for (size_t i = product.size(); i-- > 0;) {
    suffix_query_energy[i] =
        suffix_query_energy[i + 1] + product[i].second * product[i].second;
  }
  double remaining_data_energy = cube_->wavelet_energy();

  double acc = 0.0;
  for (size_t i = 0; i < product.size(); ++i) {
    const auto& [flat, coeff] = product[i];
    acc += coeff * data[flat];
    remaining_data_energy -= data[flat] * data[flat];
    if ((i + 1) % stride == 0 || i + 1 == product.size()) {
      ProgressiveStep step;
      step.coefficients_used = i + 1;
      step.estimate = acc;
      step.error_bound = std::sqrt(suffix_query_energy[i + 1]) *
                         std::sqrt(std::max(remaining_data_energy, 0.0));
      result.steps.push_back(step);
    }
  }
  if (product.empty()) {
    result.steps.push_back(ProgressiveStep{0, 0.0, 0.0});
  }
  result.exact = acc;
  return result;
}

Result<double> Evaluator::EvaluateByScan(const RangeSumQuery& query) const {
  AIMS_RETURN_NOT_OK(Validate(query));
  const CubeSchema& schema = cube_->schema();
  const std::vector<double>& values = cube_->values();
  std::vector<size_t> idx(schema.num_dims());
  for (size_t d = 0; d < idx.size(); ++d) idx[d] = query.terms[d].lo;
  double acc = 0.0;
  while (true) {
    size_t flat = 0;
    double q = 1.0;
    for (size_t d = 0; d < idx.size(); ++d) {
      flat = flat * schema.extents[d] + idx[d];
      q *= query.terms[d].poly.Eval(static_cast<double>(idx[d]));
    }
    acc += q * values[flat];
    size_t d = idx.size();
    bool done = true;
    while (d-- > 0) {
      if (++idx[d] <= query.terms[d].hi) {
        done = false;
        break;
      }
      idx[d] = query.terms[d].lo;
    }
    if (done) break;
  }
  return acc;
}

Result<size_t> Evaluator::QueryCoefficientCount(
    const RangeSumQuery& query) const {
  AIMS_ASSIGN_OR_RETURN(auto product, ProductCoefficients(query));
  return product.size();
}

Result<DerivedStatistics> ComputeStatistics(const Evaluator& evaluator,
                                            const std::vector<size_t>& lo,
                                            const std::vector<size_t>& hi,
                                            size_t measure_dim) {
  DerivedStatistics stats;
  AIMS_ASSIGN_OR_RETURN(stats.count,
                        evaluator.Evaluate(RangeSumQuery::Count(lo, hi)));
  AIMS_ASSIGN_OR_RETURN(
      stats.sum, evaluator.Evaluate(RangeSumQuery::Sum(lo, hi, measure_dim)));
  AIMS_ASSIGN_OR_RETURN(
      stats.sum_squares,
      evaluator.Evaluate(RangeSumQuery::SumOfSquares(lo, hi, measure_dim)));
  return stats;
}

}  // namespace aims::propolyne
