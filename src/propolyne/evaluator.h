#pragma once

#include <functional>
#include <vector>

#include "common/status.h"
#include "propolyne/datacube.h"
#include "propolyne/query.h"
#include "signal/lazy_wavelet.h"

/// \file evaluator.h
/// \brief ProPolyne: Progressive Polynomial Range-Sum Evaluator (Sec. 3.3).
///
/// The answer to a separable polynomial range-sum is, by Parseval,
///   sum_w Q(w) * D(w)
/// where Q is the (sparse, lazily computed) wavelet transform of the query
/// function and D the stored transform of the cube. Exact evaluation visits
/// only the O((lg n)^d) nonzero Q entries. Progressive evaluation consumes
/// the largest |Q| first, maintaining a guaranteed Cauchy-Schwarz error
/// bound — "excellent approximate results ... with very little I/O".

namespace aims::propolyne {

/// \brief What a progressive-step observer tells the evaluator to do next.
///
/// Progressive evaluators accept an optional observer that is invoked after
/// every refinement step (one block I/O, or one stride of coefficients).
/// Returning kStop ends the evaluation early with the steps produced so
/// far — the primitive that lets a scheduler impose deadlines and honor
/// cancellation mid-evaluation instead of running every query to
/// exactness.
enum class StepControl {
  kContinue,  ///< Keep refining.
  kStop,      ///< Return the partial trajectory now.
};

/// \brief One step of a progressive evaluation.
struct ProgressiveStep {
  size_t coefficients_used = 0;
  double estimate = 0.0;
  /// Guaranteed bound on |exact - estimate| (Cauchy-Schwarz on the unread
  /// query/data coefficients).
  double error_bound = 0.0;
};

/// \brief The full progressive trajectory plus the exact answer.
struct ProgressiveResult {
  double exact = 0.0;
  std::vector<ProgressiveStep> steps;
};

/// \brief ProPolyne evaluation engine over one DataCube.
class Evaluator {
 public:
  explicit Evaluator(const DataCube* cube);

  /// \brief Exact wavelet-domain evaluation via the lazy transform.
  Result<double> Evaluate(const RangeSumQuery& query) const;

  /// \brief Progressive evaluation: consumes product coefficients in
  /// decreasing |Q| order, recording a step every \p stride coefficients.
  Result<ProgressiveResult> EvaluateProgressive(const RangeSumQuery& query,
                                                size_t stride = 1) const;

  /// \brief Reference evaluation by scanning the raw cube cells — the
  /// "pure relational algorithm" baseline, also the test oracle.
  Result<double> EvaluateByScan(const RangeSumQuery& query) const;

  /// \brief Number of nonzero product query coefficients (the wavelet-
  /// domain cost of the exact evaluation).
  Result<size_t> QueryCoefficientCount(const RangeSumQuery& query) const;

  /// \brief The sparse product-coefficient list (exposed for the storage
  /// experiments, which replay these index sets against block allocators).
  Result<std::vector<std::pair<size_t, double>>> ProductCoefficients(
      const RangeSumQuery& query) const;

 private:
  Status Validate(const RangeSumQuery& query) const;
  /// Per-dimension lazy transforms of the query terms.
  Result<std::vector<signal::SparseCoefficients>> PerDimensionTransforms(
      const RangeSumQuery& query) const;

  const DataCube* cube_;
};

/// \brief Convenience: derived AVERAGE/VARIANCE from three range-sums.
Result<DerivedStatistics> ComputeStatistics(const Evaluator& evaluator,
                                            const std::vector<size_t>& lo,
                                            const std::vector<size_t>& hi,
                                            size_t measure_dim);

}  // namespace aims::propolyne
