#include "propolyne/incremental.h"

#include "common/macros.h"
#include "signal/lazy_wavelet.h"
#include "signal/polynomial.h"

namespace aims::propolyne {

Result<double> IncrementalRangeSum(const signal::WaveletFilter& filter,
                                   size_t padded_len, size_t first,
                                   size_t last,
                                   const std::vector<double>& coeffs) {
  AIMS_ASSIGN_OR_RETURN(
      signal::SparseCoefficients query,
      signal::LazyWaveletTransform(filter, padded_len, first, last,
                                   signal::Polynomial::Constant(1.0)));
  // Same iteration order and accumulation shape as QueryRange's fetched
  // loop: floating-point addition is order-sensitive, and reconciliation
  // depends on the two paths agreeing to the last bit.
  double centered_sum = 0.0;
  for (const auto& [idx, qv] : query.entries) {
    if (idx < coeffs.size()) centered_sum += qv * coeffs[idx];
  }
  return centered_sum;
}

}  // namespace aims::propolyne
