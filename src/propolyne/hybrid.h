#pragma once

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "propolyne/datacube.h"
#include "propolyne/query.h"

/// \file hybrid.h
/// \brief Hybrid ProPolyne (Sec. 3.3.1): "uses the standard basis in a
/// subset of the dimensions (the standard dimensions) and uses wavelets in
/// all other dimensions. Given this decomposition ... relational selection
/// and aggregation operators can be used in the standard dimensions to
/// accumulate the results of ProPolyne queries in the other dimensions."
///
/// When a dimension such as sensor-id has few occupied values and queries
/// select narrow ranges of it, iterating those cells relationally beats
/// paying that dimension's O(lg n) wavelet factor in every product term —
/// "for many realistic datasets and query patterns, hybridizations can
/// perform dramatically better".

namespace aims::propolyne {

/// \brief Which dimensions use the standard (identity) basis.
struct HybridDecomposition {
  std::vector<bool> standard;  ///< One flag per cube dimension.

  size_t num_standard() const;
  std::string ToString() const;
};

/// \brief Cost of one evaluation, in coefficient-touch operations — the
/// unit both pure strategies share (a relational touch reads one cell, a
/// wavelet touch reads one coefficient).
struct HybridCost {
  size_t standard_cells = 0;       ///< Relational cells visited.
  size_t wavelet_coefficients = 0; ///< Product coefficients per cell.
  size_t total_operations = 0;
};

/// \brief Evaluator for one fixed decomposition of one cube.
class HybridEvaluator {
 public:
  /// Builds the hybrid representation: for every occupied coordinate of the
  /// standard dimensions, the wavelet transform of the remaining sub-cube.
  static Result<HybridEvaluator> Make(const DataCube* cube,
                                      HybridDecomposition decomposition);

  /// Exact evaluation: relational iteration over standard cells, wavelet
  /// dot products in the other dimensions.
  Result<double> Evaluate(const RangeSumQuery& query) const;

  /// Operation-count cost of evaluating \p query under this decomposition.
  Result<HybridCost> MeasureCost(const RangeSumQuery& query) const;

  const HybridDecomposition& decomposition() const { return decomposition_; }
  /// Number of occupied standard-coordinate cells.
  size_t occupied_cells() const { return sub_wavelets_.size(); }

 private:
  HybridEvaluator(const DataCube* cube, HybridDecomposition decomposition);

  Status Build();
  /// Flattens a standard-coordinate tuple.
  size_t StandardKey(const std::vector<size_t>& coords) const;

  const DataCube* cube_;
  HybridDecomposition decomposition_;
  std::vector<size_t> standard_dims_;
  std::vector<size_t> wavelet_dims_;
  std::vector<size_t> wavelet_shape_;
  /// standard key -> wavelet transform of that slice.
  std::unordered_map<size_t, std::vector<double>> sub_wavelets_;
};

/// \brief Exhaustively scores every decomposition on a sample workload and
/// returns the cheapest — "one algorithm which efficiently identifies good
/// dimension decompositions as part of the database population process".
/// Practical for the ≤ 4-dimension immersidata schemas it is meant for.
Result<HybridDecomposition> ChooseDecomposition(
    const DataCube& cube, const std::vector<RangeSumQuery>& workload);

}  // namespace aims::propolyne
