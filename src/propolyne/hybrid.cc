#include "propolyne/hybrid.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "signal/lazy_wavelet.h"

namespace aims::propolyne {

size_t HybridDecomposition::num_standard() const {
  size_t n = 0;
  for (bool s : standard) n += s ? 1 : 0;
  return n;
}

std::string HybridDecomposition::ToString() const {
  std::string out;
  for (bool s : standard) out += s ? 'S' : 'W';
  return out;
}

HybridEvaluator::HybridEvaluator(const DataCube* cube,
                                 HybridDecomposition decomposition)
    : cube_(cube), decomposition_(std::move(decomposition)) {}

Result<HybridEvaluator> HybridEvaluator::Make(
    const DataCube* cube, HybridDecomposition decomposition) {
  AIMS_CHECK(cube != nullptr);
  if (decomposition.standard.size() != cube->schema().num_dims()) {
    return Status::InvalidArgument("HybridEvaluator: decomposition arity");
  }
  HybridEvaluator evaluator(cube, std::move(decomposition));
  AIMS_RETURN_NOT_OK(evaluator.Build());
  return evaluator;
}

size_t HybridEvaluator::StandardKey(const std::vector<size_t>& coords) const {
  size_t key = 0;
  for (size_t i = 0; i < standard_dims_.size(); ++i) {
    key = key * cube_->schema().extents[standard_dims_[i]] + coords[i];
  }
  return key;
}

Status HybridEvaluator::Build() {
  const CubeSchema& schema = cube_->schema();
  for (size_t d = 0; d < schema.num_dims(); ++d) {
    if (decomposition_.standard[d]) {
      standard_dims_.push_back(d);
    } else {
      wavelet_dims_.push_back(d);
      wavelet_shape_.push_back(schema.extents[d]);
    }
  }
  size_t sub_size = 1;
  for (size_t e : wavelet_shape_) sub_size *= e;

  // Gather each occupied standard slice, then transform it.
  const std::vector<double>& values = cube_->values();
  std::vector<size_t> idx(schema.num_dims(), 0);
  const size_t total = schema.total_size();
  std::unordered_map<size_t, std::vector<double>> slices;
  for (size_t flat = 0; flat < total; ++flat) {
    double v = values[flat];
    if (v != 0.0) {
      std::vector<size_t> std_coords(standard_dims_.size());
      for (size_t i = 0; i < standard_dims_.size(); ++i) {
        std_coords[i] = idx[standard_dims_[i]];
      }
      size_t key = StandardKey(std_coords);
      auto [it, inserted] = slices.try_emplace(key);
      if (inserted) it->second.assign(sub_size, 0.0);
      size_t sub_flat = 0;
      for (size_t i = 0; i < wavelet_dims_.size(); ++i) {
        sub_flat = sub_flat * wavelet_shape_[i] + idx[wavelet_dims_[i]];
      }
      it->second[sub_flat] = v;
    }
    for (size_t d = schema.num_dims(); d-- > 0;) {
      if (++idx[d] < schema.extents[d]) break;
      idx[d] = 0;
    }
  }
  if (!wavelet_shape_.empty()) {
    std::vector<signal::WaveletFilter> filters;
    for (size_t d : wavelet_dims_) filters.push_back(cube_->filter(d));
    signal::TensorDwt transform(std::move(filters), wavelet_shape_);
    for (auto& [key, slice] : slices) {
      (void)key;
      AIMS_RETURN_NOT_OK(transform.Forward(&slice));
    }
  }
  sub_wavelets_ = std::move(slices);
  return Status::OK();
}

namespace {

/// Product coefficients over the wavelet dimensions only.
Result<std::vector<std::pair<size_t, double>>> WaveletProduct(
    const DataCube& cube, const RangeSumQuery& query,
    const std::vector<size_t>& wavelet_dims,
    const std::vector<size_t>& wavelet_shape) {
  std::vector<signal::SparseCoefficients> transforms(wavelet_dims.size());
  for (size_t i = 0; i < wavelet_dims.size(); ++i) {
    size_t d = wavelet_dims[i];
    const DimensionTerm& term = query.terms[d];
    AIMS_ASSIGN_OR_RETURN(
        transforms[i],
        signal::LazyWaveletTransform(cube.filter(d),
                                     cube.schema().extents[d], term.lo,
                                     term.hi, term.poly));
  }
  std::vector<std::pair<size_t, double>> product;
  if (wavelet_dims.empty()) {
    product.emplace_back(0, 1.0);
    return product;
  }
  for (const auto& t : transforms) {
    if (t.entries.empty()) return product;
  }
  std::vector<size_t> choice(transforms.size(), 0);
  while (true) {
    size_t flat = 0;
    double coeff = 1.0;
    for (size_t i = 0; i < transforms.size(); ++i) {
      const auto& [ci, cv] = transforms[i].entries[choice[i]];
      flat = flat * wavelet_shape[i] + ci;
      coeff *= cv;
    }
    product.emplace_back(flat, coeff);
    size_t i = transforms.size();
    bool done = true;
    while (i-- > 0) {
      if (++choice[i] < transforms[i].entries.size()) {
        done = false;
        break;
      }
      choice[i] = 0;
    }
    if (done) break;
  }
  return product;
}

}  // namespace

Result<double> HybridEvaluator::Evaluate(const RangeSumQuery& query) const {
  const CubeSchema& schema = cube_->schema();
  if (query.terms.size() != schema.num_dims()) {
    return Status::InvalidArgument("HybridEvaluator: query arity mismatch");
  }
  for (size_t i = 0; i < wavelet_dims_.size(); ++i) {
    if (query.terms[wavelet_dims_[i]].poly.degree() >=
        cube_->filter(wavelet_dims_[i]).vanishing_moments()) {
      return Status::InvalidArgument(
          "HybridEvaluator: degree too high for the filter on a wavelet "
          "dimension");
    }
  }
  AIMS_ASSIGN_OR_RETURN(
      auto product,
      WaveletProduct(*cube_, query, wavelet_dims_, wavelet_shape_));

  // Relational iteration over the *occupied* standard cells — the hybrid's
  // standard dimensions act like an index, so empty coordinates cost
  // nothing (this is what makes projecting away a sparse dimension pay).
  double acc = 0.0;
  for (const auto& [key, slice] : sub_wavelets_) {
    // Decode the key into standard coordinates and test range membership.
    size_t rest = key;
    double standard_weight = 1.0;
    bool in_range = true;
    for (size_t i = standard_dims_.size(); i-- > 0;) {
      size_t extent = cube_->schema().extents[standard_dims_[i]];
      size_t coord = rest % extent;
      rest /= extent;
      const DimensionTerm& term = query.terms[standard_dims_[i]];
      if (coord < term.lo || coord > term.hi) {
        in_range = false;
        break;
      }
      standard_weight *= term.poly.Eval(static_cast<double>(coord));
    }
    if (!in_range || standard_weight == 0.0) continue;
    double sub = 0.0;
    for (const auto& [flat, coeff] : product) {
      sub += coeff * slice[flat];
    }
    acc += standard_weight * sub;
  }
  return acc;
}

Result<HybridCost> HybridEvaluator::MeasureCost(
    const RangeSumQuery& query) const {
  if (query.terms.size() != cube_->schema().num_dims()) {
    return Status::InvalidArgument("HybridEvaluator: query arity mismatch");
  }
  AIMS_ASSIGN_OR_RETURN(
      auto product,
      WaveletProduct(*cube_, query, wavelet_dims_, wavelet_shape_));
  HybridCost cost;
  cost.wavelet_coefficients = product.size();
  // Count only *occupied* standard cells inside the range: the relational
  // operator skips empty ones via its index.
  size_t occupied_in_range = 0;
  std::vector<size_t> coords(standard_dims_.size());
  for (size_t i = 0; i < standard_dims_.size(); ++i) {
    coords[i] = query.terms[standard_dims_[i]].lo;
  }
  while (true) {
    if (sub_wavelets_.count(StandardKey(coords))) ++occupied_in_range;
    if (standard_dims_.empty()) break;
    size_t i = standard_dims_.size();
    bool done = true;
    while (i-- > 0) {
      if (++coords[i] <= query.terms[standard_dims_[i]].hi) {
        done = false;
        break;
      }
      coords[i] = query.terms[standard_dims_[i]].lo;
    }
    if (done) break;
  }
  cost.standard_cells = standard_dims_.empty() ? 1 : occupied_in_range;
  cost.total_operations = cost.standard_cells * cost.wavelet_coefficients;
  return cost;
}

Result<HybridDecomposition> ChooseDecomposition(
    const DataCube& cube, const std::vector<RangeSumQuery>& workload) {
  const size_t dims = cube.schema().num_dims();
  if (dims > 16) {
    return Status::InvalidArgument("ChooseDecomposition: too many dimensions");
  }
  HybridDecomposition best;
  size_t best_cost = SIZE_MAX;
  for (size_t mask = 0; mask < (size_t{1} << dims); ++mask) {
    HybridDecomposition candidate;
    candidate.standard.resize(dims);
    for (size_t d = 0; d < dims; ++d) {
      candidate.standard[d] = (mask >> d) & 1;
    }
    auto evaluator_result = HybridEvaluator::Make(&cube, candidate);
    if (!evaluator_result.ok()) continue;
    const HybridEvaluator& evaluator = evaluator_result.ValueOrDie();
    size_t total = 0;
    bool feasible = true;
    for (const RangeSumQuery& query : workload) {
      auto cost = evaluator.MeasureCost(query);
      if (!cost.ok()) {
        feasible = false;
        break;
      }
      total += cost.ValueOrDie().total_operations;
    }
    if (feasible && total < best_cost) {
      best_cost = total;
      best = candidate;
    }
  }
  if (best.standard.empty()) {
    return Status::Internal("ChooseDecomposition: no feasible decomposition");
  }
  return best;
}

}  // namespace aims::propolyne
