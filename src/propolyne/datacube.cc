#include "propolyne/datacube.h"

#include "common/macros.h"
#include "signal/lazy_wavelet.h"
#include "signal/polynomial.h"

namespace aims::propolyne {

size_t CubeSchema::total_size() const {
  size_t n = 1;
  for (size_t e : extents) n *= e;
  return n;
}

DataCube::DataCube(CubeSchema schema,
                   std::vector<signal::WaveletFilter> filters)
    : schema_(std::move(schema)),
      filters_(std::move(filters)),
      transform_(filters_, schema_.extents),
      values_(schema_.total_size(), 0.0),
      wavelet_(schema_.total_size(), 0.0) {}

const signal::WaveletFilter& DataCube::filter(size_t dim) const {
  AIMS_CHECK(dim < filters_.size());
  return filters_[dim];
}

Result<DataCube> DataCube::Make(CubeSchema schema,
                                signal::WaveletFilter filter) {
  size_t dims = schema.extents.size();
  return MakeMultiFilter(std::move(schema),
                         std::vector<signal::WaveletFilter>(dims, filter));
}

Result<DataCube> DataCube::MakeMultiFilter(
    CubeSchema schema, std::vector<signal::WaveletFilter> filters) {
  if (schema.extents.empty()) {
    return Status::InvalidArgument("DataCube: schema needs dimensions");
  }
  if (schema.names.size() != schema.extents.size()) {
    return Status::InvalidArgument("DataCube: names/extents mismatch");
  }
  if (filters.size() != schema.extents.size()) {
    return Status::InvalidArgument("DataCube: one filter per dimension");
  }
  for (size_t e : schema.extents) {
    if (!signal::IsPowerOfTwo(e)) {
      return Status::InvalidArgument(
          "DataCube: extents must be powers of two");
    }
  }
  return DataCube(std::move(schema), std::move(filters));
}

Result<DataCube> DataCube::FromDense(CubeSchema schema,
                                     signal::WaveletFilter filter,
                                     std::vector<double> values) {
  size_t dims = schema.extents.size();
  return FromDenseMultiFilter(
      std::move(schema), std::vector<signal::WaveletFilter>(dims, filter),
      std::move(values));
}

Result<DataCube> DataCube::FromDenseMultiFilter(
    CubeSchema schema, std::vector<signal::WaveletFilter> filters,
    std::vector<double> values) {
  AIMS_ASSIGN_OR_RETURN(
      DataCube cube, MakeMultiFilter(std::move(schema), std::move(filters)));
  if (values.size() != cube.schema_.total_size()) {
    return Status::InvalidArgument("DataCube::FromDense: value count");
  }
  cube.values_ = std::move(values);
  AIMS_RETURN_NOT_OK(cube.RebuildWavelet());
  return cube;
}

size_t DataCube::FlatIndex(const std::vector<size_t>& idx) const {
  AIMS_CHECK(idx.size() == schema_.num_dims());
  size_t flat = 0;
  for (size_t d = 0; d < idx.size(); ++d) {
    AIMS_CHECK(idx[d] < schema_.extents[d]);
    flat = flat * schema_.extents[d] + idx[d];
  }
  return flat;
}

Result<size_t> DataCube::Append(const std::vector<size_t>& idx, double delta) {
  if (idx.size() != schema_.num_dims()) {
    return Status::InvalidArgument("DataCube::Append: index arity");
  }
  for (size_t d = 0; d < schema_.num_dims(); ++d) {
    if (idx[d] >= schema_.extents[d]) {
      return Status::OutOfRange("DataCube::Append: index out of range");
    }
  }
  values_[FlatIndex(idx)] += delta;

  // Per-dimension point transforms (transform of the unit impulse e_i).
  std::vector<signal::SparseCoefficients> point(schema_.num_dims());
  for (size_t d = 0; d < schema_.num_dims(); ++d) {
    AIMS_ASSIGN_OR_RETURN(
        point[d],
        signal::LazyWaveletTransform(filters_[d], schema_.extents[d],
                                     idx[d], idx[d],
                                     signal::Polynomial::Constant(1)));
  }
  // Outer product: every combination of per-dimension nonzeros.
  size_t touched = 0;
  std::vector<size_t> choice(schema_.num_dims(), 0);
  while (true) {
    size_t flat = 0;
    double coeff = delta;
    for (size_t d = 0; d < schema_.num_dims(); ++d) {
      const auto& [ci, cv] = point[d].entries[choice[d]];
      flat = flat * schema_.extents[d] + ci;
      coeff *= cv;
    }
    wavelet_energy_ -= wavelet_[flat] * wavelet_[flat];
    wavelet_[flat] += coeff;
    wavelet_energy_ += wavelet_[flat] * wavelet_[flat];
    ++touched;
    // Advance the mixed-radix counter over per-dimension entries.
    size_t d = schema_.num_dims();
    while (d-- > 0) {
      if (++choice[d] < point[d].entries.size()) break;
      choice[d] = 0;
      if (d == 0) return touched;
    }
  }
}

Status DataCube::RebuildWavelet() {
  wavelet_ = values_;
  AIMS_RETURN_NOT_OK(transform_.Forward(&wavelet_));
  wavelet_energy_ = 0.0;
  for (double w : wavelet_) wavelet_energy_ += w * w;
  return Status::OK();
}

}  // namespace aims::propolyne
