#include "propolyne/block_propolyne.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>

#include "common/macros.h"
#include "obs/profile.h"
#include "storage/allocation.h"

namespace aims::propolyne {

Result<BlockedCube> BlockedCube::Make(
    const DataCube* cube, storage::BlockDevice* device,
    std::vector<size_t> virtual_block_sizes, storage::BlockCache* cache) {
  AIMS_CHECK(cube != nullptr && device != nullptr);
  AIMS_CHECK(cache == nullptr || cache->device() == device);
  const CubeSchema& schema = cube->schema();
  if (virtual_block_sizes.size() != schema.num_dims()) {
    return Status::InvalidArgument("BlockedCube: virtual block arity");
  }
  BlockedCube blocked(cube, device, cache);
  blocked.virtual_block_sizes_ = virtual_block_sizes;
  blocked.block_size_items_ = 1;
  for (size_t b : virtual_block_sizes) blocked.block_size_items_ *= b;
  if (blocked.block_size_items_ * sizeof(double) > device->block_size_bytes()) {
    return Status::InvalidArgument(
        "BlockedCube: block items exceed device block size");
  }

  // Per-dimension error-tree tiling maps (Cartesian product = real blocks).
  size_t total_blocks = 1;
  for (size_t d = 0; d < schema.num_dims(); ++d) {
    storage::SubtreeTilingAllocator tiling(schema.extents[d],
                                           virtual_block_sizes[d]);
    std::vector<size_t> map(schema.extents[d]);
    for (size_t i = 0; i < schema.extents[d]; ++i) map[i] = tiling.BlockOf(i);
    blocked.dim_block_of_.push_back(std::move(map));
    blocked.per_dim_blocks_.push_back(tiling.num_blocks());
    total_blocks *= tiling.num_blocks();
  }

  // Assign every coefficient to its block, then write the blocks.
  blocked.block_contents_.resize(total_blocks);
  const size_t total = schema.total_size();
  std::vector<size_t> idx(schema.num_dims(), 0);
  for (size_t flat = 0; flat < total; ++flat) {
    size_t block = 0;
    for (size_t d = 0; d < schema.num_dims(); ++d) {
      block = block * blocked.per_dim_blocks_[d] +
              blocked.dim_block_of_[d][idx[d]];
    }
    blocked.block_contents_[block].push_back(flat);
    for (size_t d = schema.num_dims(); d-- > 0;) {
      if (++idx[d] < schema.extents[d]) break;
      idx[d] = 0;
    }
  }
  const std::vector<double>& wavelet = cube->wavelet();
  blocked.device_blocks_.resize(total_blocks);
  for (size_t b = 0; b < total_blocks; ++b) {
    std::vector<uint8_t> payload(blocked.block_contents_[b].size() *
                                 sizeof(double));
    for (size_t slot = 0; slot < blocked.block_contents_[b].size(); ++slot) {
      double v = wavelet[blocked.block_contents_[b][slot]];
      std::memcpy(payload.data() + slot * sizeof(double), &v, sizeof(double));
    }
    blocked.device_blocks_[b] = device->Allocate();
    AIMS_RETURN_NOT_OK(
        cache != nullptr
            ? cache->Write(blocked.device_blocks_[b], payload)
            : device->Write(blocked.device_blocks_[b], payload));
  }
  return blocked;
}

size_t BlockedCube::BlockOfFlat(size_t flat) const {
  const CubeSchema& schema = cube_->schema();
  size_t block = 0;
  // Decode row-major flat index back to per-dimension coordinates.
  size_t rest = flat;
  std::vector<size_t> coords(schema.num_dims());
  for (size_t d = schema.num_dims(); d-- > 0;) {
    coords[d] = rest % schema.extents[d];
    rest /= schema.extents[d];
  }
  for (size_t d = 0; d < schema.num_dims(); ++d) {
    block = block * per_dim_blocks_[d] + dim_block_of_[d][coords[d]];
  }
  return block;
}

Result<BlockProgressiveResult> BlockedCube::EvaluateProgressive(
    const RangeSumQuery& query, BlockImportance importance,
    const BlockStepObserver& observer) const {
  AIMS_PROFILE_SCOPE("propolyne.block_eval");
  AIMS_ASSIGN_OR_RETURN(auto product, evaluator_.ProductCoefficients(query));

  // Group the query coefficients by the block that stores their partner
  // data coefficient, and score each block.
  struct BlockWork {
    std::vector<std::pair<size_t, double>> coefficients;  // (flat, q)
    double score = 0.0;
    double query_energy = 0.0;
  };
  std::map<size_t, BlockWork> per_block;
  for (const auto& [flat, q] : product) {
    BlockWork& work = per_block[BlockOfFlat(flat)];
    work.coefficients.emplace_back(flat, q);
    work.query_energy += q * q;
    switch (importance) {
      case BlockImportance::kQueryEnergy:
        work.score += q * q;
        break;
      case BlockImportance::kMaxQueryCoeff:
        work.score = std::max(work.score, std::fabs(q));
        break;
    }
  }
  std::vector<std::pair<size_t, const BlockWork*>> order;
  order.reserve(per_block.size());
  double remaining_query_energy = 0.0;
  for (const auto& [block, work] : per_block) {
    order.emplace_back(block, &work);
    remaining_query_energy += work.query_energy;
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    return a.second->score > b.second->score;
  });

  BlockProgressiveResult result;
  result.total_blocks_needed = order.size();
  double acc = 0.0;
  // The data energy is known at population time (kept by the cube); it
  // upper-bounds the unread coefficients' energy.
  double remaining_data_energy = cube_->wavelet_energy();
  size_t blocks_read = 0;
  size_t cache_hits = 0;
  for (const auto& [block, work] : order) {
    bool hit = false;
    AIMS_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          cache_ != nullptr
                              ? cache_->Read(device_blocks_[block], &hit)
                              : device_->Read(device_blocks_[block]));
    ++blocks_read;
    if (hit) ++cache_hits;
    // Decode only the needed slots.
    const std::vector<size_t>& contents = block_contents_[block];
    double block_data_energy = 0.0;
    for (size_t slot = 0; slot < contents.size(); ++slot) {
      double v = 0.0;
      std::memcpy(&v, payload.data() + slot * sizeof(double), sizeof(double));
      block_data_energy += v * v;
    }
    for (const auto& [flat, q] : work->coefficients) {
      size_t slot = static_cast<size_t>(
          std::lower_bound(contents.begin(), contents.end(), flat) -
          contents.begin());
      AIMS_CHECK(slot < contents.size() && contents[slot] == flat);
      double v = 0.0;
      std::memcpy(&v, payload.data() + slot * sizeof(double), sizeof(double));
      acc += q * v;
    }
    remaining_query_energy -= work->query_energy;
    remaining_data_energy -= block_data_energy;
    BlockStep step;
    step.blocks_read = blocks_read;
    step.cache_hits = cache_hits;
    step.estimate = acc;
    step.error_bound = std::sqrt(std::max(remaining_query_energy, 0.0)) *
                       std::sqrt(std::max(remaining_data_energy, 0.0));
    result.steps.push_back(step);
    if (observer && observer(step) == StepControl::kStop &&
        blocks_read < order.size()) {
      result.complete = false;
      break;
    }
  }
  if (result.steps.empty()) {
    result.steps.push_back(BlockStep{0, 0, 0.0, 0.0});
  } else if (result.complete) {
    result.steps.back().error_bound = 0.0;  // everything needed was read
  }
  result.exact = acc;
  return result;
}

Result<double> BlockedCube::Evaluate(const RangeSumQuery& query) const {
  AIMS_ASSIGN_OR_RETURN(BlockProgressiveResult result,
                        EvaluateProgressive(query));
  return result.exact;
}

}  // namespace aims::propolyne
