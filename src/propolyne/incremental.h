#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "signal/wavelet_filter.h"

/// \file incremental.h
/// \brief The ingest-time half of continuous aggregates: evaluating a
/// standing ProPolyne range-sum against a channel's freshly computed DWT
/// coefficients while they are still in memory. The result is bit-identical
/// to what AimsSystem::QueryRange would later compute from block storage —
/// the same lazy query transform, the same entry order, the same
/// multiply-accumulate — so a registry maintained from these values can
/// answer the registered query with zero block I/O and still reconcile
/// exactly against an evaluated run.

namespace aims::propolyne {

/// \brief Mean-centered range sum <Q, X> of the standing query
/// 1_{[first, last]} against the in-memory coefficient vector \p coeffs
/// (pyramid layout, length \p padded_len). Add channel_mean * count to get
/// the data-domain sum, exactly as the block-storage query path does.
/// Propagates the lazy transform's validation (padded_len a power of two,
/// first <= last < padded_len).
Result<double> IncrementalRangeSum(const signal::WaveletFilter& filter,
                                   size_t padded_len, size_t first,
                                   size_t last,
                                   const std::vector<double>& coeffs);

}  // namespace aims::propolyne
