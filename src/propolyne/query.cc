#include "propolyne/query.h"

#include "common/macros.h"

namespace aims::propolyne {

namespace {
RangeSumQuery MakeBase(const std::vector<size_t>& lo,
                       const std::vector<size_t>& hi) {
  AIMS_CHECK(lo.size() == hi.size());
  RangeSumQuery q;
  q.terms.resize(lo.size());
  for (size_t d = 0; d < lo.size(); ++d) {
    AIMS_CHECK(lo[d] <= hi[d]);
    q.terms[d].lo = lo[d];
    q.terms[d].hi = hi[d];
  }
  return q;
}
}  // namespace

RangeSumQuery RangeSumQuery::Count(const std::vector<size_t>& lo,
                                   const std::vector<size_t>& hi) {
  return MakeBase(lo, hi);
}

RangeSumQuery RangeSumQuery::Sum(const std::vector<size_t>& lo,
                                 const std::vector<size_t>& hi,
                                 size_t measure_dim) {
  RangeSumQuery q = MakeBase(lo, hi);
  AIMS_CHECK(measure_dim < q.terms.size());
  q.terms[measure_dim].poly = signal::Polynomial::Monomial(1);
  return q;
}

RangeSumQuery RangeSumQuery::SumOfSquares(const std::vector<size_t>& lo,
                                          const std::vector<size_t>& hi,
                                          size_t measure_dim) {
  RangeSumQuery q = MakeBase(lo, hi);
  AIMS_CHECK(measure_dim < q.terms.size());
  q.terms[measure_dim].poly = signal::Polynomial::Monomial(2);
  return q;
}

RangeSumQuery RangeSumQuery::CrossMoment(const std::vector<size_t>& lo,
                                         const std::vector<size_t>& hi,
                                         size_t dim_a, size_t dim_b) {
  RangeSumQuery q = MakeBase(lo, hi);
  AIMS_CHECK(dim_a < q.terms.size() && dim_b < q.terms.size());
  AIMS_CHECK(dim_a != dim_b);
  q.terms[dim_a].poly = signal::Polynomial::Monomial(1);
  q.terms[dim_b].poly = signal::Polynomial::Monomial(1);
  return q;
}

int RangeSumQuery::max_degree() const {
  int deg = 0;
  for (const DimensionTerm& t : terms) {
    deg = std::max(deg, t.poly.degree());
  }
  return deg;
}

}  // namespace aims::propolyne
