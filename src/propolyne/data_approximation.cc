#include "propolyne/data_approximation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "common/macros.h"

namespace aims::propolyne {

DataApproximation::DataApproximation(const DataCube* cube)
    : cube_(cube), evaluator_(cube) {
  const std::vector<double>& w = cube_->wavelet();
  magnitude_order_.resize(w.size());
  std::iota(magnitude_order_.begin(), magnitude_order_.end(), 0);
  std::sort(magnitude_order_.begin(), magnitude_order_.end(),
            [&](size_t a, size_t b) {
              return std::fabs(w[a]) > std::fabs(w[b]);
            });
}

Result<double> DataApproximation::EvaluateWithBudget(
    const RangeSumQuery& query, size_t budget) const {
  AIMS_ASSIGN_OR_RETURN(auto product,
                        evaluator_.ProductCoefficients(query));
  budget = std::min(budget, magnitude_order_.size());
  // Membership of the synopsis: rank of each coefficient in the magnitude
  // order.
  std::unordered_map<size_t, size_t> rank;
  rank.reserve(magnitude_order_.size());
  for (size_t r = 0; r < magnitude_order_.size(); ++r) {
    rank[magnitude_order_[r]] = r;
  }
  const std::vector<double>& data = cube_->wavelet();
  double acc = 0.0;
  for (const auto& [flat, coeff] : product) {
    auto it = rank.find(flat);
    if (it != rank.end() && it->second < budget) {
      acc += coeff * data[flat];
    }
  }
  return acc;
}

Result<ProgressiveResult> DataApproximation::EvaluateProgressive(
    const RangeSumQuery& query, size_t stride, size_t max_budget) const {
  if (stride == 0) {
    return Status::InvalidArgument("EvaluateProgressive: stride must be > 0");
  }
  AIMS_ASSIGN_OR_RETURN(auto product,
                        evaluator_.ProductCoefficients(query));
  const std::vector<double>& data = cube_->wavelet();
  // Map: data coefficient -> query coefficient (only query-relevant cells
  /// contribute to the answer).
  std::unordered_map<size_t, double> query_coeff;
  query_coeff.reserve(product.size());
  double exact = 0.0;
  for (const auto& [flat, coeff] : product) {
    query_coeff[flat] += coeff;
    exact += coeff * data[flat];
  }
  if (max_budget == 0) max_budget = magnitude_order_.size();
  max_budget = std::min(max_budget, magnitude_order_.size());

  ProgressiveResult result;
  result.exact = exact;
  double acc = 0.0;
  for (size_t i = 0; i < max_budget; ++i) {
    size_t flat = magnitude_order_[i];
    auto it = query_coeff.find(flat);
    if (it != query_coeff.end()) {
      acc += it->second * data[flat];
    }
    if ((i + 1) % stride == 0 || i + 1 == max_budget) {
      ProgressiveStep step;
      step.coefficients_used = i + 1;
      step.estimate = acc;
      // No guaranteed bound is available to a data synopsis without extra
      // bookkeeping; report the true residual's upper envelope instead
      // (|exact - estimate| itself is unknown to the synopsis).
      step.error_bound = std::fabs(exact - acc);
      result.steps.push_back(step);
    }
  }
  if (result.steps.empty()) {
    result.steps.push_back(ProgressiveStep{0, 0.0, std::fabs(exact)});
  }
  return result;
}

Result<WorkloadAwareSynopsis> WorkloadAwareSynopsis::Make(
    const DataCube* cube, const std::vector<RangeSumQuery>& workload) {
  AIMS_CHECK(cube != nullptr);
  if (workload.empty()) {
    return Status::InvalidArgument("WorkloadAwareSynopsis: empty workload");
  }
  WorkloadAwareSynopsis synopsis(cube);
  const std::vector<double>& data = cube->wavelet();
  // Demand profile: total query energy arriving at each coefficient.
  std::vector<double> demand(data.size(), 0.0);
  for (const RangeSumQuery& query : workload) {
    AIMS_ASSIGN_OR_RETURN(auto product,
                          synopsis.evaluator_.ProductCoefficients(query));
    for (const auto& [flat, q] : product) {
      demand[flat] += q * q;
    }
  }
  // Importance: contribution to expected squared workload error if the
  // coefficient is dropped (D_i^2 * demand_i). Coefficients the sample
  // workload never touched follow as a magnitude-ranked tail, so ad-hoc
  // queries degrade gracefully and an unbounded budget is exact.
  std::vector<size_t> demanded, undemanded;
  for (size_t i = 0; i < data.size(); ++i) {
    (demand[i] > 0.0 ? demanded : undemanded).push_back(i);
  }
  std::sort(demanded.begin(), demanded.end(), [&](size_t a, size_t b) {
    return data[a] * data[a] * demand[a] > data[b] * data[b] * demand[b];
  });
  std::sort(undemanded.begin(), undemanded.end(), [&](size_t a, size_t b) {
    return std::fabs(data[a]) > std::fabs(data[b]);
  });
  synopsis.order_ = std::move(demanded);
  synopsis.order_.insert(synopsis.order_.end(), undemanded.begin(),
                         undemanded.end());
  synopsis.rank_.assign(data.size(), SIZE_MAX);
  for (size_t r = 0; r < synopsis.order_.size(); ++r) {
    synopsis.rank_[synopsis.order_[r]] = r;
  }
  return synopsis;
}

Result<double> WorkloadAwareSynopsis::EvaluateWithBudget(
    const RangeSumQuery& query, size_t budget) const {
  AIMS_ASSIGN_OR_RETURN(auto product, evaluator_.ProductCoefficients(query));
  const std::vector<double>& data = cube_->wavelet();
  double acc = 0.0;
  for (const auto& [flat, q] : product) {
    if (rank_[flat] < budget) {
      acc += q * data[flat];
    }
  }
  return acc;
}

}  // namespace aims::propolyne
