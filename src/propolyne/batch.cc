#include "propolyne/batch.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/macros.h"

namespace aims::propolyne {

BatchEvaluator::BatchEvaluator(const DataCube* cube)
    : cube_(cube), evaluator_(cube) {
  AIMS_CHECK(cube != nullptr);
}

Result<std::vector<RangeSumQuery>> BatchEvaluator::ExpandGroups(
    const GroupByQuery& query) const {
  const CubeSchema& schema = cube_->schema();
  if (query.base.terms.size() != schema.num_dims()) {
    return Status::InvalidArgument("BatchEvaluator: query arity mismatch");
  }
  if (query.group_dim >= schema.num_dims()) {
    return Status::OutOfRange("BatchEvaluator: group dimension out of range");
  }
  if (query.bucket_width == 0) {
    return Status::InvalidArgument("BatchEvaluator: zero bucket width");
  }
  const DimensionTerm& group_term = query.base.terms[query.group_dim];
  std::vector<RangeSumQuery> groups;
  for (size_t lo = group_term.lo; lo <= group_term.hi;
       lo += query.bucket_width) {
    RangeSumQuery g = query.base;
    g.terms[query.group_dim].lo = lo;
    g.terms[query.group_dim].hi =
        std::min(group_term.hi, lo + query.bucket_width - 1);
    groups.push_back(std::move(g));
  }
  return groups;
}

namespace {

/// Per-coefficient work item across groups.
struct SharedCoefficient {
  size_t flat = 0;
  /// (group index, query coefficient) pairs.
  std::vector<std::pair<size_t, double>> group_coeffs;
  double importance = 0.0;
};

}  // namespace

Result<BatchResult> BatchEvaluator::Evaluate(const GroupByQuery& query) const {
  AIMS_ASSIGN_OR_RETURN(std::vector<RangeSumQuery> groups,
                        ExpandGroups(query));
  BatchResult result;
  result.exact.assign(groups.size(), 0.0);
  std::unordered_map<size_t, bool> touched;
  const std::vector<double>& data = cube_->wavelet();
  for (size_t g = 0; g < groups.size(); ++g) {
    AIMS_ASSIGN_OR_RETURN(auto product,
                          evaluator_.ProductCoefficients(groups[g]));
    result.independent_coefficients += product.size();
    for (const auto& [flat, q] : product) {
      result.exact[g] += q * data[flat];
      touched.emplace(flat, true);
    }
  }
  result.shared_coefficients = touched.size();
  return result;
}

Result<BatchResult> BatchEvaluator::EvaluateProgressive(
    const GroupByQuery& query, BatchErrorMeasure measure, size_t stride,
    const BatchStepObserver& observer) const {
  if (stride == 0) {
    return Status::InvalidArgument("EvaluateProgressive: stride must be > 0");
  }
  AIMS_ASSIGN_OR_RETURN(std::vector<RangeSumQuery> groups,
                        ExpandGroups(query));
  const size_t num_groups = groups.size();

  // Build the shared coefficient table: flat index -> per-group weights.
  std::unordered_map<size_t, size_t> index_of;
  std::vector<SharedCoefficient> shared;
  size_t independent = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    AIMS_ASSIGN_OR_RETURN(auto product,
                          evaluator_.ProductCoefficients(groups[g]));
    independent += product.size();
    for (const auto& [flat, q] : product) {
      auto [it, inserted] = index_of.try_emplace(flat, shared.size());
      if (inserted) {
        shared.push_back(SharedCoefficient{flat, {}, 0.0});
      }
      shared[it->second].group_coeffs.emplace_back(g, q);
    }
  }
  for (SharedCoefficient& c : shared) {
    switch (measure) {
      case BatchErrorMeasure::kL2:
        for (const auto& [g, q] : c.group_coeffs) {
          (void)g;
          c.importance += q * q;
        }
        break;
      case BatchErrorMeasure::kMax:
        for (const auto& [g, q] : c.group_coeffs) {
          (void)g;
          c.importance = std::max(c.importance, std::fabs(q));
        }
        break;
    }
  }
  std::sort(shared.begin(), shared.end(),
            [](const SharedCoefficient& a, const SharedCoefficient& b) {
              return a.importance > b.importance;
            });

  // Per-group suffix query energies for the guaranteed bounds.
  std::vector<std::vector<double>> suffix(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    suffix[g].assign(shared.size() + 1, 0.0);
  }
  for (size_t i = shared.size(); i-- > 0;) {
    for (size_t g = 0; g < num_groups; ++g) {
      suffix[g][i] = suffix[g][i + 1];
    }
    for (const auto& [g, q] : shared[i].group_coeffs) {
      suffix[g][i] += q * q;
    }
  }

  BatchResult result;
  result.independent_coefficients = independent;
  result.shared_coefficients = shared.size();
  result.exact.assign(num_groups, 0.0);
  const std::vector<double>& data = cube_->wavelet();
  double remaining_data_energy = cube_->wavelet_energy();
  std::vector<double> estimates(num_groups, 0.0);
  for (size_t i = 0; i < shared.size(); ++i) {
    double v = data[shared[i].flat];
    for (const auto& [g, q] : shared[i].group_coeffs) {
      estimates[g] += q * v;
    }
    remaining_data_energy -= v * v;
    if ((i + 1) % stride == 0 || i + 1 == shared.size()) {
      BatchStep step;
      step.coefficients_used = i + 1;
      step.estimates = estimates;
      double worst = 0.0;
      for (size_t g = 0; g < num_groups; ++g) {
        worst = std::max(worst,
                         std::sqrt(suffix[g][i + 1]) *
                             std::sqrt(std::max(remaining_data_energy, 0.0)));
      }
      step.max_error_bound = worst;
      result.steps.push_back(std::move(step));
      if (observer && observer(result.steps.back()) == StepControl::kStop &&
          i + 1 < shared.size()) {
        result.complete = false;
        break;
      }
    }
  }
  if (shared.empty()) {
    result.steps.push_back(BatchStep{0, estimates, 0.0});
  }
  result.exact = estimates;
  return result;
}

}  // namespace aims::propolyne
