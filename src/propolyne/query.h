#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "signal/polynomial.h"

/// \file query.h
/// \brief Polynomial range-sum queries (Sec. 3.3). A query is a separable
/// function q(x) = prod_d p_d(x_d) * 1_{[lo_d, hi_d]}(x_d) and its answer is
/// sum_x q(x) * cube(x). With degree-0 polynomials everywhere this is
/// COUNT; raising the degree on measure dimensions yields SUM, SUM of
/// squares, cross moments, and hence AVERAGE, VARIANCE, and COVARIANCE —
/// "not only COUNT, SUM and AVERAGE, but also VARIANCE, COVARIANCE and
/// more".

namespace aims::propolyne {

/// \brief Per-dimension restriction: a range and a polynomial in the
/// dimension's coordinate.
struct DimensionTerm {
  size_t lo = 0;
  size_t hi = 0;               ///< Inclusive.
  signal::Polynomial poly = signal::Polynomial::Constant(1.0);
};

/// \brief A polynomial range-sum over a DataCube.
struct RangeSumQuery {
  std::vector<DimensionTerm> terms;  ///< One per cube dimension.

  /// COUNT over a range: degree-0 polynomials everywhere.
  static RangeSumQuery Count(const std::vector<size_t>& lo,
                             const std::vector<size_t>& hi);

  /// SUM of dimension \p measure_dim over a range (degree-1 there).
  static RangeSumQuery Sum(const std::vector<size_t>& lo,
                           const std::vector<size_t>& hi, size_t measure_dim);

  /// SUM of squares of \p measure_dim (degree 2).
  static RangeSumQuery SumOfSquares(const std::vector<size_t>& lo,
                                    const std::vector<size_t>& hi,
                                    size_t measure_dim);

  /// SUM of x_a * x_b (the cross moment for COVARIANCE).
  static RangeSumQuery CrossMoment(const std::vector<size_t>& lo,
                                   const std::vector<size_t>& hi, size_t dim_a,
                                   size_t dim_b);

  /// Highest polynomial degree across dimensions.
  int max_degree() const;
};

/// \brief Second-order statistics assembled from range-sums (Shao's
/// observation, used by Sec. 3.4.1): AVERAGE = SUM/COUNT,
/// VARIANCE = E[x^2] - E[x]^2, COVARIANCE = E[xy] - E[x]E[y].
struct DerivedStatistics {
  double count = 0.0;
  double sum = 0.0;
  double sum_squares = 0.0;

  double Average() const { return count > 0 ? sum / count : 0.0; }
  double Variance() const {
    if (count <= 0) return 0.0;
    double mean = Average();
    return sum_squares / count - mean * mean;
  }
};

}  // namespace aims::propolyne
