#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "signal/dwt.h"
#include "signal/wavelet_filter.h"

/// \file datacube.h
/// \brief The multidimensional frequency-distribution cube ProPolyne
/// operates on (Sec. 3.3). Every attribute — including measures — is a
/// dimension of the cube and the cell value is the number of records at
/// that coordinate; polynomial range-sums of any measure then become inner
/// products of the cube with separable polynomial query functions, which
/// is what makes the symmetric treatment of dimensions work.

namespace aims::propolyne {

/// \brief Dimension names and power-of-two extents, row-major storage.
struct CubeSchema {
  std::vector<std::string> names;
  std::vector<size_t> extents;

  size_t num_dims() const { return extents.size(); }
  size_t total_size() const;
};

/// \brief Frequency cube holding both the raw cell counts and their tensor
/// wavelet transform, kept in sync under appends.
///
/// Each dimension may use its own wavelet filter — the multi-basis setting
/// of Sec. 3.3.1 ("transformed data where each dimension is transformed
/// through a different basis"): e.g. a cheap Haar on an id-like dimension
/// that only ever sees COUNT restrictions, and db3 on measure dimensions
/// that must support VARIANCE.
class DataCube {
 public:
  /// Builds an empty cube with one shared filter.
  static Result<DataCube> Make(CubeSchema schema,
                               signal::WaveletFilter filter);

  /// Builds an empty cube with a filter per dimension.
  static Result<DataCube> MakeMultiFilter(
      CubeSchema schema, std::vector<signal::WaveletFilter> filters);

  /// Builds a cube from dense cell values (e.g. a synth::GridDataset).
  static Result<DataCube> FromDense(CubeSchema schema,
                                    signal::WaveletFilter filter,
                                    std::vector<double> values);

  /// Dense build with per-dimension filters.
  static Result<DataCube> FromDenseMultiFilter(
      CubeSchema schema, std::vector<signal::WaveletFilter> filters,
      std::vector<double> values);

  const CubeSchema& schema() const { return schema_; }
  /// Filter of dimension \p dim.
  const signal::WaveletFilter& filter(size_t dim) const;
  /// Convenience for single-filter cubes: the dimension-0 filter.
  const signal::WaveletFilter& filter() const { return filter(0); }

  /// Raw cell values (frequencies).
  const std::vector<double>& values() const { return values_; }
  /// Tensor wavelet transform of the cell values.
  const std::vector<double>& wavelet() const { return wavelet_; }
  /// Total energy (sum of squares) of the wavelet representation — used by
  /// the progressive evaluator's guaranteed error bound.
  double wavelet_energy() const { return wavelet_energy_; }

  size_t FlatIndex(const std::vector<size_t>& idx) const;

  /// \brief Appends one record at coordinate \p idx with weight \p delta.
  ///
  /// The raw cell is bumped and the wavelet representation is updated
  /// *incrementally*: the tensor transform of a unit impulse is the outer
  /// product of per-dimension point transforms, each with O(lg n) nonzero
  /// entries, so an append costs O((lg n)^d) — the low-cost streaming
  /// update the paper relies on (Sec. 3.1.1, reason two).
  /// Returns the number of wavelet cells touched.
  Result<size_t> Append(const std::vector<size_t>& idx, double delta = 1.0);

  /// \brief Recomputes the full transform from the raw values (O(N lg N));
  /// used after bulk loads.
  Status RebuildWavelet();

 private:
  DataCube(CubeSchema schema, std::vector<signal::WaveletFilter> filters);

  CubeSchema schema_;
  std::vector<signal::WaveletFilter> filters_;  // one per dimension
  signal::TensorDwt transform_;
  std::vector<double> values_;
  std::vector<double> wavelet_;
  double wavelet_energy_ = 0.0;
};

}  // namespace aims::propolyne
