#pragma once

#include <functional>
#include <vector>

#include "common/status.h"
#include "propolyne/datacube.h"
#include "propolyne/evaluator.h"

/// \file batch.h
/// \brief Simultaneous evaluation of multiple related range aggregates
/// (Sec. 3.3.1): "These queries are very common and include SQL group-by
/// queries, drill-down queries, or general MDX expressions. The key
/// observation here is that these queries act as linear maps where range
/// queries act as linear functionals. Thus, where we approximate a vector
/// to estimate a range query result, we must approximate a matrix to
/// estimate a general query result. ... we have developed query evaluation
/// algorithms which share I/O maximally and retrieve the most important
/// data first."
///
/// A GROUP BY over dimension g is a stack of range-sums differing only in
/// the g-range; their wavelet transforms overlap heavily in every other
/// dimension, so one pass over the *union* of needed data coefficients
/// answers all groups ("shares I/O maximally"). Progressively, the
/// coefficients are consumed in decreasing importance under either the L2
/// norm across groups (minimize rms error) or the max norm (capture large
/// differences between related ranges early — the paper's Sobolev/Besov
/// motivation).

namespace aims::propolyne {

/// \brief Which error measure orders the shared coefficient stream.
enum class BatchErrorMeasure {
  kL2,   ///< importance = sum over groups of q_g^2 (rms error).
  kMax,  ///< importance = max over groups of |q_g| (worst-group error).
};

/// \brief A GROUP BY: the base query's range on dimension `group_dim` is
/// split into consecutive buckets of width `bucket_width`, one output per
/// bucket.
struct GroupByQuery {
  RangeSumQuery base;
  size_t group_dim = 0;
  size_t bucket_width = 1;
};

/// \brief One step of a progressive batch evaluation.
struct BatchStep {
  size_t coefficients_used = 0;
  std::vector<double> estimates;  ///< One per group.
  double max_error_bound = 0.0;   ///< Worst per-group guaranteed bound.
};

/// \brief Complete batch result.
struct BatchResult {
  /// Final per-group estimates; exact iff `complete`.
  std::vector<double> exact;
  /// Data coefficients fetched once for all groups.
  size_t shared_coefficients = 0;
  /// What independent per-group evaluation would have fetched in total.
  size_t independent_coefficients = 0;
  /// False when an observer stopped the progressive evaluation before the
  /// shared coefficient stream was exhausted.
  bool complete = true;
  std::vector<BatchStep> steps;  ///< Populated by EvaluateProgressive.
};

/// \brief Observer called after each recorded step of EvaluateProgressive;
/// return StepControl::kStop to end the evaluation with partial estimates.
using BatchStepObserver = std::function<StepControl(const BatchStep&)>;

/// \brief Evaluates group-by queries with maximal I/O sharing.
class BatchEvaluator {
 public:
  explicit BatchEvaluator(const DataCube* cube);

  /// Exact evaluation of every group, sharing data-coefficient accesses.
  Result<BatchResult> Evaluate(const GroupByQuery& query) const;

  /// Progressive evaluation: one shared coefficient stream ordered by the
  /// chosen error measure, recording a step every \p stride coefficients.
  /// When \p observer is set it runs after every recorded step and may stop
  /// the evaluation early (deadline/cancellation hooks for schedulers).
  Result<BatchResult> EvaluateProgressive(
      const GroupByQuery& query,
      BatchErrorMeasure measure = BatchErrorMeasure::kL2, size_t stride = 16,
      const BatchStepObserver& observer = {}) const;

  /// The individual range-sums a GroupByQuery expands to.
  Result<std::vector<RangeSumQuery>> ExpandGroups(
      const GroupByQuery& query) const;

 private:
  const DataCube* cube_;
  Evaluator evaluator_;
};

}  // namespace aims::propolyne
