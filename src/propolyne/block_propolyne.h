#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "propolyne/datacube.h"
#include "propolyne/evaluator.h"
#include "storage/block_cache.h"
#include "storage/block_device.h"

/// \file block_propolyne.h
/// \brief ProPolyne over *block wavelets* — the extension the storage
/// section promises (Sec. 3.2.1): "we can define a query dependent
/// importance function on disk blocks (e.g., minimizing worst-case or
/// average error), which would allow us to perform the most valuable I/O's
/// first and deliver approximate results progressively during query
/// evaluation."
///
/// The cube's wavelet coefficients live on a BlockDevice under an
/// error-tree tiling allocation. A query is evaluated by fetching whole
/// blocks, most-important first, where a block's importance is the energy
/// of the query coefficients stored on it; after every fetch the running
/// estimate and a Cauchy-Schwarz error bound are updated. Exactness is
/// reached after touching only the blocks that intersect the query's
/// support — everything else contributes zero.

namespace aims::propolyne {

/// \brief How a block's importance is scored.
enum class BlockImportance {
  kQueryEnergy,   ///< sum of q_i^2 on the block (minimizes expected error).
  kMaxQueryCoeff, ///< max |q_i| on the block (minimizes worst-case error).
};

/// \brief One step of a block-progressive evaluation.
struct BlockStep {
  size_t blocks_read = 0;
  /// Of blocks_read, how many were served by a configured BlockCache (no
  /// device I/O). Cumulative, like blocks_read.
  size_t cache_hits = 0;
  double estimate = 0.0;
  double error_bound = 0.0;
};

/// \brief The trajectory of a block-progressive evaluation.
struct BlockProgressiveResult {
  /// Final running estimate; equals the exact answer iff `complete`.
  double exact = 0.0;
  size_t total_blocks_needed = 0;  ///< Blocks intersecting the support.
  /// False when an observer stopped the evaluation before every needed
  /// block was read; the last step then carries a nonzero error bound.
  bool complete = true;
  std::vector<BlockStep> steps;
};

/// \brief Observer called after each block I/O of EvaluateProgressive;
/// return StepControl::kStop to end the evaluation with a partial answer.
using BlockStepObserver = std::function<StepControl(const BlockStep&)>;

/// \brief A DataCube whose wavelet representation is stored on disk blocks.
class BlockedCube {
 public:
  /// Places \p cube's wavelet coefficients on \p device using per-dimension
  /// error-tree tiling with the given virtual block sizes (their product is
  /// the real block item count; items are 8-byte doubles). When \p cache is
  /// set (not owned, must front the same device) block writes and
  /// progressive-evaluation reads route through it.
  static Result<BlockedCube> Make(const DataCube* cube,
                                  storage::BlockDevice* device,
                                  std::vector<size_t> virtual_block_sizes,
                                  storage::BlockCache* cache = nullptr);

  /// \brief Evaluates a query progressively at block granularity.
  /// The device's read counter advances once per fetched block. When
  /// \p observer is set it runs after every fetch and may stop the
  /// evaluation early (deadline/cancellation hooks for schedulers).
  Result<BlockProgressiveResult> EvaluateProgressive(
      const RangeSumQuery& query,
      BlockImportance importance = BlockImportance::kQueryEnergy,
      const BlockStepObserver& observer = {}) const;

  /// \brief Exact evaluation; returns the answer and reads every needed
  /// block (equivalent to running the progressive evaluation to the end).
  Result<double> Evaluate(const RangeSumQuery& query) const;

  /// Blocks the cube occupies on the device.
  size_t num_blocks() const { return block_contents_.size(); }
  size_t block_size_items() const { return block_size_items_; }

 private:
  BlockedCube(const DataCube* cube, storage::BlockDevice* device,
              storage::BlockCache* cache)
      : cube_(cube), device_(device), cache_(cache), evaluator_(cube) {}

  /// Logical block id of a flat (row-major) wavelet coefficient index.
  size_t BlockOfFlat(size_t flat) const;

  const DataCube* cube_;
  storage::BlockDevice* device_;
  storage::BlockCache* cache_ = nullptr;
  Evaluator evaluator_;
  std::vector<size_t> virtual_block_sizes_;
  std::vector<size_t> per_dim_blocks_;
  /// Per-dimension 1-D tiling: dimension -> coefficient index -> vblock.
  std::vector<std::vector<size_t>> dim_block_of_;
  /// Logical block -> coefficient flat indices stored there (sorted).
  std::vector<std::vector<size_t>> block_contents_;
  /// Logical block -> device block id.
  std::vector<storage::BlockId> device_blocks_;
  size_t block_size_items_ = 0;
};

}  // namespace aims::propolyne
