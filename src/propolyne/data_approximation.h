#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "propolyne/evaluator.h"

/// \file data_approximation.h
/// \brief The *data approximation* baseline ProPolyne is contrasted with
/// (Sec. 3.3, citing Vitter & Wang): keep only the largest-magnitude C
/// wavelet coefficients of the data and answer every query from that
/// synopsis. Its accuracy is "highly data dependent; it only works when the
/// data have a concise wavelet approximation" — the property benchmark E4
/// demonstrates against query-side approximation.

namespace aims::propolyne {

/// \brief Wavelet synopsis of a cube: the top-C coefficients by magnitude.
class DataApproximation {
 public:
  /// \param cube source cube (not owned; must outlive this object).
  DataApproximation(const DataCube* cube);

  /// \brief Answer using only the top \p budget data coefficients.
  Result<double> EvaluateWithBudget(const RangeSumQuery& query,
                                    size_t budget) const;

  /// \brief Progressive trajectory: estimates after each multiple of
  /// \p stride retained data coefficients (largest first), mirroring the
  /// shape of Evaluator::EvaluateProgressive for side-by-side comparison.
  Result<ProgressiveResult> EvaluateProgressive(const RangeSumQuery& query,
                                                size_t stride = 1,
                                                size_t max_budget = 0) const;

 private:
  const DataCube* cube_;
  Evaluator evaluator_;
  /// Data coefficient flat indices ordered by decreasing magnitude.
  std::vector<size_t> magnitude_order_;
};

/// \brief Workload-aware wavelet synopsis (Sec. 3.3.1, first refinement):
/// "some information about query workloads can be used to dramatically
/// improve the performance of [the] data approximation version of
/// ProPolyne." Instead of ranking data coefficients by magnitude alone,
/// they are ranked by their expected contribution to the workload:
/// |D_i|^2 * (expected query energy at i), estimated from a sample of
/// representative queries.
class WorkloadAwareSynopsis {
 public:
  /// \param workload representative queries used to estimate per-
  /// coefficient demand (they need not equal the evaluation queries).
  static Result<WorkloadAwareSynopsis> Make(
      const DataCube* cube, const std::vector<RangeSumQuery>& workload);

  /// Answer using only the top \p budget coefficients under the
  /// workload-aware ranking.
  Result<double> EvaluateWithBudget(const RangeSumQuery& query,
                                    size_t budget) const;

 private:
  WorkloadAwareSynopsis(const DataCube* cube) : cube_(cube), evaluator_(cube) {}

  const DataCube* cube_;
  Evaluator evaluator_;
  /// Flat indices ordered by decreasing workload-weighted importance.
  std::vector<size_t> order_;
  /// Rank of each flat index in `order_` (SIZE_MAX when never demanded).
  std::vector<size_t> rank_;
};

}  // namespace aims::propolyne
