#include "linalg/matrix.h"

#include <cmath>

#include "common/macros.h"

namespace aims::linalg {

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  AIMS_CHECK(data_.size() == rows * cols);
}

std::vector<double> Matrix::Row(size_t r) const {
  AIMS_CHECK(r < rows_);
  return std::vector<double>(data_.begin() + static_cast<ptrdiff_t>(r * cols_),
                             data_.begin() +
                                 static_cast<ptrdiff_t>((r + 1) * cols_));
}

std::vector<double> Matrix::Col(size_t c) const {
  AIMS_CHECK(c < cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = At(r, c);
  return out;
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  AIMS_CHECK(r < rows_ && values.size() == cols_);
  for (size_t c = 0; c < cols_; ++c) At(r, c) = values[c];
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  AIMS_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = At(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out.At(r, c) += a * other.At(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix out(cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t i = 0; i < cols_; ++i) {
      double a = At(r, i);
      if (a == 0.0) continue;
      for (size_t j = i; j < cols_; ++j) {
        out.At(i, j) += a * At(r, j);
      }
    }
  }
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = 0; j < i; ++j) out.At(i, j) = out.At(j, i);
  }
  return out;
}

Matrix Matrix::CenterColumns() const {
  Matrix out = *this;
  for (size_t c = 0; c < cols_; ++c) {
    double mean = 0.0;
    for (size_t r = 0; r < rows_; ++r) mean += At(r, c);
    mean /= static_cast<double>(std::max<size_t>(rows_, 1));
    for (size_t r = 0; r < rows_; ++r) out.At(r, c) -= mean;
  }
  return out;
}

Matrix Matrix::ColumnCovariance() const {
  AIMS_CHECK(rows_ >= 2);
  Matrix centered = CenterColumns();
  Matrix cov = centered.Gram();
  double scale = 1.0 / static_cast<double>(rows_ - 1);
  for (double& x : cov.data()) x *= scale;
  return cov;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

Matrix Matrix::Identity(size_t n) {
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) out.At(i, i) = 1.0;
  return out;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  AIMS_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  AIMS_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace aims::linalg
