#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"

namespace aims::linalg {

Result<EigenDecomposition> SymmetricEigen(const Matrix& a, int max_sweeps,
                                          double tol) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SymmetricEigen: matrix must be square");
  }
  const size_t n = a.rows();
  Matrix m = a;
  // Symmetrize defensively (callers pass covariance/Gram matrices).
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      double avg = 0.5 * (m.At(i, j) + m.At(j, i));
      m.At(i, j) = avg;
      m.At(j, i) = avg;
    }
  }
  Matrix v = Matrix::Identity(n);

  auto off_diagonal_norm = [&]() {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) acc += m.At(i, j) * m.At(i, j);
    }
    return std::sqrt(acc);
  };

  double scale = std::max(m.FrobeniusNorm(), 1e-300);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tol * scale) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = m.At(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        double app = m.At(p, p);
        double aqq = m.At(q, q);
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        // Apply the rotation J(p, q, theta) on both sides of m.
        for (size_t k = 0; k < n; ++k) {
          double mkp = m.At(k, p);
          double mkq = m.At(k, q);
          m.At(k, p) = c * mkp - s * mkq;
          m.At(k, q) = s * mkp + c * mkq;
        }
        for (size_t k = 0; k < n; ++k) {
          double mpk = m.At(p, k);
          double mqk = m.At(q, k);
          m.At(p, k) = c * mpk - s * mqk;
          m.At(q, k) = s * mpk + c * mqk;
        }
        for (size_t k = 0; k < n; ++k) {
          double vkp = v.At(k, p);
          double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenDecomposition out;
  out.values.resize(n);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = m.At(i, i);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return diag[x] > diag[y]; });
  out.vectors = Matrix(n, n);
  for (size_t c = 0; c < n; ++c) {
    out.values[c] = diag[order[c]];
    for (size_t r = 0; r < n; ++r) out.vectors.At(r, c) = v.At(r, order[c]);
  }
  return out;
}

Result<SvdDecomposition> Svd(const Matrix& a) {
  if (a.empty()) return Status::InvalidArgument("Svd: empty matrix");
  const size_t n = a.cols();
  Matrix gram = a.Gram();  // n x n
  AIMS_ASSIGN_OR_RETURN(EigenDecomposition eig, SymmetricEigen(gram));
  SvdDecomposition out;
  out.values.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out.values[i] = std::sqrt(std::max(eig.values[i], 0.0));
  }
  out.v = eig.vectors;
  // U = A V S^{-1} for nonzero singular values; zero columns otherwise.
  out.u = Matrix(a.rows(), n);
  Matrix av = a.Multiply(out.v);
  for (size_t c = 0; c < n; ++c) {
    double s = out.values[c];
    if (s > 1e-12) {
      for (size_t r = 0; r < a.rows(); ++r) out.u.At(r, c) = av.At(r, c) / s;
    }
  }
  return out;
}

Result<EigenDecomposition> RankOneUpdate(const EigenDecomposition& current,
                                         const std::vector<double>& x,
                                         double alpha) {
  const size_t n = x.size();
  if (current.vectors.rows() != n || current.vectors.cols() != n) {
    return Status::InvalidArgument("RankOneUpdate: dimension mismatch");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("RankOneUpdate: alpha must be in [0,1]");
  }
  // Reconstruct (1-alpha) C + alpha x x^T and re-diagonalize. For the 28-dim
  // matrices the recognizer uses, an exact re-diagonalization is cheap and
  // avoids the numerical fragility of secular-equation updates.
  Matrix c(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double reconstructed = 0.0;
      for (size_t k = 0; k < n; ++k) {
        reconstructed += current.values[k] * current.vectors.At(i, k) *
                         current.vectors.At(j, k);
      }
      c.At(i, j) = (1.0 - alpha) * reconstructed + alpha * x[i] * x[j];
    }
  }
  return SymmetricEigen(c);
}

}  // namespace aims::linalg
