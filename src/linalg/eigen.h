#pragma once

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

/// \file eigen.h
/// \brief Symmetric eigendecomposition (cyclic Jacobi) and the SVD built on
/// it. The recognition subsystem needs the spectra of 28x28 covariance
/// matrices, for which Jacobi is simple, accurate, and fast.

namespace aims::linalg {

/// \brief Eigen-decomposition of a symmetric matrix: A = V diag(w) V^T.
struct EigenDecomposition {
  /// Eigenvalues, sorted descending.
  std::vector<double> values;
  /// Eigenvectors as matrix columns, matching `values` order.
  Matrix vectors;
};

/// \brief Cyclic Jacobi eigendecomposition of symmetric \p a.
/// Fails if \p a is not square (symmetry is assumed, the strictly lower
/// triangle is ignored).
Result<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                          int max_sweeps = 64,
                                          double tol = 1e-12);

/// \brief Thin singular value decomposition A (m x n, m >= n or not):
/// A = U diag(s) V^T with s sorted descending.
struct SvdDecomposition {
  Matrix u;                    ///< m x r
  std::vector<double> values;  ///< r singular values, descending
  Matrix v;                    ///< n x r (right singular vectors as columns)
};

/// \brief SVD via eigendecomposition of the Gram matrix A^T A (adequate for
/// the well-conditioned low-rank use in pattern similarity).
Result<SvdDecomposition> Svd(const Matrix& a);

/// \brief Rank-one symmetric eigen update helper: given the current
/// decomposition of C and a new observation row x, produces the
/// decomposition of (1-alpha) C + alpha x x^T. Used by the incremental SVD
/// path of the online recognizer (Sec. 3.4.1 "computing SVD incrementally").
Result<EigenDecomposition> RankOneUpdate(const EigenDecomposition& current,
                                         const std::vector<double>& x,
                                         double alpha);

}  // namespace aims::linalg
