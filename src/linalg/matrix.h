#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"

/// \file matrix.h
/// \brief Minimal dense row-major matrix used by the recognition subsystem
/// (multi-sensor segments are matrices; similarity is computed from their
/// SVD / covariance spectra).

namespace aims::linalg {

/// \brief Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  /// rows x cols, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  /// From row-major data.
  Matrix(size_t rows, size_t cols, std::vector<double> data);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Returns row \p r as a vector.
  std::vector<double> Row(size_t r) const;
  /// Returns column \p c as a vector.
  std::vector<double> Col(size_t c) const;
  /// Overwrites row \p r.
  void SetRow(size_t r, const std::vector<double>& values);

  Matrix Transpose() const;
  /// Matrix product; dies on shape mismatch.
  Matrix Multiply(const Matrix& other) const;

  /// this^T * this (Gram matrix), the cols x cols second-moment matrix.
  Matrix Gram() const;

  /// Column-mean-centered copy.
  Matrix CenterColumns() const;

  /// Sample covariance of the columns: centered Gram / (rows - 1).
  Matrix ColumnCovariance() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Identity matrix.
  static Matrix Identity(size_t n);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// \brief Euclidean inner product of equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// \brief Euclidean norm.
double Norm(const std::vector<double>& v);

/// \brief Euclidean distance between equal-length vectors.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace aims::linalg
