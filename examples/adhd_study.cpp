// ADHD study — the paper's off-line query mode (Sec. 2.1, 3.3).
//
// Children perform the AX attention task inside the Virtual Classroom while
// head/hand/leg trackers stream 6-D immersidata. After the sessions are
// collected, psychologists ask queries ranging from simple ("which
// distraction was around when this child missed?") to statistical
// (ProPolyne range aggregates) to diagnostic ("distinguish hyperactive kids
// from normal ones" — the 86%-accuracy SVM).

#include <cstdio>

#include "common/macros.h"
#include "propolyne/batch.h"
#include "propolyne/evaluator.h"
#include "recognition/classifiers.h"
#include "recognition/features.h"
#include "synth/virtual_classroom.h"

using namespace aims;

int main() {
  std::printf("== AIMS off-line analysis: the Virtual Classroom study ==\n\n");
  synth::ClassroomConfig config;
  config.session_duration_s = 90.0;
  synth::VirtualClassroomSimulator classroom(config, /*seed=*/42);
  std::vector<synth::ClassroomSession> cohort = classroom.GenerateCohort(20);
  std::printf("recorded %zu sessions (%zu control, %zu ADHD), %zu tracker "
              "channels at %.0f Hz\n\n",
              cohort.size(), cohort.size() / 2, cohort.size() / 2,
              synth::kNumTrackers * synth::kTrackerDims,
              synth::kClassroomSampleRateHz);

  // ---- Simple event query: what was around when a child missed? --------
  const synth::ClassroomSession& child = cohort[1];  // an ADHD subject
  std::printf("Q1: which distraction was around when child #1 missed?\n");
  int shown = 0;
  for (const synth::Response& response : child.responses) {
    if (response.hit) continue;
    const synth::DistractionEvent* nearby = nullptr;
    for (const synth::DistractionEvent& d : child.distractions) {
      if (response.time_s >= d.time_s - 1.0 &&
          response.time_s <= d.time_s + d.duration_s + 1.0) {
        nearby = &d;
        break;
      }
    }
    std::printf("  miss at t=%6.1fs: %s\n", response.time_s,
                nearby ? nearby->kind.c_str() : "(no distraction nearby)");
    if (++shown == 5) break;
  }

  // ---- ProPolyne statistical query over the stored immersidata ---------
  // Build the (sensor-id, time-bucket, speed-bucket) frequency cube for one
  // session and ask for the average and variance of head-tracker speed —
  // the "polynomial range-sum queries" of Sec. 2.1.
  std::printf("\nQ2: head-tracker speed statistics via ProPolyne range "
              "sums\n");
  propolyne::CubeSchema schema{{"tracker", "time", "speed"}, {4, 64, 64}};
  auto cube = propolyne::DataCube::Make(
                  schema, signal::WaveletFilter::Make(signal::WaveletKind::kDb3))
                  .ValueOrDie();
  const double session_s = config.session_duration_s;
  for (size_t tracker = 0; tracker < synth::kNumTrackers; ++tracker) {
    std::vector<double> speed =
        recognition::TrackerSpeedSeries(child, tracker);
    for (size_t f = 0; f < speed.size(); ++f) {
      size_t time_bucket = std::min<size_t>(
          63, static_cast<size_t>(64.0 * f / speed.size()));
      size_t speed_bucket =
          std::min<size_t>(63, static_cast<size_t>(speed[f] * 2.0));
      AIMS_CHECK(cube.Append({tracker, time_bucket, speed_bucket}).ok());
    }
  }
  propolyne::Evaluator evaluator(&cube);
  for (size_t tracker : {0u, 2u}) {  // head, right hand
    auto stats = propolyne::ComputeStatistics(
                     evaluator, {tracker, 0, 0}, {tracker, 63, 63},
                     /*measure_dim=*/2)
                     .ValueOrDie();
    std::printf("  %-10s mean speed bucket %.2f, variance %.2f "
                "(count %.0f samples)\n",
                synth::TrackerSiteName(static_cast<synth::TrackerSite>(tracker)),
                stats.Average(), stats.Variance(), stats.count);
  }
  (void)session_s;

  // ---- Drill-down: attention over the session (GROUP BY time) ----------
  // One batched evaluation answers "mean head speed per session eighth"
  // with all groups sharing the fetched coefficients (Sec. 3.3.1).
  std::printf("\nQ2b: head-tracker mean speed per session eighth (one "
              "batched GROUP BY)\n  ");
  propolyne::BatchEvaluator batch(&cube);
  propolyne::GroupByQuery sums;
  sums.base = propolyne::RangeSumQuery::Sum({0, 0, 0}, {0, 63, 63}, 2);
  sums.group_dim = 1;
  sums.bucket_width = 8;  // 64 time buckets -> 8 groups
  propolyne::GroupByQuery counts = sums;
  counts.base = propolyne::RangeSumQuery::Count({0, 0, 0}, {0, 63, 63});
  auto sum_result = batch.Evaluate(sums).ValueOrDie();
  auto count_result = batch.Evaluate(counts).ValueOrDie();
  for (size_t g = 0; g < sum_result.exact.size(); ++g) {
    double mean = count_result.exact[g] > 0
                      ? sum_result.exact[g] / count_result.exact[g]
                      : 0.0;
    std::printf("%.1f ", mean);
  }
  std::printf("\n  (shared %zu coefficient fetches vs %zu if evaluated "
              "group by group)\n",
              sum_result.shared_coefficients,
              sum_result.independent_coefficients);

  // ---- The diagnostic classifier (paper: 86%) --------------------------
  std::printf("\nQ3: automatically distinguish hyperactive kids from normal "
              "ones\n");
  auto dataset = recognition::BuildAdhdDataset(cohort);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (const auto& row : dataset) {
    rows.push_back(row.features);
    labels.push_back(row.label);
  }
  auto result = recognition::CrossValidate(
      rows, labels, 5, 7,
      [](const std::vector<std::vector<double>>& train_rows,
         const std::vector<int>& train_labels,
         const std::vector<std::vector<double>>& test_rows) {
        recognition::FeatureScaler scaler =
            recognition::FeatureScaler::Fit(train_rows);
        std::vector<std::vector<double>> scaled;
        for (const auto& row : train_rows) {
          scaled.push_back(scaler.Transform(row));
        }
        recognition::LinearSvm svm;
        AIMS_CHECK(svm.Train(scaled, train_labels).ok());
        std::vector<int> out;
        for (const auto& row : test_rows) {
          out.push_back(svm.Predict(scaler.Transform(row)));
        }
        return out;
      });
  std::printf("  SVM on tracker motion speed: %.0f%% cross-validated "
              "accuracy (paper reports 86%%)\n",
              100.0 * result.accuracy);
  return 0;
}
