// ASL recognition — the paper's on-line query mode (Sec. 2.2, 3.4).
//
// A user "speaks" American Sign Language into a CyberGlove; AIMS must
// isolate each sign from the continuous 28-channel stream and recognize it
// against the vocabulary in real time. This example runs a longer scripted
// conversation, prints the recognized transcript against the ground truth,
// and shows the accumulated-evidence trajectory for one sign — the
// information-theoretic accumulation of Sec. 3.4.

#include <cstdio>
#include <string>

#include "recognition/isolator.h"
#include "recognition/similarity.h"
#include "recognition/vocabulary.h"
#include "synth/cyberglove.h"

using aims::recognition::RecognitionEvent;
using aims::recognition::StreamRecognizer;
using aims::recognition::StreamRecognizerConfig;
using aims::recognition::Vocabulary;
using aims::recognition::WeightedSvdSimilarity;

namespace {
aims::linalg::Matrix ToMatrix(const aims::streams::Recording& rec) {
  aims::linalg::Matrix m(rec.num_frames(), rec.num_channels());
  for (size_t r = 0; r < rec.num_frames(); ++r) {
    m.SetRow(r, rec.frames[r].values);
  }
  return m;
}
}  // namespace

int main() {
  aims::synth::CyberGloveSimulator glove(aims::synth::DefaultAslVocabulary(),
                                         /*seed=*/77, /*noise=*/0.6);

  // Vocabulary: one template per motion sign, signed by a reference user.
  aims::synth::SubjectProfile reference = glove.MakeSubject();
  Vocabulary vocabulary;
  std::vector<size_t> motion_signs = {12, 13, 14, 15, 16, 17};
  std::printf("vocabulary:");
  for (size_t sign : motion_signs) {
    vocabulary.Add(glove.vocabulary()[sign].name,
                   ToMatrix(glove.GenerateSign(sign, reference).ValueOrDie()));
    std::printf(" %s", glove.vocabulary()[sign].name.c_str());
  }
  std::printf("\n\n");

  // A different signer performs a scripted "conversation".
  aims::synth::SubjectProfile signer = glove.MakeSubject();
  std::vector<size_t> script = {15, 16, 12, 17, 13, 15, 14, 12};
  std::vector<aims::synth::SignSegment> truth;
  aims::streams::Recording stream =
      glove.GenerateSequence(script, signer, /*rest=*/1.0, &truth)
          .ValueOrDie();
  std::printf("streaming %.1f s of immersidata (%zu frames, 28 channels)\n\n",
              stream.num_frames() / stream.sample_rate_hz,
              stream.num_frames());

  WeightedSvdSimilarity measure;
  StreamRecognizerConfig config;
  StreamRecognizer recognizer(&vocabulary, &measure, config);

  std::vector<RecognitionEvent> events;
  bool printed_evidence = false;
  for (const aims::streams::Frame& frame : stream.frames) {
    auto event = recognizer.Push(frame).ValueOrDie();
    // Show the evidence race once, mid-way through the second sign.
    if (!printed_evidence && recognizer.segment_open() &&
        events.size() == 1 &&
        recognizer.frames_seen() > truth[1].start_frame + 40) {
      std::printf("accumulated evidence inside sign #2 (truth: %s):\n",
                  glove.vocabulary()[script[1]].name.c_str());
      const auto& evidence = recognizer.accumulated_evidence();
      for (size_t i = 0; i < evidence.size(); ++i) {
        std::printf("  %-8s %+.3f\n",
                    vocabulary.entries()[i].label.c_str(), evidence[i]);
      }
      std::printf("\n");
      printed_evidence = true;
    }
    if (event.has_value()) events.push_back(*event);
  }
  auto last = recognizer.Finish().ValueOrDie();
  if (last.has_value()) events.push_back(*last);

  // Transcript.
  std::printf("%-4s %-10s %-10s %-14s %s\n", "#", "truth", "recognized",
              "frames", "confidence");
  size_t correct = 0;
  std::vector<bool> used(events.size(), false);
  for (size_t t = 0; t < truth.size(); ++t) {
    std::string recognized = "(missed)";
    std::string frames = "-";
    double confidence = 0.0;
    for (size_t e = 0; e < events.size(); ++e) {
      if (used[e]) continue;
      if (events[e].start_frame < truth[t].end_frame &&
          events[e].end_frame > truth[t].start_frame) {
        used[e] = true;
        recognized = events[e].label;
        frames = "[" + std::to_string(events[e].start_frame) + "," +
                 std::to_string(events[e].end_frame) + ")";
        confidence = events[e].confidence;
        break;
      }
    }
    const std::string& expected = glove.vocabulary()[script[t]].name;
    bool ok = recognized == expected;
    if (ok) ++correct;
    std::printf("%-4zu %-10s %-10s %-14s %.2f %s\n", t + 1, expected.c_str(),
                recognized.c_str(), frames.c_str(), confidence,
                ok ? "" : "  <-- wrong");
  }
  std::printf("\n%zu/%zu signs recognized correctly; %zu events emitted\n",
              correct, truth.size(), events.size());
  return 0;
}
