// Server demo: the aims::server runtime serving several tenants at once.
//
// Where quickstart.cpp drives one AimsSystem from one thread, this example
// stands up the full multi-tenant service runtime:
//   1. an AimsServer with 2 catalog shards and a 2-thread executor,
//   2. three clients submitting glove sessions through the admission-
//      controlled IngestService (bounded queues — a flooding client gets
//      ResourceExhausted back, never an unbounded buffer),
//   3. concurrent range queries against the sharded catalog,
//   4. a live recognition stream per client,
//   5. the MetricsRegistry dump that ties it all together.

#include <cstdio>
#include <vector>

#include "common/macros.h"
#include "server/server.h"
#include "synth/cyberglove.h"

using aims::server::AimsServer;
using aims::server::ClientId;
using aims::server::GlobalSessionId;
using aims::server::ServerConfig;

int main() {
  std::printf("== AIMS server demo ==\n\n");

  ServerConfig config;
  config.num_shards = 2;
  config.num_threads = 2;
  config.admission.queue_capacity = 4;
  AimsServer server(config);
  std::printf("server up: %zu shards, %zu worker threads\n\n",
              server.config().num_shards, server.config().num_threads);

  // Three tenants, each with their own signing session.
  aims::synth::CyberGloveSimulator glove(aims::synth::DefaultAslVocabulary(),
                                         /*seed=*/42);
  const std::vector<ClientId> clients = {101, 102, 103};
  std::vector<aims::streams::Recording> sessions;
  std::vector<aims::synth::SubjectProfile> subjects;
  for (size_t i = 0; i < clients.size(); ++i) {
    subjects.push_back(glove.MakeSubject());
    sessions.push_back(
        glove.GenerateSequence({i, i + 1, i + 2}, subjects[i], 0.8, nullptr)
            .ValueOrDie());
  }

  // ---------------------------------------------------------------- ingest
  // Submissions are asynchronous: the callback fires on a pool worker once
  // the recording is transformed and placed on its shard's blocks.
  std::vector<GlobalSessionId> ids(clients.size());
  for (size_t i = 0; i < clients.size(); ++i) {
    AIMS_CHECK(server.ingest()
                   .Submit(clients[i], "session", sessions[i],
                           [i, &ids](const aims::Result<GlobalSessionId>& r) {
                             AIMS_CHECK(r.ok());
                             ids[i] = r.ValueOrDie();
                           })
                   .ok());
  }
  server.ingest().Drain();
  for (size_t i = 0; i < clients.size(); ++i) {
    std::printf("client %llu -> session %llu on shard %zu\n",
                static_cast<unsigned long long>(clients[i]),
                static_cast<unsigned long long>(ids[i]),
                aims::server::ShardedCatalog::ShardOf(ids[i]));
  }

  // ---------------------------------------------------------------- query
  // The whole offline query path runs under shared locks: these queries
  // would proceed concurrently with each other even on one shard.
  std::printf("\nwrist-flexion means (channel 20):\n");
  for (size_t i = 0; i < clients.size(); ++i) {
    aims::core::RangeStatistics stats =
        server.catalog()
            .QueryRange(ids[i], 20, 0, sessions[i].num_frames() - 1)
            .ValueOrDie();
    std::printf("  session %llu: mean %.2f deg (%zu block reads)\n",
                static_cast<unsigned long long>(ids[i]), stats.mean,
                stats.blocks_read);
  }

  // ----------------------------------------------------------- recognition
  // One live recognizer per client, all sharing the server vocabulary.
  for (size_t sign : {0u, 1u, 2u, 3u, 4u}) {
    aims::streams::Recording templ =
        glove.GenerateSign(sign, subjects[0]).ValueOrDie();
    aims::linalg::Matrix m(templ.num_frames(), templ.num_channels());
    for (size_t r = 0; r < templ.num_frames(); ++r) {
      m.SetRow(r, templ.frames[r].values);
    }
    server.AddVocabularyEntry(glove.vocabulary()[sign].name, std::move(m));
  }
  std::printf("\nlive recognition, one stream per client:\n");
  for (size_t i = 0; i < clients.size(); ++i) {
    AIMS_CHECK(server.recognition().OpenStream(clients[i]).ok());
    for (const aims::streams::Frame& frame : sessions[i].frames) {
      AIMS_CHECK(server.recognition().PushFrame(clients[i], frame).ok());
    }
    // Bounded per-stream history, available while the stream is open.
    auto events = server.recognition().RecentEvents(clients[i]);
    std::printf("  client %llu:",
                static_cast<unsigned long long>(clients[i]));
    for (const auto& event : events) {
      std::printf("  %s(%.2f)", event.label.c_str(), event.confidence);
    }
    // Closing flushes the tail of the stream; it may complete one last
    // motion.
    auto last = server.recognition().CloseStream(clients[i]).ValueOrDie();
    if (last.has_value()) {
      std::printf("  %s(%.2f)", last->label.c_str(), last->confidence);
    }
    std::printf("\n");
  }

  // ---------------------------------------------------------------- wrap up
  server.Shutdown();
  std::printf("\nmetrics after shutdown:\n%s",
              server.metrics().DumpText().c_str());
  return 0;
}
