// Server demo: the aims::server runtime serving several tenants at once,
// spoken entirely through the typed request/response API (api.h).
//
// Where quickstart.cpp drives one AimsSystem from one thread, this example
// stands up the full multi-tenant service runtime:
//   1. an AimsServer with 2 catalog shards and a 2-thread executor,
//   2. three clients opening sessions and storing glove recordings through
//      the admission-controlled ingest pipeline,
//   3. deadline-aware progressive queries through the QueryScheduler — the
//      same query under a tight deadline returns a partial answer with a
//      guaranteed error bound, under no deadline it runs to exactness,
//   4. a live recognition stream per client via StreamSamples,
//   5. the per-request trace timeline and the MetricsRegistry dump.

#include <cstdio>
#include <vector>

#include "common/macros.h"
#include "server/server.h"
#include "synth/cyberglove.h"

using aims::server::AimsServer;
using aims::server::ClientId;
using aims::server::GlobalSessionId;
using aims::server::ServerConfig;

int main() {
  std::printf("== AIMS server demo ==\n\n");

  ServerConfig config;
  config.num_shards = 2;
  config.num_threads = 2;
  config.admission.queue_capacity = 4;
  // Small blocks + simulated I/O waits give the progressive queries enough
  // real block reads for deadlines to bite.
  config.system.block_size_bytes = 64;
  config.system.disk_cost.seek_ms = 2.0;
  config.system.disk_cost.simulate_io_wait = true;
  AimsServer server(config);
  std::printf("server up: %zu shards, %zu worker threads\n\n",
              server.config().num_shards, server.config().num_threads);

  // Three tenants, each with their own signing session.
  aims::synth::CyberGloveSimulator glove(aims::synth::DefaultAslVocabulary(),
                                         /*seed=*/42);
  const std::vector<ClientId> clients = {101, 102, 103};
  std::vector<aims::streams::Recording> sessions;
  std::vector<aims::synth::SubjectProfile> subjects;
  for (size_t i = 0; i < clients.size(); ++i) {
    subjects.push_back(glove.MakeSubject());
    sessions.push_back(
        glove.GenerateSequence({i, i + 1, i + 2}, subjects[i], 0.8, nullptr)
            .ValueOrDie());
  }

  // The vocabulary must be registered before any recognition stream opens
  // (it is immutable while streams are running).
  for (size_t sign : {0u, 1u, 2u, 3u, 4u}) {
    aims::streams::Recording templ =
        glove.GenerateSign(sign, subjects[0]).ValueOrDie();
    aims::linalg::Matrix m(templ.num_frames(), templ.num_channels());
    for (size_t r = 0; r < templ.num_frames(); ++r) {
      m.SetRow(r, templ.frames[r].values);
    }
    AIMS_CHECK(
        server.AddVocabularyEntry(glove.vocabulary()[sign].name, std::move(m))
            .ok());
  }

  // ---------------------------------------------------------- open + ingest
  std::vector<GlobalSessionId> ids(clients.size());
  for (size_t i = 0; i < clients.size(); ++i) {
    auto opened = server.OpenSession({clients[i], /*enable_recognition=*/true});
    AIMS_CHECK(opened.ok());
    auto stored = server.IngestRecording({clients[i], "session", sessions[i]});
    AIMS_CHECK(stored.ok());
    ids[i] = stored->session;
    std::printf("client %llu -> session %llu (router epoch %llu, %zu frames)\n",
                static_cast<unsigned long long>(clients[i]),
                static_cast<unsigned long long>(ids[i]),
                static_cast<unsigned long long>(opened->router_epoch),
                stored->num_frames);
  }

  // ------------------------------------------------- deadline-aware queries
  // The same wrist-flexion AVERAGE, first under a 1 ms deadline (partial
  // answer, guaranteed bound), then with no deadline (exact). The range is
  // deliberately ragged: a full dyadic range would collapse to a single
  // scaling coefficient and finish in one block read.
  std::printf("\nwrist-flexion means (channel 20), progressive:\n");
  for (double deadline_ms : {1.0, 0.0}) {
    aims::server::QueryRequest query;
    query.session = ids[0];
    query.channel = 20;
    query.first_frame = 5;
    query.last_frame = sessions[0].num_frames() - 6;
    query.deadline_ms = deadline_ms;
    auto submitted = server.SubmitQuery({clients[0], query});
    AIMS_CHECK(submitted.ok());
    aims::server::QueryOutcome outcome = submitted->ticket->Wait();
    std::printf(
        "  deadline %4.1f ms -> %s: mean %.2f deg, +/- %.2f on the sum, "
        "%zu/%zu blocks\n",
        deadline_ms, aims::server::QueryStateName(outcome.state),
        outcome.answer.mean, outcome.answer.error_bound,
        outcome.answer.blocks_read, outcome.answer.blocks_needed);
  }

  // ----------------------------------------------------------- recognition
  std::printf("\nlive recognition, one stream per client:\n");
  for (size_t i = 0; i < clients.size(); ++i) {
    auto streamed = server.StreamSamples({clients[i], sessions[i].frames});
    AIMS_CHECK(streamed.ok());
    std::printf("  client %llu:",
                static_cast<unsigned long long>(clients[i]));
    for (const auto& event : streamed->events) {
      std::printf("  %s(%.2f)", event.label.c_str(), event.confidence);
    }
    // Closing flushes the tail of the stream; it may complete one last
    // motion.
    auto closed = server.CloseSession({clients[i]});
    AIMS_CHECK(closed.ok());
    if (closed->final_event.has_value()) {
      std::printf("  %s(%.2f)", closed->final_event->label.c_str(),
                  closed->final_event->confidence);
    }
    std::printf("\n");
  }

  // ---------------------------------------------------------------- wrap up
  server.Shutdown();
  std::printf("\nlast request trace:\n");
  auto traces = server.tracer().Snapshot();
  if (!traces.empty()) {
    for (const auto& span : traces.back().spans()) {
      std::printf("  %-16s %8.3f ms .. %8.3f ms\n", span.name.c_str(),
                  span.start_ms, span.end_ms);
    }
  }
  std::printf("\nmetrics after shutdown:\n%s",
              server.metrics().DumpText().c_str());
  return 0;
}
