// Progressive OLAP — the Fig. 4 demo of the paper (Sec. 4).
//
// The AIMS prototype served "exact, approximate and progressive
// range-aggregate query supports (e.g., average, count, covariance) on
// multidimensional data sets" — atmospheric data from NASA/JPL. This
// example rebuilds that demo on a synthetic atmospheric field: it runs a
// range-AVERAGE progressively and prints the estimate and its guaranteed
// error bound as coefficients stream in, then shows a COVARIANCE query.

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "common/macros.h"
#include "core/aims.h"
#include "propolyne/evaluator.h"
#include "synth/cyberglove.h"
#include "synth/olap_data.h"

using namespace aims;

int main() {
  std::printf("== Progressive range aggregates on atmospheric data ==\n\n");

  // A smooth 2-D field standing in for the NASA/JPL measurements, plus a
  // coupled "humidity" dimension so covariance has something to find.
  Rng rng(2003);
  synth::GridDataset field = synth::MakeSmoothField({128, 128}, 8, &rng);
  propolyne::CubeSchema schema{{"lat", "lon"}, field.shape};
  auto cube =
      propolyne::DataCube::FromDense(
          schema, signal::WaveletFilter::Make(signal::WaveletKind::kDb3),
          field.values)
          .ValueOrDie();
  propolyne::Evaluator evaluator(&cube);

  // Range-SUM over a region, delivered progressively.
  std::vector<size_t> lo = {20, 35}, hi = {95, 110};
  propolyne::RangeSumQuery sum_query = propolyne::RangeSumQuery::Count(lo, hi);
  auto progressive = evaluator.EvaluateProgressive(sum_query, 25).ValueOrDie();
  double exact = progressive.exact;
  std::printf("progressive SUM of the field over lat [20,95] x lon "
              "[35,110]:\n");
  std::printf("%-14s %-16s %-16s %s\n", "coefficients", "estimate",
              "error bound", "true rel. error");
  size_t shown = 0;
  for (const auto& step : progressive.steps) {
    if (shown < 8 || step.coefficients_used ==
                         progressive.steps.back().coefficients_used) {
      std::printf("%-14zu %-16.1f %-16.1f %.5f\n", step.coefficients_used,
                  step.estimate, step.error_bound,
                  std::fabs(step.estimate - exact) /
                      std::max(std::fabs(exact), 1e-9));
      ++shown;
    }
  }
  std::printf("exact answer: %.1f (the final progressive step matches)\n\n",
              exact);

  // Covariance between two attributes, computed purely from polynomial
  // range-sums (Sec. 3.3: "not only COUNT, SUM and AVERAGE, but also
  // VARIANCE, COVARIANCE and more").
  std::printf("COVARIANCE via polynomial range-sums:\n");
  // Build a (x, y) frequency cube from correlated synthetic records.
  propolyne::CubeSchema record_schema{{"temperature", "humidity"}, {64, 64}};
  auto record_cube =
      propolyne::DataCube::Make(
          record_schema, signal::WaveletFilter::Make(signal::WaveletKind::kDb3))
          .ValueOrDie();
  const int kRecords = 20000;
  for (int i = 0; i < kRecords; ++i) {
    double t = rng.Uniform(0.0, 63.0);
    double h = std::clamp(0.7 * t + rng.Gaussian(0.0, 6.0), 0.0, 63.0);
    AIMS_CHECK(record_cube
                   .Append({static_cast<size_t>(t), static_cast<size_t>(h)})
                   .ok());
  }
  propolyne::Evaluator record_evaluator(&record_cube);
  std::vector<size_t> all_lo = {0, 0}, all_hi = {63, 63};
  double n = record_evaluator
                 .Evaluate(propolyne::RangeSumQuery::Count(all_lo, all_hi))
                 .ValueOrDie();
  double sum_t = record_evaluator
                     .Evaluate(propolyne::RangeSumQuery::Sum(all_lo, all_hi, 0))
                     .ValueOrDie();
  double sum_h = record_evaluator
                     .Evaluate(propolyne::RangeSumQuery::Sum(all_lo, all_hi, 1))
                     .ValueOrDie();
  double sum_th =
      record_evaluator
          .Evaluate(propolyne::RangeSumQuery::CrossMoment(all_lo, all_hi, 0, 1))
          .ValueOrDie();
  double covariance = sum_th / n - (sum_t / n) * (sum_h / n);
  std::printf("  E[t]=%.2f E[h]=%.2f cov(t,h)=%.2f over %.0f records\n",
              sum_t / n, sum_h / n, covariance, n);
  std::printf("  (generated with h ~ 0.7 t + noise, so cov should be ~0.7 * "
              "var(t) = %.2f)\n",
              0.7 * (64.0 * 64.0 / 12.0));

  // The same progressive experience served from *block storage* through
  // the AIMS facade: each step is one real block I/O (Sec. 3.2.1's "most
  // valuable I/O's first").
  std::printf("\nprogressive AVERAGE from block storage (facade):\n");
  core::AimsSystem system;
  synth::CyberGloveSimulator glove(synth::DefaultAslVocabulary(), 17);
  synth::SubjectProfile subject = glove.MakeSubject();
  auto session = glove.GenerateSequence({12, 16, 13, 17, 15}, subject, 1.0,
                                        nullptr)
                     .ValueOrDie();
  core::SessionId id =
      system.IngestRecording("glove", session).ValueOrDie();
  auto steps = system
                   .QueryRangeProgressive(id, /*channel=*/20, 100,
                                          session.num_frames() - 100)
                   .ValueOrDie()
                   .steps;
  std::printf("%-12s %-16s %s\n", "blocks read", "mean estimate",
              "sum error bound");
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i < 4 || i + 1 == steps.size()) {
      std::printf("%-12zu %-16.4f %.2f\n", steps[i].blocks_read,
                  steps[i].mean_estimate, steps[i].sum_error_bound);
    }
  }
  return 0;
}
