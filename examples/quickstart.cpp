// Quickstart: a five-minute tour of the AIMS public API.
//
// AIMS (An Immersidata Management System, CIDR 2003) manages the
// multidimensional sensor streams generated inside immersive environments.
// This example walks the full Fig. 1 pipeline:
//   1. acquire a (synthetic) CyberGlove recording,
//   2. ingest it: per-channel wavelet transform + block storage,
//   3. run an off-line range query in the wavelet domain (counting I/O),
//   4. register a motion vocabulary and recognize signs online.

#include <cstdio>

#include "common/macros.h"
#include "core/aims.h"
#include "synth/cyberglove.h"

using aims::core::AimsSystem;
using aims::core::RangeStatistics;
using aims::core::SessionId;

int main() {
  std::printf("== AIMS quickstart ==\n\n");

  // ---------------------------------------------------------------- 1/4
  // Acquire: synthesize a glove session (28 channels at 100 Hz). With real
  // hardware this is where the CyberGlove SDK hands you samples.
  aims::synth::CyberGloveSimulator glove(aims::synth::DefaultAslVocabulary(),
                                         /*seed=*/57);
  aims::synth::SubjectProfile user = glove.MakeSubject();
  std::vector<aims::synth::SignSegment> truth;
  aims::streams::Recording session =
      glove.GenerateSequence({12, 16, 13}, user, /*rest=*/1.0, &truth)
          .ValueOrDie();
  std::printf("acquired %zu frames x %zu channels (%.1f s at %.0f Hz)\n",
              session.num_frames(), session.num_channels(),
              session.num_frames() / session.sample_rate_hz,
              session.sample_rate_hz);

  // ---------------------------------------------------------------- 2/4
  // Ingest: mean-center, wavelet-transform, and place every channel's
  // coefficients on disk blocks via error-tree tiling.
  AimsSystem aims_system;
  SessionId id = aims_system.IngestRecording("demo-session", session)
                     .ValueOrDie();
  aims::core::SessionInfo info = aims_system.GetSession(id).ValueOrDie();
  std::printf("ingested as session %u: %zu channels, %zu device blocks\n\n",
              info.id, info.num_channels, aims_system.device().num_blocks());

  // ---------------------------------------------------------------- 3/4
  // Off-line query: average of the wrist-flexion sensor over a time range,
  // answered from O(lg n) wavelet coefficients — watch the block count.
  const size_t wrist_flexion = 20;
  RangeStatistics stats =
      aims_system.QueryRange(id, wrist_flexion, 100, session.num_frames() - 100)
          .ValueOrDie();
  std::printf("wrist-flexion mean over frames [100, %zu] = %.2f deg\n",
              session.num_frames() - 100, stats.mean);
  std::printf("  -> answered with %zu block reads (channel occupies %zu "
              "blocks)\n\n",
              stats.blocks_read, aims_system.device().num_blocks() /
                                     info.num_channels);

  // ---------------------------------------------------------------- 4/4
  // On-line query: register templates, then feed the live stream. The
  // vocabulary is enrolled by the same user (fresh renditions) — the usual
  // calibration step; see examples/asl_recognition.cpp for the harder
  // cross-subject setting.
  for (size_t sign : {12u, 13u, 16u, 17u}) {
    aims::streams::Recording templ =
        glove.GenerateSign(sign, user).ValueOrDie();
    aims::linalg::Matrix m(templ.num_frames(), templ.num_channels());
    for (size_t r = 0; r < templ.num_frames(); ++r) {
      m.SetRow(r, templ.frames[r].values);
    }
    aims_system.AddVocabularyEntry(glove.vocabulary()[sign].name,
                                   std::move(m));
  }
  AIMS_CHECK(aims_system.StartRecognizer().ok());
  std::printf("online recognition over the same stream:\n");
  size_t events = 0;
  for (const aims::streams::Frame& frame : session.frames) {
    auto event = aims_system.PushLiveFrame(frame).ValueOrDie();
    if (event.has_value()) {
      std::printf("  recognized %-8s frames [%zu, %zu)  confidence %.2f\n",
                  event->label.c_str(), event->start_frame, event->end_frame,
                  event->confidence);
      ++events;
    }
  }
  auto last = aims_system.FinishLiveStream().ValueOrDie();
  if (last.has_value()) {
    std::printf("  recognized %-8s frames [%zu, %zu)  confidence %.2f\n",
                last->label.c_str(), last->start_frame, last->end_frame,
                last->confidence);
    ++events;
  }
  std::printf("ground truth was: GREEN, WHERE, YELLOW (%zu events emitted)\n",
              events);
  return 0;
}
